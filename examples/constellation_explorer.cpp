// Constellation explorer: inspect the orbital substrate — shell geometry,
// ground tracks, visibility from any city, ISL health, and bucket layout.
//
//   $ ./constellation_explorer [lat lon]
//
// Defaults to New York. Demonstrates the orbit/net/core substrate APIs
// without any CDN simulation.
#include <cstdio>
#include <cstdlib>

#include "core/bucket_mapper.h"
#include "net/isl_graph.h"
#include "net/link.h"
#include "orbit/constellation.h"
#include "orbit/visibility.h"
#include "util/geo.h"

int main(int argc, char** argv) {
  using namespace starcdn;

  util::GeoCoord where{40.71, -74.01};
  if (argc >= 3) {
    where.lat_deg = std::atof(argv[1]);
    where.lon_deg = std::atof(argv[2]);
  }

  // The Starlink 53-degree shell.
  const orbit::Constellation shell{orbit::WalkerParams{}};
  std::printf("Shell: %d planes x %d slots = %d satellites @ %.0f km, %.0f deg\n",
              shell.planes(), shell.slots_per_plane(), shell.size(),
              shell.params().altitude.value(), shell.params().inclination.value());
  std::printf("Orbital period: %.1f min\n",
              orbit::orbital_period(shell.elements({0, 0})).value() / 60.0);

  // Who can this user see right now, and over the next 10 minutes?
  const orbit::VisibilityOracle oracle(util::Degrees{25.0});
  std::printf("\nVisibility from (%.2f, %.2f), 25 deg mask:\n", where.lat_deg,
              where.lon_deg);
  for (double t = 0.0; t <= 600.0; t += 120.0) {
    const auto visible =
        oracle.visible(where, shell, shell.all_positions_ecef(util::Seconds{t}));
    std::printf("  t=%3.0fs: %2zu satellites in view", t, visible.size());
    if (!visible.empty()) {
      const auto id = shell.id_of(visible.front().sat);
      std::printf("; best (plane %2d, slot %2d) el=%.0f deg range=%.0f km",
                  id.plane.value(), id.slot.value(),
                  visible.front().elevation.value(),
                  visible.front().range.value());
    }
    std::printf("\n");
  }

  // Ground track of one satellite across half an orbit.
  std::printf("\nGround track of satellite (0,0):\n");
  for (double t = 0.0; t <= 2'880.0; t += 480.0) {
    const auto g =
        orbit::ground_track_point(shell.elements({0, 0}), util::Seconds{t});
    std::printf("  t=%4.0fs  lat %6.1f  lon %7.1f\n", t, g.lat_deg, g.lon_deg);
  }

  // ISL fabric and link delays.
  const net::IslGraph graph(shell);
  const auto delays = net::measure_link_delays(shell, {where}, util::Seconds{300.0},
                                           util::Seconds{60.0});
  std::printf("\nISL fabric: %zu links, %d broken\n", graph.edges().size(),
              graph.broken_edge_count());
  std::printf("  intra-orbit hop: %.2f ms   inter-orbit hop: %.2f ms   "
              "GSL: %.2f ms\n",
              delays.intra_orbit_isl.mean(), delays.inter_orbit_isl.mean(),
              delays.gsl.mean());

  // StarCDN bucket layout seen from this user's best satellite.
  const core::BucketMapper mapper(shell, 4);
  const auto visible = oracle.visible(where, shell, shell.all_positions_ecef(util::Seconds{0}));
  if (!visible.empty()) {
    const auto fc = shell.id_of(visible.front().sat);
    std::printf("\nBucket routing from first contact (plane %d, slot %d):\n",
                fc.plane.value(), fc.slot.value());
    for (int b = 0; b < mapper.buckets(); ++b) {
      const auto owner = mapper.owner(fc, util::BucketId{b});
      const auto [inter, intra] = mapper.hop_split(fc, *owner);
      std::printf("  bucket %d -> (plane %2d, slot %2d), %d+%d hops\n", b,
                  owner->plane.value(), owner->slot.value(), inter, intra);
    }
    const auto west = mapper.west_replica(*mapper.owner(fc, util::BucketId{0}));
    std::printf("  relay replica of bucket 0 owner: (plane %d, slot %d)\n",
                west->plane.value(), west->slot.value());
  }
  return 0;
}
