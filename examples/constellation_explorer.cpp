// Constellation explorer: inspect the orbital substrate — shell geometry,
// ground tracks, visibility from any city, ISL health, and bucket layout.
//
//   $ ./constellation_explorer [lat lon]
//
// Defaults to New York. Demonstrates the orbit/net/core substrate APIs
// without any CDN simulation.
#include <cstdio>
#include <cstdlib>

#include "core/bucket_mapper.h"
#include "net/isl_graph.h"
#include "net/link.h"
#include "orbit/constellation.h"
#include "orbit/visibility.h"
#include "util/geo.h"

int main(int argc, char** argv) {
  using namespace starcdn;

  util::GeoCoord where{40.71, -74.01};
  if (argc >= 3) {
    where.lat_deg = std::atof(argv[1]);
    where.lon_deg = std::atof(argv[2]);
  }

  // The Starlink 53-degree shell.
  const orbit::Constellation shell{orbit::WalkerParams{}};
  std::printf("Shell: %d planes x %d slots = %d satellites @ %.0f km, %.0f deg\n",
              shell.planes(), shell.slots_per_plane(), shell.size(),
              shell.params().altitude_km, shell.params().inclination_deg);
  std::printf("Orbital period: %.1f min\n",
              orbit::orbital_period_s(shell.elements({0, 0})) / 60.0);

  // Who can this user see right now, and over the next 10 minutes?
  const orbit::VisibilityOracle oracle(25.0);
  std::printf("\nVisibility from (%.2f, %.2f), 25 deg mask:\n", where.lat_deg,
              where.lon_deg);
  for (double t = 0.0; t <= 600.0; t += 120.0) {
    const auto visible =
        oracle.visible(where, shell, shell.all_positions_ecef(t));
    std::printf("  t=%3.0fs: %2zu satellites in view", t, visible.size());
    if (!visible.empty()) {
      const auto id = shell.id_of(visible.front().sat_index);
      std::printf("; best (plane %2d, slot %2d) el=%.0f deg range=%.0f km",
                  id.plane, id.slot, visible.front().elevation_deg,
                  visible.front().range_km);
    }
    std::printf("\n");
  }

  // Ground track of one satellite across half an orbit.
  std::printf("\nGround track of satellite (0,0):\n");
  for (double t = 0.0; t <= 2'880.0; t += 480.0) {
    const auto g = orbit::ground_track_point(shell.elements({0, 0}), t);
    std::printf("  t=%4.0fs  lat %6.1f  lon %7.1f\n", t, g.lat_deg, g.lon_deg);
  }

  // ISL fabric and link delays.
  const net::IslGraph graph(shell);
  const auto delays = net::measure_link_delays(shell, {where}, 300.0, 60.0);
  std::printf("\nISL fabric: %zu links, %d broken\n", graph.edges().size(),
              graph.broken_edge_count());
  std::printf("  intra-orbit hop: %.2f ms   inter-orbit hop: %.2f ms   "
              "GSL: %.2f ms\n",
              delays.intra_orbit_isl.mean(), delays.inter_orbit_isl.mean(),
              delays.gsl.mean());

  // StarCDN bucket layout seen from this user's best satellite.
  const core::BucketMapper mapper(shell, 4);
  const auto visible = oracle.visible(where, shell, shell.all_positions_ecef(0));
  if (!visible.empty()) {
    const auto fc = shell.id_of(visible.front().sat_index);
    std::printf("\nBucket routing from first contact (plane %d, slot %d):\n",
                fc.plane, fc.slot);
    for (int b = 0; b < mapper.buckets(); ++b) {
      const auto owner = mapper.owner(fc, b);
      const auto [inter, intra] = mapper.hop_split(fc, *owner);
      std::printf("  bucket %d -> (plane %2d, slot %2d), %d+%d hops\n", b,
                  owner->plane, owner->slot, inter, intra);
    }
    const auto west = mapper.west_replica(*mapper.owner(fc, 0));
    std::printf("  relay replica of bucket 0 owner: (plane %d, slot %d)\n",
                west->plane, west->slot);
  }
  return 0;
}
