// starcdn_sim: the full simulator behind a command line — the entry point a
// downstream user would script parameter sweeps with.
//
//   $ ./starcdn_sim [options]
//     --class video|web|download     traffic class           (video)
//     --variants a,b,c               comma list of: static,lru,hash,relay,
//                                    starcdn,prefetch        (starcdn,lru)
//     --capacity-gib N               per-satellite cache     (2)
//     --buckets L                    hash buckets, square    (4)
//     --policy lru|lfu|fifo|sieve|slru                      (lru)
//     --hours H                      trace duration          (6)
//     --scale S                      request volume scale    (0.25)
//     --fail-fraction F              out-of-slot fraction    (0)
//     --transient-prob P             transient outage prob   (0)
//     --global-cities                use the 27-city world set
//     --csv PATH                     append one CSV row per variant
//     --seed N                       workload + simulator seed
//     --series-csv PREFIX            per-variant epoch time-series CSVs
//                                    (PREFIX<variant>.csv)
//     --trace PATH                   chrome://tracing JSON timeline
//     --json PATH                    full RunReport as JSON
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/simulator.h"
#include "obs/tracer.h"
#include "trace/workload.h"
#include "util/csv.h"
#include "util/geo.h"

namespace {

using namespace starcdn;

core::Variant parse_variant(const std::string& name) {
  if (name == "static") return core::Variant::kStatic;
  if (name == "lru") return core::Variant::kVanillaLru;
  if (name == "hash") return core::Variant::kHashOnly;
  if (name == "relay") return core::Variant::kRelayOnly;
  if (name == "starcdn") return core::Variant::kStarCdn;
  if (name == "prefetch") return core::Variant::kPrefetch;
  throw std::invalid_argument("unknown variant: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string cls = "video", variants_arg = "starcdn,lru", policy = "lru";
  std::string csv_path, series_prefix, trace_path, json_path;
  double capacity_gib = 2.0, hours = 6.0, scale = 0.25;
  double fail_fraction = 0.0, transient_prob = 0.0;
  std::uint64_t seed = 0;
  int buckets = 4;
  bool global = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + a);
      return argv[++i];
    };
    try {
      if (a == "--class") cls = next();
      else if (a == "--variants") variants_arg = next();
      else if (a == "--capacity-gib") capacity_gib = std::stod(next());
      else if (a == "--buckets") buckets = std::stoi(next());
      else if (a == "--policy") policy = next();
      else if (a == "--hours") hours = std::stod(next());
      else if (a == "--scale") scale = std::stod(next());
      else if (a == "--fail-fraction") fail_fraction = std::stod(next());
      else if (a == "--transient-prob") transient_prob = std::stod(next());
      else if (a == "--global-cities") global = true;
      else if (a == "--csv") csv_path = next();
      else if (a == "--seed") seed = std::stoull(next());
      else if (a == "--series-csv") series_prefix = next();
      else if (a == "--trace") trace_path = next();
      else if (a == "--json") json_path = next();
      else {
        std::fprintf(stderr, "unknown option %s (see header comment)\n",
                     a.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad argument for %s: %s\n", a.c_str(), e.what());
      return 1;
    }
  }

  trace::TrafficClass traffic_class = trace::TrafficClass::kVideo;
  if (cls == "web") traffic_class = trace::TrafficClass::kWeb;
  else if (cls == "download") traffic_class = trace::TrafficClass::kDownload;

  // Tracing observes phase structure only; install before schedule
  // construction so LinkSchedule::build lands on the timeline.
  obs::Tracer tracer;
  if (!trace_path.empty()) obs::set_tracer(&tracer);

  const auto& cities = global ? util::global_cities() : util::paper_cities();
  auto params = trace::default_params(traffic_class);
  params.duration_s = hours * util::kHour.value();
  params.requests_per_weight = static_cast<std::size_t>(
      static_cast<double>(params.requests_per_weight) * scale);
  if (seed != 0) params.seed = seed;
  const trace::WorkloadModel workload(cities, params);
  const auto requests = trace::merge_by_time(workload.generate());

  orbit::Constellation shell{orbit::WalkerParams{}};
  if (fail_fraction > 0.0) {
    util::Rng rng(4242);
    shell.knock_out_random(fail_fraction, rng);
  }
  const sched::LinkSchedule schedule(shell, cities, util::Seconds{params.duration_s});

  core::SimConfig::Builder builder;
  builder.cache_capacity(util::gib(capacity_gib))
      .buckets(buckets)
      .policy(cache::parse_policy(policy))
      .transient_failures(transient_prob, util::Seconds{300.0});
  if (seed != 0) builder.seed(seed);

  std::vector<core::Variant> variants;
  std::stringstream ss(variants_arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      variants.push_back(parse_variant(tok));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    builder.variant(variants.back());
  }

  core::SimConfig cfg;
  try {
    cfg = builder.build();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  core::Simulator sim(shell, schedule, cfg);

  std::printf(
      "class=%s cities=%zu requests=%zu cache=%.1fGiB L=%d policy=%s "
      "fail=%.1f%% transient=%.1f%%\n",
      cls.c_str(), cities.size(), requests.size(), capacity_gib, buckets,
      policy.c_str(), 100 * fail_fraction, 100 * transient_prob);
  // Sinks fire inside finish(): summary to stdout, optional time-series
  // CSVs and the chrome trace alongside.
  core::SummarySink summary(std::cout);
  sim.add_sink(summary);
  core::SeriesCsvSink series(series_prefix);
  if (!series_prefix.empty()) sim.add_sink(series);
  core::TraceJsonSink trace_sink(trace_path);
  if (!trace_path.empty()) sim.add_sink(trace_sink);

  sim.run(requests);
  const core::RunReport report = sim.finish();

  for (const auto& p : series.paths()) std::printf("series: %s\n", p.c_str());
  if (trace_sink.written()) {
    std::printf("trace: %s (open in ui.perfetto.dev)\n", trace_path.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    report.write_json(out);
    if (out) std::printf("report: %s\n", json_path.c_str());
  }

  if (!csv_path.empty()) {
    util::CsvWriter w(csv_path);
    w.row({"variant", "class", "capacity_gib", "buckets", "policy", "rhr",
           "bhr", "uplink", "p50_ms", "p95_ms"});
    for (const auto v : variants) {
      const auto& m = report.variant(v).metrics;
      w.row({core::to_string(v), cls, std::to_string(capacity_gib),
             std::to_string(buckets), policy,
             std::to_string(m.request_hit_rate()),
             std::to_string(m.byte_hit_rate()),
             std::to_string(m.normalized_uplink()),
             std::to_string(m.latency_ms.median()),
             std::to_string(m.latency_ms.quantile(0.95))});
    }
    std::printf("\nwrote %s\n", csv_path.c_str());
  }
  obs::set_tracer(nullptr);
  return 0;
}
