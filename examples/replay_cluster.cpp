// Cluster replayer demo: run the StarCDN request pipeline across
// per-satellite cache workers connected by real TCP loopback sockets —
// the paper's evaluation harness architecture (§5.1).
//
//   $ ./replay_cluster [tcp|inproc]
#include <chrono>
#include <cstdio>
#include <cstring>

#include "replay/replayer.h"
#include "trace/workload.h"
#include "util/geo.h"

int main(int argc, char** argv) {
  using namespace starcdn;

  const bool use_tcp = argc < 2 || std::strcmp(argv[1], "tcp") == 0;

  // A compact shell keeps the worker count (= thread count) reasonable.
  orbit::WalkerParams shell_params;
  shell_params.planes = 8;
  shell_params.slots_per_plane = 6;
  const orbit::Constellation shell{shell_params};

  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = 6'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});

  replay::ReplayConfig cfg;
  cfg.cache_capacity = util::gib(1);
  cfg.buckets = 4;
  cfg.transport = use_tcp ? replay::TransportKind::kTcp
                          : replay::TransportKind::kInProcess;

  // Stream the trace straight from the generator: the replay never holds
  // more than one chunk of requests in memory.
  const auto stream = workload.generate_stream();
  std::printf(
      "spawning %d cache workers over %s, streaming %llu requests...\n",
      shell.size(), use_tcp ? "TCP loopback" : "in-process queues",
      static_cast<unsigned long long>(workload.total_request_count()));
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = replay_cluster(shell, schedule, *stream, cfg);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::printf(
      "\nreplayed %llu requests in %.2f s (%.0f req/s)\n"
      "cache hits: %llu (%.1f%%), of which relayed: %llu\n"
      "misses fetched from ground: %llu (%.2f GB of uplink)\n",
      static_cast<unsigned long long>(report.requests), elapsed,
      static_cast<double>(report.requests) / elapsed,
      static_cast<unsigned long long>(report.hits),
      100.0 * report.request_hit_rate(),
      static_cast<unsigned long long>(report.relay_hits),
      static_cast<unsigned long long>(report.misses),
      static_cast<double>(report.uplink_bytes) / 1e9);
  return 0;
}
