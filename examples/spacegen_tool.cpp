// SpaceGEN command-line tool: generate synthetic multi-location CDN traces
// (the paper's open-source artifact, reimplemented).
//
//   $ ./spacegen_tool [class] [requests_per_location] [output_dir]
//
//   class                 video | web | download   (default video)
//   requests_per_location synthetic trace length   (default 50000)
//   output_dir            where .bin/.csv traces go (default ./spacegen_out)
//
// Pipeline: synthesize a production-like workload, fit the traffic models
// (per-location pFDs + the cross-location GPD), run Algorithm 1, report
// fidelity, and write the traces to disk.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "trace/model_io.h"
#include "trace/spacegen.h"
#include "trace/trace_io.h"
#include "trace/workload.h"
#include "util/geo.h"

int main(int argc, char** argv) {
  using namespace starcdn;

  const std::string cls = argc > 1 ? argv[1] : "video";
  const std::size_t target =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 50'000;
  const std::string out_dir = argc > 3 ? argv[3] : "spacegen_out";

  trace::TrafficClass traffic_class = trace::TrafficClass::kVideo;
  if (cls == "web") traffic_class = trace::TrafficClass::kWeb;
  else if (cls == "download") traffic_class = trace::TrafficClass::kDownload;
  else if (cls != "video") {
    std::fprintf(stderr, "unknown class '%s' (video|web|download)\n",
                 cls.c_str());
    return 1;
  }

  // 1. Production-like source trace (see DESIGN.md for the substitution).
  auto params = trace::default_params(traffic_class);
  params.object_count = std::min<std::size_t>(params.object_count, 150'000);
  params.requests_per_weight =
      std::min<std::size_t>(params.requests_per_weight, 60'000);
  const trace::WorkloadModel workload(util::paper_cities(), params);
  const auto production = workload.generate();
  std::size_t prod_total = 0;
  for (const auto& t : production) prod_total += t.requests.size();
  std::printf("[1/4] production workload: %zu requests, class=%s\n",
              prod_total, cls.c_str());

  // 2. Fit the traffic models.
  const auto gen = trace::SpaceGen::fit(production);
  std::printf("[2/4] fitted models: GPD over %zu objects, %zu pFDs\n",
              gen.gpd().object_count(), gen.pfds().size());

  // 3. Run Algorithm 1.
  trace::SpaceGenConfig cfg;
  cfg.target_requests_per_location = target;
  const auto synthetic = gen.generate(cfg);
  std::size_t synth_total = 0;
  for (const auto& t : synthetic) synth_total += t.requests.size();
  std::printf("[3/4] Algorithm 1 generated %zu synthetic requests\n",
              synth_total);

  // 4. Persist + report.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  for (const auto& t : synthetic) {
    const std::string base = out_dir + "/" + t.location_name;
    trace::write_binary(t, base + ".bin");
    trace::write_csv(t, base + ".csv");
  }
  save_models(gen, out_dir + "/models.bin");
  std::printf("[4/4] wrote %zu location traces and models.bin to %s/\n",
              synthetic.size(), out_dir.c_str());

  for (std::size_t i = 0; i < synthetic.size(); ++i) {
    std::printf("  %-12s %8zu requests  %7.2f GB\n",
                synthetic[i].location_name.c_str(),
                synthetic[i].requests.size(),
                static_cast<double>(synthetic[i].total_bytes()) / 1e9);
  }
  return 0;
}
