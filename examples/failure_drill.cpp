// Failure drill: degrade the constellation step by step and watch StarCDN's
// consistent hashing remap buckets and absorb the damage (§3.4 / §5.4).
//
//   $ ./failure_drill
#include <cstdio>

#include "core/simulator.h"
#include "net/isl_graph.h"
#include "trace/workload.h"
#include "util/geo.h"

int main() {
  using namespace starcdn;

  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 60'000;
  p.requests_per_weight = 30'000;
  p.duration_s = 6 * util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(workload.generate());
  std::printf("workload: %zu requests over %.0f hours\n\n", requests.size(),
              p.duration_s / util::kHour.value());

  std::printf("%-18s %-10s %-12s %-10s %-10s %-12s\n", "failed fraction",
              "active", "broken ISLs", "RHR", "BHR", "uplink save");
  for (const double fail_fraction : {0.0, 0.05, 0.097, 0.20, 0.35}) {
    orbit::Constellation shell{orbit::WalkerParams{}};
    util::Rng rng(1234);
    if (fail_fraction > 0.0) shell.knock_out_random(fail_fraction, rng);
    const net::IslGraph graph(shell);
    const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                       util::Seconds{p.duration_s});

    const auto cfg = core::SimConfig::Builder{}
                         .cache_capacity(util::gib(4))
                         .buckets(9)
                         .sample_latency(false)
                         .variant(core::Variant::kStarCdn)
                         .build();
    core::Simulator sim(shell, schedule, cfg);
    sim.run(requests);

    const auto& m = sim.metrics(core::Variant::kStarCdn);
    std::printf("%-18.1f %-10d %-12d %-10.1f %-10.1f %-12.1f\n",
                fail_fraction * 100.0, shell.active_count(),
                graph.broken_edge_count(), 100.0 * m.request_hit_rate(),
                100.0 * m.byte_hit_rate(),
                100.0 * (1.0 - m.normalized_uplink()));
  }

  std::printf(
      "\nAt the paper's measured 9.7%% out-of-slot rate StarCDN keeps most\n"
      "of its hit rate and uplink savings (paper: still saves 74%% of\n"
      "uplink, Section 5.4); degradation is graceful as failures grow.\n");
  return 0;
}
