// Quickstart: generate a small workload, build the Starlink shell, and
// compare StarCDN against the naive per-satellite LRU baseline.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines: city list -> workload ->
// constellation -> link schedule -> simulator -> run report.
#include <cstdio>
#include <fstream>

#include "core/simulator.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/workload.h"
#include "util/geo.h"

int main() {
  using namespace starcdn;

  // 1. A content workload for the paper's nine trace cities (video class).
  const auto& cities = util::paper_cities();
  trace::WorkloadParams wp = trace::default_params(trace::TrafficClass::kVideo);
  wp.object_count = 60'000;
  wp.requests_per_weight = 20'000;
  wp.duration_s = 6 * util::kHour.value();
  const trace::WorkloadModel workload(cities, wp);
  const auto requests = trace::merge_by_time(workload.generate());
  std::printf("workload: %zu requests over %zu cities\n", requests.size(),
              cities.size());

  // 2. The Starlink 53-degree shell: 72 planes x 18 slots at 550 km.
  const orbit::Constellation shell{orbit::WalkerParams{}};

  // 3. Precompute the 15-second link schedule (Starlink reconfigure rate).
  const sched::LinkSchedule schedule(shell, cities, util::Seconds{wp.duration_s});
  std::printf("schedule: %zu epochs, %.1f satellites visible on average\n",
              schedule.epochs(), schedule.mean_candidates());

  // 4. Simulate StarCDN (L=4 buckets, relayed fetch) vs naive LRU. The
  //    Builder validates the settings before anything heavyweight runs.
  const auto cfg = core::SimConfig::Builder{}
                       .cache_capacity(util::gib(2))
                       .buckets(4)
                       .variants({core::Variant::kVanillaLru,
                                  core::Variant::kStarCdn})
                       .build();
  core::Simulator sim(shell, schedule, cfg);
  sim.run(requests);

  // 5. finish() seals the run into a self-contained report: totals,
  //    latency quantiles, and a per-epoch time-series per variant.
  const core::RunReport report = sim.finish();
  for (const auto v : {core::Variant::kVanillaLru, core::Variant::kStarCdn}) {
    const auto& m = report.variant(v).metrics;
    std::printf(
        "%-14s request hit rate %5.1f%%  byte hit rate %5.1f%%  "
        "uplink usage %5.1f%%  median latency %5.1f ms\n",
        core::to_string(v), 100.0 * m.request_hit_rate(),
        100.0 * m.byte_hit_rate(), 100.0 * m.normalized_uplink(),
        m.latency_ms.median());
  }

  // Epoch time-series: hit rate per 15 s scheduler epoch (Fig.-7-over-time).
  std::ofstream series("quickstart_starcdn_series.csv");
  report.write_series_csv(core::Variant::kStarCdn, series);
  std::printf("per-epoch series (%zu epochs) -> quickstart_starcdn_series.csv\n",
              report.variant(core::Variant::kStarCdn).series.rows());
  return 0;
}
