// Trace-driven discrete-time simulator for satellite-based CDNs (§5.1).
//
// Replays a multi-location request trace against a constellation with
// per-satellite edge caches under one or more architecture variants:
//
//   kStatic     — the paper's unachievable north star: satellites frozen at
//                 their epoch-0 geometry, static user-satellite mapping.
//   kVanillaLru — naive design of §3.1: independent per-satellite caches.
//   kHashOnly   — StarCDN consistent hashing, no relayed fetch (the paper's
//                 "StarCDN-Fetch" curve = StarCDN *minus* fetch).
//   kRelayOnly  — relayed fetch from inter-orbit neighbours without
//                 hashing (the paper's "StarCDN-Hashing" curve = StarCDN
//                 *minus* hashing).
//   kStarCdn    — the full system: hashing + relayed fetch (§3.2 + §3.3).
//   kPrefetch   — the design alternative §3.3 argues against: hashing plus
//                 *proactive* prefetch of the trailing replica's hot set at
//                 every scheduler epoch, instead of miss-triggered relay.
//
// All variants of one run share the precomputed link schedule, so they see
// identical orbital dynamics and request assignment; only the caching
// architecture differs.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "core/bucket_mapper.h"
#include "core/failure.h"
#include "core/metrics.h"
#include "net/latency_model.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/record.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::core {

enum class Variant : std::uint8_t {
  kStatic,
  kVanillaLru,
  kHashOnly,
  kRelayOnly,
  kStarCdn,
  kPrefetch,
};

[[nodiscard]] const char* to_string(Variant v) noexcept;

struct SimConfig {
  cache::Policy policy = cache::Policy::kLru;
  util::Bytes cache_capacity = util::gib(20);
  /// Mean-object-size hint used to pre-size each satellite cache's entry
  /// slab and hash index at creation (cache_capacity / hint resident
  /// objects, see cache::presize_hint), so warm caches never reallocate on
  /// the serving path. Purely a performance knob — results are identical
  /// for any value; 0 disables pre-sizing. The default matches the video
  /// workload's mean object size.
  util::Bytes mean_object_size_hint = util::mib(16);
  int buckets = 4;          // L, perfect square; used by hash variants
  bool relay_east = true;   // keep the bidirectional east link (§3.3)
  bool sample_latency = true;
  bool track_per_satellite = false;
  /// Objects pulled from the trailing replica per epoch by kPrefetch.
  int prefetch_objects_per_epoch = 64;
  /// Transient cache-server outage probability per failure window (§3.4);
  /// 0 disables the model.
  double transient_down_prob = 0.0;
  util::Seconds transient_window{300.0};
  std::uint64_t seed = 1234;
};

class Simulator {
 public:
  Simulator(const orbit::Constellation& constellation,
            const sched::LinkSchedule& schedule, SimConfig config,
            net::LatencyModelParams latency_params = {});

  /// Register a variant before run(); duplicate registration is a no-op.
  void add_variant(Variant v);

  /// Replay requests (must be time-ordered, e.g. trace::merge_by_time).
  /// May be called repeatedly to stream a long trace in chunks.
  ///
  /// Variants replay concurrently (one worker per VariantState; see
  /// util::parallel_for). Each variant owns its caches, metrics, RNG
  /// stream (seeded config.seed ^ variant) and request counter, so the
  /// resulting metrics are bitwise identical for any thread count.
  void run(const std::vector<trace::Request>& requests);

  [[nodiscard]] const VariantMetrics& metrics(Variant v) const;
  [[nodiscard]] const BucketMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Number of bucket slots each active satellite serves after failure
  /// remapping (1 on a healthy grid); Fig. 11's x-axis.
  [[nodiscard]] std::vector<int> buckets_served_per_satellite() const;

 private:
  /// Everything a variant replay touches lives here, so each variant can
  /// run on its own thread with no shared mutable state. The RNG stream is
  /// derived from (config.seed, variant) and the request counter advances
  /// in lockstep across variants, making results independent of both
  /// thread count and which other variants are registered.
  struct VariantState {
    Variant variant;
    VariantMetrics metrics;
    std::vector<std::unique_ptr<cache::Cache>> caches;  // per satellite slot
    std::vector<std::uint32_t> prefetch_epoch;          // kPrefetch bookkeeping
    TransientFailureModel transient{0.0};  // same outage schedule per variant
    util::Rng rng;                         // latency sampling stream
    std::uint64_t request_counter = 0;     // drives user-terminal rotation
  };

  void process(VariantState& vs, const trace::Request& r,
               util::EpochIdx sched_epoch, util::EpochIdx real_epoch,
               const sched::Candidate& fc);
  void maybe_prefetch(VariantState& vs, util::SatId serving,
                      util::EpochIdx epoch);
  cache::Cache& cache_at(VariantState& vs, util::SatId sat);
  void note_sat(VariantState& vs, util::SatId sat, const trace::Request& r,
                bool hit);

  const orbit::Constellation* constellation_;
  const sched::LinkSchedule* schedule_;
  SimConfig config_;
  BucketMapper mapper_;
  net::LatencyModel latency_;
  std::vector<VariantState> variants_;
};

}  // namespace starcdn::core
