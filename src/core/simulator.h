// Trace-driven discrete-time simulator for satellite-based CDNs (§5.1).
//
// Replays a multi-location request trace against a constellation with
// per-satellite edge caches under one or more architecture variants:
//
//   kStatic     — the paper's unachievable north star: satellites frozen at
//                 their epoch-0 geometry, static user-satellite mapping.
//   kVanillaLru — naive design of §3.1: independent per-satellite caches.
//   kHashOnly   — StarCDN consistent hashing, no relayed fetch (the paper's
//                 "StarCDN-Fetch" curve = StarCDN *minus* fetch).
//   kRelayOnly  — relayed fetch from inter-orbit neighbours without
//                 hashing (the paper's "StarCDN-Hashing" curve = StarCDN
//                 *minus* hashing).
//   kStarCdn    — the full system: hashing + relayed fetch (§3.2 + §3.3).
//   kPrefetch   — the design alternative §3.3 argues against: hashing plus
//                 *proactive* prefetch of the trailing replica's hot set at
//                 every scheduler epoch, instead of miss-triggered relay.
//
// All variants of one run share the precomputed link schedule, so they see
// identical orbital dynamics and request assignment; only the caching
// architecture differs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "core/bucket_mapper.h"
#include "core/failure.h"
#include "core/metrics.h"
#include "core/run_report.h"
#include "core/variant.h"
#include "net/latency_model.h"
#include "obs/registry.h"
#include "obs/series.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/record.h"
#include "trace/stream.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::core {

struct SimConfig {
  cache::Policy policy = cache::Policy::kLru;
  util::Bytes cache_capacity = util::gib(20);
  /// Mean-object-size hint used to pre-size each satellite cache's entry
  /// slab and hash index at creation (cache_capacity / hint resident
  /// objects, see cache::presize_hint), so warm caches never reallocate on
  /// the serving path. Purely a performance knob — results are identical
  /// for any value; 0 disables pre-sizing. The default matches the video
  /// workload's mean object size.
  util::Bytes mean_object_size_hint = util::mib(16);
  int buckets = 4;          // L, perfect square; used by hash variants
  bool relay_east = true;   // keep the bidirectional east link (§3.3)
  bool sample_latency = true;
  bool track_per_satellite = false;
  /// Objects pulled from the trailing replica per epoch by kPrefetch.
  int prefetch_objects_per_epoch = 64;
  /// Transient cache-server outage probability per failure window (§3.4);
  /// 0 disables the model.
  double transient_down_prob = 0.0;
  util::Seconds transient_window{300.0};
  std::uint64_t seed = 1234;
  /// Reservoir size of the per-variant latency QuantileSampler (Fig. 10).
  /// Trade-off: memory is 8 bytes * reservoir * variants and quantile
  /// queries sort the reservoir, while quantile *accuracy* falls off as
  /// the reservoir shrinks relative to the replayed request count (at the
  /// default 200k samples the p50/p95 sampling error on a day-long trace
  /// is well under the figures' line width; 0 keeps every sample).
  std::size_t latency_reservoir = kDefaultLatencyReservoir;
  /// Record per-epoch counter snapshots (RunReport time-series). One
  /// integer compare per request, one row per 15 s epoch — on by default.
  bool record_epoch_series = true;
  /// Variants registered by the Simulator constructor (add_variant can
  /// still add more afterwards). Populated by Builder::variants().
  std::vector<Variant> variants;

  /// Throws std::invalid_argument on out-of-range fields (also run by the
  /// Simulator constructor, so hand-rolled brace-init configs are checked
  /// too).
  void validate() const;

  class Builder;
};

/// Fluent, validating construction for SimConfig:
///
///   auto cfg = SimConfig::Builder{}
///                  .policy(cache::Policy::kS3Fifo)
///                  .cache_capacity(util::gib(40))
///                  .buckets(9)
///                  .variants({Variant::kStarCdn, Variant::kVanillaLru})
///                  .build();
///
/// build() rejects inconsistent settings that a brace-init SimConfig would
/// silently accept — e.g. tuning prefetch_objects_per_epoch without
/// registering Variant::kPrefetch, or a bucket count that is not a perfect
/// square — and runs SimConfig::validate().
class SimConfig::Builder {
 public:
  Builder& policy(cache::Policy p) { cfg_.policy = p; return *this; }
  Builder& cache_capacity(util::Bytes b) {
    cfg_.cache_capacity = b;
    return *this;
  }
  Builder& mean_object_size_hint(util::Bytes b) {
    cfg_.mean_object_size_hint = b;
    return *this;
  }
  Builder& buckets(int l) { cfg_.buckets = l; return *this; }
  Builder& relay_east(bool on) { cfg_.relay_east = on; return *this; }
  Builder& sample_latency(bool on) {
    cfg_.sample_latency = on;
    return *this;
  }
  Builder& track_per_satellite(bool on) {
    cfg_.track_per_satellite = on;
    return *this;
  }
  Builder& prefetch_objects_per_epoch(int n) {
    cfg_.prefetch_objects_per_epoch = n;
    prefetch_set_ = true;
    return *this;
  }
  Builder& transient_failures(double prob, util::Seconds window) {
    cfg_.transient_down_prob = prob;
    cfg_.transient_window = window;
    return *this;
  }
  Builder& seed(std::uint64_t s) { cfg_.seed = s; return *this; }
  Builder& latency_reservoir(std::size_t n) {
    cfg_.latency_reservoir = n;
    return *this;
  }
  Builder& record_epoch_series(bool on) {
    cfg_.record_epoch_series = on;
    return *this;
  }
  Builder& variant(Variant v) {
    cfg_.variants.push_back(v);
    return *this;
  }
  Builder& variants(std::initializer_list<Variant> vs) {
    // Element-wise rather than range insert: gcc 12's -Wstringop-overflow
    // misfires on the memmove of byte-sized enums from an initializer_list.
    cfg_.variants.reserve(cfg_.variants.size() + vs.size());
    for (const Variant v : vs) cfg_.variants.push_back(v);
    return *this;
  }

  /// Cross-field checks + SimConfig::validate(); throws
  /// std::invalid_argument with a field-naming message on failure.
  [[nodiscard]] SimConfig build() const;

 private:
  SimConfig cfg_;
  bool prefetch_set_ = false;
};

class Simulator {
 public:
  /// Validates `config` (SimConfig::validate) and registers
  /// config.variants. Throws std::invalid_argument on a bad config.
  Simulator(const orbit::Constellation& constellation,
            const sched::LinkSchedule& schedule, SimConfig config,
            net::LatencyModelParams latency_params = {});

  /// Register a variant before run(); duplicate registration is a no-op.
  void add_variant(Variant v);

  /// Register a sink to be fed the RunReport from finish(). Not owned; the
  /// sink must outlive the simulator. Sinks fire in registration order.
  void add_sink(MetricsSink& sink);

  /// Replay requests (must be time-ordered, e.g. trace::merge_by_time).
  /// May be called repeatedly to stream a long trace in chunks.
  ///
  /// Variants replay concurrently (one worker per VariantState; see
  /// util::parallel_for). Each variant owns its caches, metrics, RNG
  /// stream (seeded config.seed ^ variant) and request counter, so the
  /// resulting metrics are bitwise identical for any thread count.
  void run(const std::vector<trace::Request>& requests);

  /// Replay a chunked stream (trace::RequestStream) with O(chunk) memory.
  ///
  /// Double-buffered: while the variants replay chunk N, one extra
  /// parallel_for slot pulls chunk N+1 from the stream and builds its
  /// stage-1 request context, so generation/IO overlaps replay. Chunk-base
  /// bookkeeping keeps the user-terminal rotation identical to the
  /// materialized path, so metrics are bitwise identical to
  /// run(collect(stream)) for any chunk size and thread count.
  void run(trace::RequestStream& stream);

  /// Close the run: seals each variant's epoch series, merges the
  /// per-variant shards (registration order — deterministic), collects
  /// the hot-path profile, feeds every registered sink, and returns the
  /// self-contained RunReport. May be called repeatedly; each call
  /// re-snapshots (and re-feeds the sinks with) the current totals.
  RunReport finish();

  [[nodiscard]] const VariantMetrics& metrics(Variant v) const;
  /// The metric schema backing this simulator's counters.
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }
  /// A variant's raw counter shard (the source VariantMetrics is synced
  /// from); throws std::out_of_range when unregistered.
  [[nodiscard]] const obs::Shard& shard(Variant v) const;
  [[nodiscard]] const BucketMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Number of bucket slots each active satellite serves after failure
  /// remapping (1 on a healthy grid); Fig. 11's x-axis.
  [[nodiscard]] std::vector<int> buckets_served_per_satellite() const;

 private:
  /// Everything a variant replay touches lives here, so each variant can
  /// run on its own thread with no shared mutable state. The RNG stream is
  /// derived from (config.seed, variant) and the request counter advances
  /// in lockstep across variants, making results independent of both
  /// thread count and which other variants are registered.
  struct VariantState {
    Variant variant;
    VariantMetrics metrics;
    obs::Shard shard;        // counter storage; metrics syncs from this
    obs::EpochSeries series; // per-epoch snapshots of the shard
    std::vector<std::unique_ptr<cache::Cache>> caches;  // per satellite slot
    std::vector<std::uint32_t> prefetch_epoch;          // kPrefetch bookkeeping
    TransientFailureModel transient{0.0};  // same outage schedule per variant
    util::Rng rng;                         // latency sampling stream
    std::uint64_t request_counter = 0;     // drives user-terminal rotation
  };

  /// Shared per-request context, hoisted out of the variant loop (stage 1):
  /// the scheduler epoch, the first-contact lookup (once per request, and
  /// once at the frozen epoch 0 when a kStatic variant is registered,
  /// instead of once per variant), and whether the scheduler's reshuffle
  /// handed this user to a different satellite than the previous epoch.
  struct RequestContext {
    util::EpochIdx epoch{0};
    bool handover = false;       // first contact differs from epoch - 1's
    sched::Candidate fc;         // first contact at the real epoch
    sched::Candidate fc_static;  // first contact at the frozen epoch 0
  };

  /// Stage-1 fan-out over one chunk: each slot is a pure function of the
  /// request index, seeded by `counter_base` (the shared request-counter
  /// position at the chunk's first request).
  void build_context(const trace::RequestView& view,
                     std::uint64_t counter_base, bool need_static,
                     std::vector<RequestContext>& ctx);
  /// Stage-2 replay of one chunk for one variant, strictly in trace order.
  /// `trace_epochs` is set for one variant only (or the trace timeline
  /// would repeat per worker); `marked_epoch` carries its epoch-instant
  /// dedup across chunks.
  void replay_variant(VariantState& vs, const trace::RequestView& view,
                      const std::vector<RequestContext>& ctx,
                      bool trace_epochs, std::uint64_t& marked_epoch);

  void process(VariantState& vs, const trace::Request& r,
               util::EpochIdx sched_epoch, util::EpochIdx real_epoch,
               const sched::Candidate& fc);
  void maybe_prefetch(VariantState& vs, util::SatId serving,
                      util::EpochIdx epoch);
  cache::Cache& cache_at(VariantState& vs, util::SatId sat);
  void note_sat(VariantState& vs, util::SatId sat, const trace::Request& r,
                bool hit);

  const orbit::Constellation* constellation_;
  const sched::LinkSchedule* schedule_;
  SimConfig config_;
  BucketMapper mapper_;
  net::LatencyModel latency_;
  obs::Registry registry_;  // declared before variants_: shards index it
  CoreMetricIds ids_;
  std::vector<VariantState> variants_;
  std::vector<MetricsSink*> sinks_;
};

}  // namespace starcdn::core
