// StarCDN's LSN-specific consistent hashing (§3.2) and its relayed-fetch
// replica geometry (§3.3) plus failure remapping (§3.4).
//
// Objects hash into L buckets; buckets tile the (plane, slot) grid in a
// repeating sqrt(L) x sqrt(L) pattern, so any bucket is reachable from any
// first-contact satellite within 2*floor(sqrt(L)/2) grid hops. Same-bucket
// replicas sit sqrt(L) planes to the west/east — the neighbours relayed
// fetch probes on a miss, exploiting that a satellite's west inter-orbit
// neighbour traces (almost) the requester's ground track one period
// earlier (Fig. 3). When the nominal owner of a bucket is out of slot, the
// bucket remaps to the nearest active satellite, which then serves
// multiple buckets (§3.4, evaluated in Fig. 11).
#pragma once

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "orbit/constellation.h"
#include "util/ids.h"

namespace starcdn::core {

class BucketMapper {
 public:
  /// `buckets` must be a perfect square (the paper uses L = 4 and L = 9).
  BucketMapper(const orbit::Constellation& constellation, int buckets);

  [[nodiscard]] int buckets() const noexcept { return l_; }
  [[nodiscard]] int tile_side() const noexcept { return side_; }

  /// Bucket an object hashes into (splitmix-mixed, uniform over L).
  [[nodiscard]] util::BucketId bucket_of_object(
      cache::ObjectId id) const noexcept;

  /// Bucket assigned to a satellite slot by the grid tiling.
  [[nodiscard]] util::BucketId bucket_of_slot(
      orbit::SatelliteId id) const noexcept;

  /// Nominal owner of `bucket` nearest to `from` on the torus — ignores
  /// failures. Reachable within 2*floor(side/2) hops by construction.
  [[nodiscard]] orbit::SatelliteId nominal_owner(
      orbit::SatelliteId from, util::BucketId bucket) const noexcept;

  /// Actual owner after failure remapping: the nominal owner if active,
  /// otherwise the nearest active satellite (deterministic ring search, a
  /// pure function of the nominal owner so all requesters agree). Returns
  /// nullopt only if the whole constellation is down.
  [[nodiscard]] std::optional<orbit::SatelliteId> owner(
      orbit::SatelliteId from, util::BucketId bucket) const;

  /// Same-bucket replicas for relayed fetch: `side_` planes west / east of
  /// `owner_sat` (remapped if inactive). Never returns `owner_sat` itself.
  [[nodiscard]] std::optional<orbit::SatelliteId> west_replica(
      orbit::SatelliteId owner_sat) const;
  [[nodiscard]] std::optional<orbit::SatelliteId> east_replica(
      orbit::SatelliteId owner_sat) const;

  /// Toroidal (inter, intra) hop split between two slots; used by the
  /// latency model (inter- and intra-orbit hops cost differently).
  [[nodiscard]] std::pair<int, int> hop_split(orbit::SatelliteId a,
                                              orbit::SatelliteId b) const noexcept;

  /// Worst-case routing hop count from any satellite to any bucket:
  /// 2 * floor(side/2) on a healthy grid (Fig. 9's x-axis relation).
  [[nodiscard]] int worst_case_hops() const noexcept;

  /// Remap target for an arbitrary (possibly inactive) slot: the nearest
  /// active satellite by grid distance, deterministic tie-break. Exposed
  /// for the fault-tolerance experiments.
  [[nodiscard]] std::optional<orbit::SatelliteId> remap(
      orbit::SatelliteId nominal) const;

 private:
  const orbit::Constellation* constellation_;
  int l_;
  int side_;
  // Memoized remap targets (linear index -> remapped index; -2 unknown,
  // -1 unreachable). The topology is fixed for the mapper's lifetime, so
  // entries never invalidate. Each entry is a relaxed atomic: the value is
  // a pure function of the topology, so concurrent fills (e.g. variant
  // threads in Simulator::run) can only ever race to write the same value.
  mutable std::vector<std::atomic<int>> remap_cache_;
};

}  // namespace starcdn::core
