// Metrics collected per simulated variant: hit/miss breakdown, byte
// accounting (uplink = Fig. 8), latency samples (Fig. 10), relay-probe
// availability (Table 3) and per-satellite counters (Fig. 11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/bandwidth.h"
#include "util/stats.h"
#include "util/units.h"

namespace starcdn::core {

/// Default latency-reservoir size (SimConfig::latency_reservoir documents
/// the memory/accuracy trade-off behind this number).
inline constexpr std::size_t kDefaultLatencyReservoir = 200'000;

/// Outcome of relay probes on an owner miss (Table 3's columns).
struct RelayAvailability {
  std::uint64_t west_only_requests = 0;
  std::uint64_t east_only_requests = 0;
  std::uint64_t both_requests = 0;
  util::Bytes west_only_bytes = 0;
  util::Bytes east_only_bytes = 0;
  util::Bytes both_bytes = 0;
};

struct VariantMetrics {
  std::uint64_t requests = 0;
  std::uint64_t local_hits = 0;    // served by the first-contact satellite
  std::uint64_t routed_hits = 0;   // served by the bucket owner
  std::uint64_t relay_west_hits = 0;
  std::uint64_t relay_east_hits = 0;
  std::uint64_t misses = 0;        // fetched from the ground
  std::uint64_t unreachable = 0;   // no satellite in view (coverage gap)

  std::uint64_t transient_misses = 0;  // serving cache briefly down (§3.4)
  std::uint64_t handovers = 0;  // first-contact satellite changed at an
                                // epoch boundary (scheduler reshuffle)

  util::Bytes bytes_requested = 0;
  util::Bytes bytes_hit = 0;
  util::Bytes uplink_bytes = 0;    // ground->satellite fetches (scarce GSL)
  util::Bytes isl_bytes = 0;       // object bytes moved across ISLs
  util::Bytes prefetch_bytes = 0;  // speculative transfers (kPrefetch only)

  util::QuantileSampler latency_ms{kDefaultLatencyReservoir};

  /// Per-(satellite, epoch) GSL throughput accounting; quantifies pressure
  /// on the 20 Gbps uplink budget of Table 1. Finalized by Simulator::run.
  net::UplinkMeter uplink_meter;

  // Per-satellite hit accounting (linear satellite index), Fig. 11.
  std::vector<std::uint32_t> sat_requests;
  std::vector<std::uint32_t> sat_hits;
  std::vector<util::Bytes> sat_bytes_requested;
  std::vector<util::Bytes> sat_bytes_hit;

  RelayAvailability relay;

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return local_hits + routed_hits + relay_west_hits + relay_east_hits;
  }
  [[nodiscard]] double request_hit_rate() const noexcept {
    return requests ? static_cast<double>(hits()) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  [[nodiscard]] double byte_hit_rate() const noexcept {
    return bytes_requested ? static_cast<double>(bytes_hit) /
                                 static_cast<double>(bytes_requested)
                           : 0.0;
  }
  /// Uplink usage normalized to fetching everything from the ground
  /// (the paper's Fig. 8 y-axis).
  [[nodiscard]] double normalized_uplink() const noexcept {
    return bytes_requested ? static_cast<double>(uplink_bytes) /
                                 static_cast<double>(bytes_requested)
                           : 0.0;
  }
};

}  // namespace starcdn::core
