#include "core/run_report.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/tracer.h"
#include "util/table.h"
#include "util/units.h"

namespace starcdn::core {

CoreMetricIds register_core_metrics(obs::Registry& registry) {
  CoreMetricIds ids;
  ids.requests = registry.counter("requests", "requests replayed");
  ids.local_hits = registry.counter(
      "local_hits", "served by the first-contact satellite");
  ids.routed_hits =
      registry.counter("routed_hits", "served by the bucket owner");
  ids.relay_west_hits = registry.counter(
      "relay_west_hits", "owner miss served by the trailing replica");
  ids.relay_east_hits = registry.counter(
      "relay_east_hits", "owner miss served by the leading replica");
  ids.misses = registry.counter("misses", "fetched from the ground");
  ids.unreachable =
      registry.counter("unreachable", "no satellite in view (coverage gap)");
  ids.transient_misses = registry.counter(
      "transient_misses", "serving cache briefly down (§3.4)");
  ids.handovers = registry.counter(
      "handovers", "first-contact satellite changed across epochs");

  ids.bytes_requested =
      registry.counter("bytes_requested", "total bytes requested", "bytes");
  ids.bytes_hit =
      registry.counter("bytes_hit", "bytes served from orbit", "bytes");
  ids.uplink_bytes = registry.counter(
      "uplink_bytes", "ground->satellite fetches (scarce GSL)", "bytes");
  ids.isl_bytes = registry.counter(
      "isl_bytes", "object bytes moved across ISLs", "bytes");
  ids.prefetch_bytes = registry.counter(
      "prefetch_bytes", "speculative transfers (kPrefetch only)", "bytes");

  ids.relay_west_only_requests = registry.counter(
      "relay_west_only_requests", "owner misses where only west had it");
  ids.relay_east_only_requests = registry.counter(
      "relay_east_only_requests", "owner misses where only east had it");
  ids.relay_both_requests = registry.counter(
      "relay_both_requests", "owner misses where both replicas had it");
  ids.relay_west_only_bytes = registry.counter(
      "relay_west_only_bytes", "bytes available only west", "bytes");
  ids.relay_east_only_bytes = registry.counter(
      "relay_east_only_bytes", "bytes available only east", "bytes");
  ids.relay_both_bytes = registry.counter(
      "relay_both_bytes", "bytes available on both replicas", "bytes");

  ids.latency_ms = registry.histogram(
      "latency_ms", "end-to-end request latency",
      {5, 10, 20, 30, 40, 50, 75, 100, 150, 200, 300, 500, 1000}, "ms");
  return ids;
}

std::vector<obs::CounterId> core_series_columns(const CoreMetricIds& ids) {
  return {ids.requests,        ids.local_hits,      ids.routed_hits,
          ids.relay_west_hits, ids.relay_east_hits, ids.misses,
          ids.unreachable,     ids.transient_misses, ids.handovers,
          ids.bytes_requested, ids.bytes_hit,       ids.uplink_bytes,
          ids.isl_bytes,       ids.prefetch_bytes};
}

void shard_to_metrics(const CoreMetricIds& ids, const obs::Shard& shard,
                      VariantMetrics& m) {
  // Assignment from the cumulative shard, not +=: shards persist across
  // streamed run() chunks, so each sync lands on the same totals the old
  // direct-increment fields accumulated — bitwise, since both are sums of
  // identical u64 increments.
  m.requests = shard.value(ids.requests);
  m.local_hits = shard.value(ids.local_hits);
  m.routed_hits = shard.value(ids.routed_hits);
  m.relay_west_hits = shard.value(ids.relay_west_hits);
  m.relay_east_hits = shard.value(ids.relay_east_hits);
  m.misses = shard.value(ids.misses);
  m.unreachable = shard.value(ids.unreachable);
  m.transient_misses = shard.value(ids.transient_misses);
  m.handovers = shard.value(ids.handovers);
  m.bytes_requested = shard.value(ids.bytes_requested);
  m.bytes_hit = shard.value(ids.bytes_hit);
  m.uplink_bytes = shard.value(ids.uplink_bytes);
  m.isl_bytes = shard.value(ids.isl_bytes);
  m.prefetch_bytes = shard.value(ids.prefetch_bytes);
  m.relay.west_only_requests = shard.value(ids.relay_west_only_requests);
  m.relay.east_only_requests = shard.value(ids.relay_east_only_requests);
  m.relay.both_requests = shard.value(ids.relay_both_requests);
  m.relay.west_only_bytes = shard.value(ids.relay_west_only_bytes);
  m.relay.east_only_bytes = shard.value(ids.relay_east_only_bytes);
  m.relay.both_bytes = shard.value(ids.relay_both_bytes);
}

std::vector<obs::SeriesTable::Derived> core_series_derived(
    const obs::SeriesTable& table) {
  const std::size_t req = table.column("requests");
  const std::size_t local = table.column("local_hits");
  const std::size_t routed = table.column("routed_hits");
  const std::size_t west = table.column("relay_west_hits");
  const std::size_t east = table.column("relay_east_hits");
  const std::size_t breq = table.column("bytes_requested");
  const std::size_t bhit = table.column("bytes_hit");
  const std::size_t up = table.column("uplink_bytes");
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  if (req == npos || breq == npos) return {};

  std::vector<obs::SeriesTable::Derived> derived;
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den != 0 ? static_cast<double>(num) / static_cast<double>(den)
                    : 0.0;
  };
  if (local != npos && routed != npos && west != npos && east != npos) {
    derived.push_back(
        {"request_hit_rate", [=](const obs::SeriesTable& t, std::size_t row) {
           const std::uint64_t hits = t.delta(row, local) +
                                      t.delta(row, routed) +
                                      t.delta(row, west) + t.delta(row, east);
           return ratio(hits, t.delta(row, req));
         }});
  }
  if (bhit != npos) {
    derived.push_back(
        {"byte_hit_rate", [=](const obs::SeriesTable& t, std::size_t row) {
           return ratio(t.delta(row, bhit), t.delta(row, breq));
         }});
  }
  if (up != npos) {
    derived.push_back(
        {"normalized_uplink",
         [=](const obs::SeriesTable& t, std::size_t row) {
           return ratio(t.delta(row, up), t.delta(row, breq));
         }});
  }
  return derived;
}

const VariantReport* RunReport::find(Variant v) const noexcept {
  for (const auto& vr : variants) {
    if (vr.variant == v) return &vr;
  }
  return nullptr;
}

const VariantReport& RunReport::variant(Variant v) const {
  if (const VariantReport* vr = find(v)) return *vr;
  throw std::out_of_range("RunReport::variant: variant not in report");
}

void RunReport::write_series_csv(Variant v, std::ostream& os) const {
  const VariantReport& vr = variant(v);
  vr.series.write_csv(os, core_series_derived(vr.series));
}

std::vector<std::string> RunReport::write_series_csv_files(
    const std::string& prefix) const {
  std::vector<std::string> written;
  for (const auto& vr : variants) {
    if (vr.series.rows() == 0) continue;
    const std::string path = prefix + vr.name + ".csv";
    std::ofstream out(path);
    if (!out) continue;
    vr.series.write_csv(out, core_series_derived(vr.series));
    if (out) written.push_back(path);
  }
  return written;
}

void RunReport::write_summary(std::ostream& os) const {
  util::TextTable table({"variant", "requests", "req hit rate",
                         "byte hit rate", "norm uplink", "p50 ms", "p95 ms",
                         "ISL TB", "handovers"});
  for (const auto& vr : variants) {
    const VariantMetrics& m = vr.metrics;
    table.add_row(
        {vr.name, std::to_string(m.requests),
         util::fmt_pct(m.request_hit_rate()),
         util::fmt_pct(m.byte_hit_rate()), util::fmt(m.normalized_uplink(), 3),
         util::fmt(m.latency_ms.quantile(0.50), 1),
         util::fmt(m.latency_ms.quantile(0.95), 1),
         util::fmt(static_cast<double>(m.isl_bytes) / 1e12, 2),
         std::to_string(m.handovers)});
  }
  table.print(os, "run summary");
  if (profile.compiled) {
    profile.print(os);
  }
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  os << "{\"epoch_seconds\":" << epoch_seconds << ",\"seed\":" << seed
     << ",\"variants\":{";
  bool first = true;
  for (const auto& vr : variants) {
    if (!first) os << ',';
    first = false;
    json_string(os, vr.name);
    os << ":{\"counters\":{";
    bool first_c = true;
    for (const auto& [name, value] : vr.counters) {
      if (!first_c) os << ',';
      first_c = false;
      json_string(os, name);
      os << ':' << value;
    }
    const VariantMetrics& m = vr.metrics;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "},\"summary\":{\"request_hit_rate\":%.6f,"
                  "\"byte_hit_rate\":%.6f,\"normalized_uplink\":%.6f,"
                  "\"latency_p50_ms\":%.3f,\"latency_p95_ms\":%.3f}",
                  m.request_hit_rate(), m.byte_hit_rate(),
                  m.normalized_uplink(), m.latency_ms.quantile(0.50),
                  m.latency_ms.quantile(0.95));
    os << buf;
    if (vr.series.rows() != 0) {
      os << ",\"series\":";
      vr.series.write_json(os);
    }
    os << '}';
  }
  os << "},\"totals\":{";
  bool first_t = true;
  for (const auto& [name, value] : totals) {
    if (!first_t) os << ',';
    first_t = false;
    json_string(os, name);
    os << ':' << value;
  }
  os << "}}";
}

void SummarySink::consume(const RunReport& report) {
  report.write_summary(*os_);
}

void SeriesCsvSink::consume(const RunReport& report) {
  paths_ = report.write_series_csv_files(prefix_);
}

void TraceJsonSink::consume(const RunReport& /*report*/) {
  if (const obs::Tracer* t = obs::tracer()) {
    written_ = t->write_json(path_);
  }
}

}  // namespace starcdn::core
