// Transient failure model (§3.4).
//
// Long-term failures (out-of-slot satellites) are modelled by the
// constellation's active mask plus BucketMapper's remapping. Transient
// failures — a cache server briefly down for a software update, a link
// paused for a collision-avoidance maneuver — are handled differently by
// StarCDN: the request simply reports a miss and is forwarded to the
// ground, with no remapping. This model marks each satellite down in
// pseudo-random windows, deterministically from a seed so every variant of
// a run observes the same outage schedule.
#pragma once

#include <cstdint>

#include "util/hash.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::core {

class TransientFailureModel {
 public:
  /// Each satellite is independently down for whole windows of
  /// `window` duration with probability `down_probability`.
  explicit TransientFailureModel(double down_probability,
                                 util::Seconds window = util::Seconds{300.0},
                                 std::uint64_t seed = 0x7e57ab1e) noexcept
      : p_(down_probability), window_s_(window.value()), seed_(seed) {}

  [[nodiscard]] double down_probability() const noexcept { return p_; }

  [[nodiscard]] bool down(util::SatId sat, util::Seconds t) const noexcept {
    if (p_ <= 0.0) return false;
    const auto window = static_cast<std::uint64_t>(t.value() / window_s_);
    const std::uint64_t h = util::hash_combine(
        util::splitmix64(seed_ + static_cast<std::uint64_t>(sat.value())),
        util::splitmix64(window));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p_;
  }

  /// Expected fraction of satellite-time down (== down_probability).
  [[nodiscard]] double expected_downtime_fraction() const noexcept {
    return p_;
  }

 private:
  double p_;
  double window_s_;
  std::uint64_t seed_;
};

}  // namespace starcdn::core
