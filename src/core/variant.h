// Architecture variants the simulator can replay (see simulator.h for the
// full taxonomy and the paper sections each variant reproduces). Split out
// of simulator.h so report/sink code (run_report.h) can name variants
// without pulling in the whole simulator.
#pragma once

#include <cstdint>

namespace starcdn::core {

enum class Variant : std::uint8_t {
  kStatic,
  kVanillaLru,
  kHashOnly,
  kRelayOnly,
  kStarCdn,
  kPrefetch,
};

/// Paper-facing display name ("StarCDN", "StarCDN-Fetch", ...).
[[nodiscard]] const char* to_string(Variant v) noexcept;

}  // namespace starcdn::core
