#include "core/simulator.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/prof.h"
#include "obs/tracer.h"
#include "util/hash.h"
#include "util/parallel.h"

namespace starcdn::core {

using util::CityId;
using util::EpochIdx;
using util::SatId;

const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::kStatic: return "StaticCache";
    case Variant::kVanillaLru: return "VanillaLRU";
    case Variant::kHashOnly: return "StarCDN-Fetch";   // paper: minus fetch
    case Variant::kRelayOnly: return "StarCDN-Hashing";  // paper: minus hash
    case Variant::kStarCdn: return "StarCDN";
    case Variant::kPrefetch: return "StarCDN-Prefetch";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_config(const std::string& what) {
  throw std::invalid_argument("SimConfig: " + what);
}

bool perfect_square(int n) noexcept {
  if (n < 1) return false;
  int r = 0;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r * r == n;
}

SimConfig validated(SimConfig config) {
  config.validate();
  return config;
}

}  // namespace

void SimConfig::validate() const {
  if (cache_capacity == 0) bad_config("cache_capacity must be positive");
  if (!perfect_square(buckets)) {
    bad_config("buckets must be a positive perfect square (the replica "
               "grid tiles L = s*s orbital slots); got " +
               std::to_string(buckets));
  }
  if (prefetch_objects_per_epoch < 0) {
    bad_config("prefetch_objects_per_epoch must be >= 0");
  }
  if (transient_down_prob < 0.0 || transient_down_prob > 1.0) {
    bad_config("transient_down_prob must be in [0, 1]; got " +
               std::to_string(transient_down_prob));
  }
  if (transient_window.value() <= 0.0) {
    bad_config("transient_window must be positive");
  }
}

SimConfig SimConfig::Builder::build() const {
  if (prefetch_set_ && !cfg_.variants.empty()) {
    bool has_prefetch = false;
    for (const Variant v : cfg_.variants) {
      has_prefetch = has_prefetch || v == Variant::kPrefetch;
    }
    if (!has_prefetch) {
      bad_config("prefetch_objects_per_epoch is set but Variant::kPrefetch "
                 "is not among the registered variants — the knob would "
                 "silently do nothing");
    }
  }
  cfg_.validate();
  return cfg_;
}

Simulator::Simulator(const orbit::Constellation& constellation,
                     const sched::LinkSchedule& schedule, SimConfig config,
                     net::LatencyModelParams latency_params)
    : constellation_(&constellation),
      schedule_(&schedule),
      config_(validated(std::move(config))),
      mapper_(constellation, config_.buckets),
      latency_(latency_params),
      ids_(register_core_metrics(registry_)) {
  // Surface the constellation's failure remapping in the trace timeline:
  // one instant per inactive satellite, tagged with the slot that absorbs
  // its buckets (Fig. 11's failure scenario).
  if (obs::Tracer* tr = obs::tracer()) {
    for (int i = 0; i < constellation_->size(); ++i) {
      const SatId idx{i};
      if (constellation_->active(idx)) continue;
      std::vector<obs::TraceArg> args{
          obs::arg("sat", static_cast<std::int64_t>(i))};
      if (const auto target = mapper_.remap(constellation_->id_of(idx))) {
        args.push_back(obs::arg(
            "remapped_to",
            static_cast<std::int64_t>(
                constellation_->index_of(*target).value())));
      }
      tr->instant("sat_failed", "failure", std::move(args));
    }
  }
  for (const Variant v : config_.variants) add_variant(v);
}

void Simulator::add_variant(Variant v) {
  for (const auto& vs : variants_) {
    if (vs.variant == v) return;
  }
  VariantState vs;
  vs.variant = v;
  // Per-variant deterministic streams. The transient model is seeded
  // identically for every variant so they all observe the same outage
  // schedule; the latency-sampling RNG is variant-specific so streams stay
  // independent when variants replay concurrently. A variant registered
  // mid-stream picks up the shared request-counter position.
  vs.transient = TransientFailureModel(config_.transient_down_prob,
                                       config_.transient_window,
                                       config_.seed ^ 0xfa11u);
  vs.rng = util::Rng(config_.seed ^ static_cast<std::uint64_t>(v));
  vs.request_counter =
      variants_.empty() ? 0 : variants_.front().request_counter;
  vs.shard = obs::Shard(registry_);
  if (config_.record_epoch_series) {
    vs.series = obs::EpochSeries(&registry_, core_series_columns(ids_));
  }
  vs.metrics.latency_ms = util::QuantileSampler(config_.latency_reservoir);
  vs.caches.resize(static_cast<std::size_t>(constellation_->size()));
  if (v == Variant::kPrefetch) {
    vs.prefetch_epoch.assign(static_cast<std::size_t>(constellation_->size()),
                             ~0u);
  }
  if (config_.track_per_satellite) {
    const auto n = static_cast<std::size_t>(constellation_->size());
    vs.metrics.sat_requests.assign(n, 0);
    vs.metrics.sat_hits.assign(n, 0);
    vs.metrics.sat_bytes_requested.assign(n, 0);
    vs.metrics.sat_bytes_hit.assign(n, 0);
  }
  variants_.push_back(std::move(vs));
}

void Simulator::add_sink(MetricsSink& sink) { sinks_.push_back(&sink); }

const VariantMetrics& Simulator::metrics(Variant v) const {
  for (const auto& vs : variants_) {
    if (vs.variant == v) return vs.metrics;
  }
  throw std::out_of_range("Simulator::metrics: variant not registered");
}

const obs::Shard& Simulator::shard(Variant v) const {
  for (const auto& vs : variants_) {
    if (vs.variant == v) return vs.shard;
  }
  throw std::out_of_range("Simulator::shard: variant not registered");
}

cache::Cache& Simulator::cache_at(VariantState& vs, SatId sat) {
  auto& slot = vs.caches[util::as_index(sat)];
  if (!slot) {
    slot = cache::make_cache(
        config_.policy, config_.cache_capacity,
        cache::presize_hint(config_.cache_capacity,
                            config_.mean_object_size_hint));
  }
  return *slot;
}

void Simulator::note_sat(VariantState& vs, SatId sat,
                         const trace::Request& r, bool hit) {
  if (!config_.track_per_satellite) return;
  const auto i = util::as_index(sat);
  ++vs.metrics.sat_requests[i];
  vs.metrics.sat_bytes_requested[i] += r.size;
  if (hit) {
    ++vs.metrics.sat_hits[i];
    vs.metrics.sat_bytes_hit[i] += r.size;
  }
}

void Simulator::build_context(const trace::RequestView& view,
                              std::uint64_t counter_base, bool need_static,
                              std::vector<RequestContext>& ctx) {
  STARCDN_PROF_SCOPE("Simulator::stage1_context");
  const obs::TraceSpan stage1_span(obs::tracer(), "stage1_context", "core");
  const auto users_per_city =
      static_cast<std::uint64_t>(schedule_->params().users_per_city);
  ctx.resize(view.count());
  util::parallel_for(view.count(), [&](std::size_t i) {
    RequestContext& c = ctx[i];
    c.epoch = schedule_->epoch_of(util::Seconds{view.timestamp_s(i)});
    // Logical user terminal issuing this request: rotates through the
    // city's population so an epoch's requests spread over the candidate
    // satellites exactly as CosmicBeats splits them (§5.1).
    const std::uint64_t user =
        util::splitmix64(counter_base + i) % users_per_city;
    const CityId city{view.location(i)};
    c.fc = schedule_->first_contact(c.epoch, city, user);
    c.handover = false;
    if (c.epoch.value() > 0 && c.fc.sat.value() >= 0) {
      const sched::Candidate prev = schedule_->first_contact(
          EpochIdx{c.epoch.value() - 1}, city, user);
      c.handover = prev.sat.value() != c.fc.sat.value();
    }
    if (need_static) {
      c.fc_static = schedule_->first_contact(EpochIdx{0}, city, user);
    }
  });
}

void Simulator::replay_variant(VariantState& vs,
                               const trace::RequestView& view,
                               const std::vector<RequestContext>& ctx,
                               bool trace_epochs,
                               std::uint64_t& marked_epoch) {
  STARCDN_PROF_SCOPE("Simulator::variant_replay");
  const obs::TraceSpan replay_span(obs::tracer(), to_string(vs.variant),
                                   "variant");
  obs::Tracer* const tr = trace_epochs ? obs::tracer() : nullptr;
  const bool is_static = vs.variant == Variant::kStatic;
  const bool record_series = vs.series.enabled();
  for (std::size_t i = 0; i < view.count(); ++i) {
    ++vs.request_counter;
    const std::uint64_t real = ctx[i].epoch.value();
    if (record_series) vs.series.advance_to(real, vs.shard);
    if (tr != nullptr && real != marked_epoch) {
      marked_epoch = real;
      tr->instant("epoch", "sim", {obs::arg("epoch", real)});
    }
    // Handover accounting rides on the shared stage-1 context; kStatic
    // freezes the mapping, so it never hands over by construction.
    if (!is_static && ctx[i].handover) vs.shard.add(ids_.handovers);
    const EpochIdx sched_epoch = is_static ? EpochIdx{0} : ctx[i].epoch;
    process(vs, view[i], sched_epoch, ctx[i].epoch,
            is_static ? ctx[i].fc_static : ctx[i].fc);
  }
}

void Simulator::run(const std::vector<trace::Request>& requests) {
  if (variants_.empty() || requests.empty()) return;
  STARCDN_PROF_SCOPE("Simulator::run");
  obs::TraceSpan run_span(
      obs::tracer(), "Simulator::run", "core",
      {obs::arg("requests", static_cast<std::uint64_t>(requests.size())),
       obs::arg("variants", static_cast<std::uint64_t>(variants_.size()))});

  bool need_static = false;
  for (const auto& vs : variants_) {
    need_static = need_static || vs.variant == Variant::kStatic;
  }
  // All variant counters advance in lockstep; any of them anchors the
  // user-terminal rotation for this chunk of the stream.
  const std::uint64_t counter_base = variants_.front().request_counter;
  const trace::RequestView view(requests.data(), requests.size());
  std::vector<RequestContext> ctx;
  build_context(view, counter_base, need_static, ctx);

  // Stage 2 — one worker per variant. Each VariantState is self-contained
  // (caches, metrics shard, series, RNG, transient model, counter), and
  // requests within a variant replay strictly in trace order, so metrics
  // are bitwise identical for any thread count.
  util::parallel_for(variants_.size(), [&](std::size_t vi) {
    VariantState& vs = variants_[vi];
    std::uint64_t marked_epoch = ~0ULL;
    replay_variant(vs, view, ctx, vi == 0, marked_epoch);
    // Fold the trailing epoch's uplink accumulation into the statistics,
    // then project the shard back onto the legacy VariantMetrics view.
    vs.metrics.uplink_meter.flush();
    shard_to_metrics(ids_, vs.shard, vs.metrics);
  });
}

void Simulator::run(trace::RequestStream& stream) {
  if (variants_.empty()) return;
  STARCDN_PROF_SCOPE("Simulator::run");
  obs::TraceSpan run_span(
      obs::tracer(), "Simulator::run", "core",
      {obs::arg("variants", static_cast<std::uint64_t>(variants_.size()))});

  bool need_static = false;
  for (const auto& vs : variants_) {
    need_static = need_static || vs.variant == Variant::kStatic;
  }

  // Double buffer: while the variants replay block `cur`, the extra
  // parallel_for slot pulls the next block from the stream and builds its
  // stage-1 context (nested parallel_for runs inline on that worker). The
  // barrier at the end of each parallel_for keeps the hand-off race-free:
  // the producer is the only writer of blocks[1 - cur]/ctxs[1 - cur], and
  // nothing reads them until the next iteration.
  trace::RequestBlock blocks[2];
  std::vector<RequestContext> ctxs[2];
  // Chunk-base bookkeeping: the rotation seed advances by block length, so
  // terminals rotate exactly as in the materialized path regardless of how
  // the stream chops the trace. Tracked locally — variant counters mutate
  // concurrently with the producer's context build.
  std::uint64_t counter_base = variants_.front().request_counter;
  std::vector<std::uint64_t> marked(variants_.size(), ~0ULL);

  int cur = 0;
  bool have = stream.next(blocks[cur]) && !blocks[cur].empty();
  if (have) {
    build_context(trace::RequestView(blocks[cur]), counter_base, need_static,
                  ctxs[cur]);
  }
  while (have) {
    const std::uint64_t next_base = counter_base + blocks[cur].count();
    bool have_next = false;
    util::parallel_for(variants_.size() + 1, [&](std::size_t slot) {
      if (slot == variants_.size()) {
        have_next = stream.next(blocks[1 - cur]) && !blocks[1 - cur].empty();
        if (have_next) {
          build_context(trace::RequestView(blocks[1 - cur]), next_base,
                        need_static, ctxs[1 - cur]);
        }
        return;
      }
      replay_variant(variants_[slot], trace::RequestView(blocks[cur]),
                     ctxs[cur], slot == 0, marked[slot]);
    });
    counter_base = next_base;
    have = have_next;
    cur = 1 - cur;
  }

  for (auto& vs : variants_) {
    // One trailing fold per run, as in the materialized path: flushing per
    // block would split a (satellite, epoch) uplink cell at chunk
    // boundaries and skew the throughput statistics.
    vs.metrics.uplink_meter.flush();
    shard_to_metrics(ids_, vs.shard, vs.metrics);
  }
}

RunReport Simulator::finish() {
  STARCDN_PROF_SCOPE("Simulator::finish");
  const obs::TraceSpan span(obs::tracer(), "Simulator::finish", "core");
  RunReport report;
  report.epoch_seconds = schedule_->epoch_duration().value();
  report.seed = config_.seed;

  std::vector<const obs::Shard*> shards;
  shards.reserve(variants_.size());
  for (auto& vs : variants_) {
    vs.metrics.uplink_meter.flush();  // no-op unless a run left a partial
    vs.series.finish(vs.shard);       // close the trailing partial epoch
    shard_to_metrics(ids_, vs.shard, vs.metrics);

    VariantReport vr;
    vr.variant = vs.variant;
    vr.name = to_string(vs.variant);
    vr.metrics = vs.metrics;
    vr.series = vs.series.table(report.epoch_seconds);
    for (const auto& d : registry_.descriptors()) {
      if (d.kind != obs::Kind::kCounter) continue;
      vr.counters.emplace_back(d.name,
                               vs.shard.value(obs::CounterId{d.slot}));
    }
    report.variants.push_back(std::move(vr));
    shards.push_back(&vs.shard);
  }

  // Fleet totals: shards merged in variant registration order — the
  // determinism contract of obs::merge.
  const obs::Shard merged = obs::merge(registry_, shards);
  for (const auto& d : registry_.descriptors()) {
    if (d.kind != obs::Kind::kCounter) continue;
    report.totals.emplace_back(d.name, merged.value(obs::CounterId{d.slot}));
  }
  report.profile = obs::profile_report();

  for (MetricsSink* sink : sinks_) sink->consume(report);
  return report;
}

void Simulator::maybe_prefetch(VariantState& vs, SatId serving,
                               EpochIdx epoch) {
  // The §3.3 alternative design: on entering a new scheduler epoch, a
  // satellite speculatively pulls the hottest objects of its trailing
  // ("west") same-bucket replica — the satellite that just served the
  // region this one is flying into. Prefetched bytes burn ISL bandwidth
  // and cache space whether or not they are ever requested; the ablation
  // bench quantifies why the paper prefers miss-triggered relay.
  auto& stamp = vs.prefetch_epoch[util::as_index(serving)];
  if (stamp == epoch.value()) return;
  stamp = static_cast<std::uint32_t>(epoch.value());
  const auto west = mapper_.west_replica(constellation_->id_of(serving));
  if (!west) return;
  auto& replica_slot =
      vs.caches[util::as_index(constellation_->index_of(*west))];
  if (!replica_slot) return;  // neighbour has served nothing yet
  cache::Cache& own = cache_at(vs, serving);
  for (const auto& [id, size] :
       replica_slot->hottest(
           static_cast<std::size_t>(config_.prefetch_objects_per_epoch))) {
    if (own.peek(id)) continue;
    own.admit(id, size);
    vs.shard.add(ids_.isl_bytes, size);
    vs.shard.add(ids_.prefetch_bytes, size);
  }
}

void Simulator::process(VariantState& vs, const trace::Request& r,
                        EpochIdx sched_epoch, EpochIdx real_epoch,
                        const sched::Candidate& fc) {
  VariantMetrics& m = vs.metrics;  // sampler + uplink meter + sat_* only;
  obs::Shard& sh = vs.shard;       // every scalar counter goes here
  sh.add(ids_.requests);
  sh.add(ids_.bytes_requested, r.size);
  const auto sample = [&](double ms) {
    m.latency_ms.add(ms);
    sh.observe(ids_.latency_ms, ms);
  };

  if (fc.sat.value() < 0) {
    // Coverage gap: served bent-pipe from the ground via a remote link.
    sh.add(ids_.unreachable);
    sh.add(ids_.misses);
    sh.add(ids_.uplink_bytes, r.size);
    if (config_.sample_latency) {
      sample(
          latency_.bentpipe_starlink(latency_.params().default_gsl, vs.rng)
              .value());
    }
    return;
  }

  const util::Millis gsl{fc.gsl_one_way_ms};
  const orbit::SatelliteId fc_id = constellation_->id_of(fc.sat);
  const bool hashed = vs.variant == Variant::kHashOnly ||
                      vs.variant == Variant::kStarCdn ||
                      vs.variant == Variant::kPrefetch;

  // --- Resolve the serving satellite --------------------------------------
  orbit::SatelliteId serving = fc_id;
  util::Millis route{0.0};
  if (hashed) {
    const util::BucketId bucket = mapper_.bucket_of_object(r.object);
    if (const auto owner = mapper_.owner(fc_id, bucket)) {
      serving = *owner;
      const auto [inter, intra] = mapper_.hop_split(fc_id, serving);
      route = latency_.grid_hops_delay(inter, intra);
    }
  }
  const SatId serving_idx = constellation_->index_of(serving);

  // Transient cache-server outage (§3.4): report a miss and go to ground;
  // nothing is cached and no remapping happens.
  if (vs.transient.down(serving_idx, util::Seconds{r.timestamp_s})) {
    sh.add(ids_.transient_misses);
    sh.add(ids_.misses);
    sh.add(ids_.uplink_bytes, r.size);
    m.uplink_meter.add(serving_idx, real_epoch, r.size);
    if (config_.sample_latency) {
      sample(
          latency_.miss(gsl, route, latency_.params().default_gsl, vs.rng)
              .value());
    }
    return;
  }

  if (vs.variant == Variant::kPrefetch) {
    maybe_prefetch(vs, serving_idx, sched_epoch);
  }
  cache::Cache& serving_cache = cache_at(vs, serving_idx);

  // --- Hit at the serving satellite ---------------------------------------
  if (serving_cache.touch(r.object)) {
    sh.add(ids_.bytes_hit, r.size);
    if (serving_idx == fc.sat) {
      sh.add(ids_.local_hits);
    } else {
      sh.add(ids_.routed_hits);
      sh.add(ids_.isl_bytes, r.size);
    }
    note_sat(vs, serving_idx, r, true);
    if (config_.sample_latency) {
      sample(route.value() > 0.0 ? latency_.hit_routed(gsl, route).value()
                                 : latency_.hit_local(gsl).value());
    }
    return;
  }
  note_sat(vs, serving_idx, r, false);

  // --- Relayed fetch (§3.3) ------------------------------------------------
  const bool relaying = vs.variant == Variant::kRelayOnly ||
                        vs.variant == Variant::kStarCdn;
  if (relaying) {
    // Same-bucket replicas for the hashed system; immediate inter-orbit
    // neighbours when running without hashing.
    std::optional<orbit::SatelliteId> west;
    std::optional<orbit::SatelliteId> east;
    int relay_hops = 0;
    if (vs.variant == Variant::kStarCdn) {
      west = mapper_.west_replica(serving);
      east = config_.relay_east ? mapper_.east_replica(serving) : std::nullopt;
      relay_hops = mapper_.tile_side();
    } else {
      // Without hashing the replicas are the immediate inter-orbit
      // neighbours; "west" is the trailing (+RAAN) plane as above.
      const auto w = constellation_->inter_east(serving);
      const auto e = constellation_->inter_west(serving);
      if (constellation_->active(constellation_->index_of(w))) west = w;
      if (config_.relay_east &&
          constellation_->active(constellation_->index_of(e))) {
        east = e;
      }
      relay_hops = 1;
    }
    const bool west_has =
        west && vs.caches[util::as_index(constellation_->index_of(*west))] &&
        vs.caches[util::as_index(constellation_->index_of(*west))]
            ->peek(r.object);
    const bool east_has =
        east && vs.caches[util::as_index(constellation_->index_of(*east))] &&
        vs.caches[util::as_index(constellation_->index_of(*east))]
            ->peek(r.object);

    // Table 3 accounting: what was available among the neighbours when the
    // owner missed.
    if (west_has && east_has) {
      sh.add(ids_.relay_both_requests);
      sh.add(ids_.relay_both_bytes, r.size);
    } else if (west_has) {
      sh.add(ids_.relay_west_only_requests);
      sh.add(ids_.relay_west_only_bytes, r.size);
    } else if (east_has) {
      sh.add(ids_.relay_east_only_requests);
      sh.add(ids_.relay_east_only_bytes, r.size);
    }

    if (west_has || east_has) {
      const orbit::SatelliteId replica = west_has ? *west : *east;
      cache::Cache& replica_cache =
          cache_at(vs, constellation_->index_of(replica));
      replica_cache.touch(r.object);  // serving refreshes the replica's state
      serving_cache.admit(r.object, r.size);  // backflow: owner caches it
      if (west_has) {
        sh.add(ids_.relay_west_hits);
      } else {
        sh.add(ids_.relay_east_hits);
      }
      sh.add(ids_.bytes_hit, r.size);
      sh.add(ids_.isl_bytes, r.size);
      if (config_.sample_latency) {
        const util::Millis relay =
            static_cast<double>(relay_hops) *
            latency_.params().inter_orbit_hop;
        sample(latency_.hit_relayed(gsl, route, relay).value());
      }
      return;
    }
  }

  // --- Total miss: fetch from the ground (uplink spend) --------------------
  sh.add(ids_.misses);
  sh.add(ids_.uplink_bytes, r.size);
  m.uplink_meter.add(serving_idx, real_epoch, r.size);
  serving_cache.admit(r.object, r.size);
  if (config_.sample_latency) {
    sample(
        latency_.miss(gsl, route, latency_.params().default_gsl, vs.rng)
            .value());
  }
}

std::vector<int> Simulator::buckets_served_per_satellite() const {
  // Count how many grid slots each active satellite inherits after failure
  // remapping; a healthy satellite serves exactly its own slot.
  std::vector<int> served(static_cast<std::size_t>(constellation_->size()), 0);
  for (int i = 0; i < constellation_->size(); ++i) {
    if (const auto target = mapper_.remap(constellation_->id_of(SatId{i}))) {
      ++served[util::as_index(constellation_->index_of(*target))];
    }
  }
  return served;
}

}  // namespace starcdn::core
