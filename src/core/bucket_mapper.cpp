#include "core/bucket_mapper.h"

#include <cmath>
#include <stdexcept>

#include "util/hash.h"

namespace starcdn::core {

namespace {

int wrap(int v, int n) noexcept {
  v %= n;
  return v < 0 ? v + n : v;
}

/// Minimal toroidal distance and its signed direction.
int toroidal_abs(int d, int n) noexcept {
  d = wrap(d, n);
  return std::min(d, n - d);
}

}  // namespace

BucketMapper::BucketMapper(const orbit::Constellation& constellation,
                           int buckets)
    : constellation_(&constellation), l_(buckets) {
  side_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(buckets))));
  if (side_ * side_ != buckets || buckets <= 0) {
    throw std::invalid_argument(
        "BucketMapper: bucket count must be a positive perfect square");
  }
  remap_cache_ =
      std::vector<std::atomic<int>>(static_cast<std::size_t>(constellation.size()));
  for (auto& entry : remap_cache_) entry.store(-2, std::memory_order_relaxed);
}

util::BucketId BucketMapper::bucket_of_object(
    cache::ObjectId id) const noexcept {
  return util::BucketId{static_cast<std::int32_t>(
      util::splitmix64(id) % static_cast<std::uint64_t>(l_))};
}

util::BucketId BucketMapper::bucket_of_slot(
    orbit::SatelliteId id) const noexcept {
  return util::BucketId{(id.plane.value() % side_) * side_ +
                        (id.slot.value() % side_)};
}

orbit::SatelliteId BucketMapper::nominal_owner(
    orbit::SatelliteId from, util::BucketId bucket) const noexcept {
  const int bp = bucket.value() / side_;  // required plane residue (mod side)
  const int bs = bucket.value() % side_;  // required slot residue (mod side)
  const auto nearest = [&](int cur, int residue, int n) {
    // Candidate coordinates with the right residue on either side of `cur`.
    const int fwd = wrap(residue - cur, side_);        // 0..side-1 steps ahead
    const int back = side_ - fwd;                      // steps behind
    const int cand_fwd = wrap(cur + fwd, n);
    const int cand_back = wrap(cur - back, n);
    if (fwd == 0) return cand_fwd;
    return toroidal_abs(fwd, n) <= toroidal_abs(back, n) ? cand_fwd
                                                         : cand_back;
  };
  return orbit::grid_id(
      nearest(from.plane.value(), bp, constellation_->planes()),
      nearest(from.slot.value(), bs, constellation_->slots_per_plane()));
}

std::optional<orbit::SatelliteId> BucketMapper::remap(
    orbit::SatelliteId nominal) const {
  const auto& c = *constellation_;
  const util::SatId idx = c.index_of(nominal);
  std::atomic<int>& slot = remap_cache_[util::as_index(idx)];
  const int cached = slot.load(std::memory_order_relaxed);
  if (cached != -2) {
    if (cached == -1) return std::nullopt;
    return c.id_of(util::SatId{cached});
  }
  if (c.active(idx)) {
    slot.store(idx.value(), std::memory_order_relaxed);
    return nominal;
  }
  // Ring search by grid distance; deterministic scan order so every
  // requester resolves the same substitute (§3.4: "the next available
  // satellite").
  const int max_r = c.planes() / 2 + c.slots_per_plane() / 2;
  for (int r = 1; r <= max_r; ++r) {
    for (int dp = -r; dp <= r; ++dp) {
      const int rem = r - std::abs(dp);
      for (const int ds : rem == 0 ? std::vector<int>{0}
                                   : std::vector<int>{-rem, rem}) {
        const orbit::SatelliteId cand =
            orbit::grid_id(wrap(nominal.plane.value() + dp, c.planes()),
                           wrap(nominal.slot.value() + ds,
                                c.slots_per_plane()));
        const util::SatId cidx = c.index_of(cand);
        if (c.active(cidx)) {
          slot.store(cidx.value(), std::memory_order_relaxed);
          return cand;
        }
      }
    }
  }
  slot.store(-1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<orbit::SatelliteId> BucketMapper::owner(
    orbit::SatelliteId from, util::BucketId bucket) const {
  return remap(nominal_owner(from, bucket));
}

std::optional<orbit::SatelliteId> BucketMapper::west_replica(
    orbit::SatelliteId owner_sat) const {
  // "West" in the paper's sense: the same-bucket neighbour that traced this
  // satellite's current ground track one drift interval earlier (Fig. 3) and
  // therefore holds the region's recent footprint. Ground tracks drift
  // westward relative to the planes, so the trailing neighbour is the one
  // `side_` planes in the +RAAN direction.
  const auto target = remap(constellation_->plane_offset(owner_sat, side_));
  if (target && !(*target == owner_sat)) return target;
  return std::nullopt;
}

std::optional<orbit::SatelliteId> BucketMapper::east_replica(
    orbit::SatelliteId owner_sat) const {
  const auto target =
      remap(constellation_->plane_offset(owner_sat, -side_));
  if (target && !(*target == owner_sat)) return target;
  return std::nullopt;
}

std::pair<int, int> BucketMapper::hop_split(
    orbit::SatelliteId a, orbit::SatelliteId b) const noexcept {
  return {toroidal_abs(b.plane.value() - a.plane.value(),
                       constellation_->planes()),
          toroidal_abs(b.slot.value() - a.slot.value(),
                       constellation_->slots_per_plane())};
}

int BucketMapper::worst_case_hops() const noexcept { return 2 * (side_ / 2); }

}  // namespace starcdn::core
