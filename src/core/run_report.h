// Run reports and metric sinks: the simulator's output API (DESIGN.md §11).
//
// VariantMetrics used to be the simulator's hard-coded output; it is now
// one *view* of an obs::Registry. Every scalar counter the hot path
// increments goes through a per-variant obs::Shard via the CoreMetricIds
// handles below, and Simulator syncs the shard back into the familiar
// VariantMetrics fields — so existing figure code keeps reading
// `sim.metrics(v).uplink_bytes` while new code gets, from the same single
// source of truth:
//
//   * RunReport       — self-contained result of a run: per-variant
//                       metrics + epoch time-series + counter snapshots,
//                       fleet totals, and the hot-path profile. Survives
//                       the Simulator that produced it.
//   * MetricsSink     — consumer interface; register sinks with
//                       Simulator::add_sink() and they fire on finish().
//   * SeriesCsvSink / SummarySink / TraceJsonSink — stock sinks covering
//                       the bench harness and examples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/variant.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/series.h"

namespace starcdn::core {

/// Handles for every scalar counter the replay hot path updates, plus the
/// latency histogram. Issued once per Simulator by register_core_metrics().
struct CoreMetricIds {
  obs::CounterId requests;
  obs::CounterId local_hits;
  obs::CounterId routed_hits;
  obs::CounterId relay_west_hits;
  obs::CounterId relay_east_hits;
  obs::CounterId misses;
  obs::CounterId unreachable;
  obs::CounterId transient_misses;
  obs::CounterId handovers;

  obs::CounterId bytes_requested;
  obs::CounterId bytes_hit;
  obs::CounterId uplink_bytes;
  obs::CounterId isl_bytes;
  obs::CounterId prefetch_bytes;

  obs::CounterId relay_west_only_requests;
  obs::CounterId relay_east_only_requests;
  obs::CounterId relay_both_requests;
  obs::CounterId relay_west_only_bytes;
  obs::CounterId relay_east_only_bytes;
  obs::CounterId relay_both_bytes;

  obs::HistogramId latency_ms;
};

/// Register the core schema into `registry` and hand back the handles.
[[nodiscard]] CoreMetricIds register_core_metrics(obs::Registry& registry);

/// The counters recorded per scheduler epoch by the EpochSeries (the
/// ingredients of hit-rate / uplink / handover time-series).
[[nodiscard]] std::vector<obs::CounterId> core_series_columns(
    const CoreMetricIds& ids);

/// Sync a shard's cumulative counters into the legacy VariantMetrics
/// scalar fields (assignment, so repeated syncs are idempotent).
void shard_to_metrics(const CoreMetricIds& ids, const obs::Shard& shard,
                      VariantMetrics& m);

/// Derived per-epoch rate columns (request/byte hit rate, normalized
/// uplink) for exporting a core series table.
[[nodiscard]] std::vector<obs::SeriesTable::Derived> core_series_derived(
    const obs::SeriesTable& table);

/// One variant's share of a run, fully materialized.
struct VariantReport {
  Variant variant = Variant::kStarCdn;
  std::string name;          ///< to_string(variant)
  VariantMetrics metrics;    ///< synced view (includes latency sampler)
  obs::SeriesTable series;   ///< per-epoch counters; empty when disabled
  /// Registry counter snapshot (name, cumulative value) in registration
  /// order — the raw data behind `metrics`.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Self-contained result of a simulator run; outlives the Simulator.
struct RunReport {
  double epoch_seconds = 15.0;
  std::uint64_t seed = 0;
  std::vector<VariantReport> variants;
  /// Deterministic cross-variant totals (shards merged in registration
  /// order).
  std::vector<std::pair<std::string, std::uint64_t>> totals;
  obs::ProfileReport profile;

  [[nodiscard]] const VariantReport* find(Variant v) const noexcept;
  /// Throws std::out_of_range when the variant was not registered.
  [[nodiscard]] const VariantReport& variant(Variant v) const;

  /// Epoch time-series CSV for one variant, with derived rate columns.
  void write_series_csv(Variant v, std::ostream& os) const;
  /// One `<prefix><variant-name>.csv` per variant; returns written paths.
  std::vector<std::string> write_series_csv_files(
      const std::string& prefix) const;
  /// Aligned per-variant summary table (+ hot-path profile when compiled).
  void write_summary(std::ostream& os) const;
  /// Whole report as one JSON object (counters, summary rates, series).
  void write_json(std::ostream& os) const;
};

/// Consumer of a finished run; register via Simulator::add_sink(). Sinks
/// are invoked in registration order from Simulator::finish().
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void consume(const RunReport& report) = 0;
};

/// Prints RunReport::write_summary to a stream on finish().
class SummarySink final : public MetricsSink {
 public:
  explicit SummarySink(std::ostream& os) : os_(&os) {}
  void consume(const RunReport& report) override;

 private:
  std::ostream* os_;
};

/// Writes one epoch-series CSV per variant: `<prefix><variant-name>.csv`.
class SeriesCsvSink final : public MetricsSink {
 public:
  explicit SeriesCsvSink(std::string prefix) : prefix_(std::move(prefix)) {}
  void consume(const RunReport& report) override;
  [[nodiscard]] const std::vector<std::string>& paths() const noexcept {
    return paths_;
  }

 private:
  std::string prefix_;
  std::vector<std::string> paths_;
};

/// Flushes the process-wide obs::Tracer (if installed) to a JSON file.
class TraceJsonSink final : public MetricsSink {
 public:
  explicit TraceJsonSink(std::string path) : path_(std::move(path)) {}
  void consume(const RunReport& report) override;
  /// True once a trace file was actually written.
  [[nodiscard]] bool written() const noexcept { return written_; }

 private:
  std::string path_;
  bool written_ = false;
};

}  // namespace starcdn::core
