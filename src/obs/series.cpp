#include "obs/series.h"

#include <limits>
#include <ostream>

namespace starcdn::obs {

std::size_t SeriesTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return std::numeric_limits<std::size_t>::max();
}

void SeriesTable::write_csv(std::ostream& os,
                            const std::vector<Derived>& derived) const {
  os << "epoch,t_end_s";
  for (const auto& c : columns) os << ',' << c;
  for (const auto& d : derived) os << ',' << d.name;
  os << '\n';
  const std::streamsize prev = os.precision(6);
  const auto flags = os.flags();
  os.setf(std::ios::fixed, std::ios::floatfield);
  for (std::size_t r = 0; r < rows(); ++r) {
    os << epochs[r] << ','
       << static_cast<double>(epochs[r] + 1) * epoch_seconds;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << ',' << delta(r, c);
    }
    for (const auto& d : derived) {
      os << ',' << d.fn(*this, r);
    }
    os << '\n';
  }
  os.precision(prev);
  os.flags(flags);
}

void SeriesTable::write_json(std::ostream& os) const {
  os << "{\"epoch_seconds\":" << epoch_seconds << ",\"columns\":[";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) os << ',';
    os << '"' << columns[c] << '"';
  }
  os << "],\"epochs\":[";
  for (std::size_t r = 0; r < rows(); ++r) {
    if (r != 0) os << ',';
    os << epochs[r];
  }
  os << "],\"deltas\":[";
  for (std::size_t r = 0; r < rows(); ++r) {
    if (r != 0) os << ',';
    os << '[';
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) os << ',';
      os << delta(r, c);
    }
    os << ']';
  }
  os << "]}";
}

EpochSeries::EpochSeries(const Registry* registry,
                         std::vector<CounterId> columns)
    : registry_(registry), columns_(std::move(columns)) {}

void EpochSeries::snapshot_row(std::uint64_t epoch, const Shard& shard) {
  epochs_.push_back(epoch);
  for (const CounterId c : columns_) values_.push_back(shard.value(c));
}

void EpochSeries::advance_slow(std::uint64_t epoch, const Shard& shard) {
  if (registry_ == nullptr || finished_) return;
  while (next_epoch_ < epoch) {
    snapshot_row(next_epoch_, shard);
    ++next_epoch_;
  }
}

void EpochSeries::finish(const Shard& shard) {
  if (registry_ == nullptr || finished_) return;
  snapshot_row(next_epoch_, shard);
  finished_ = true;
}

SeriesTable EpochSeries::table(double epoch_seconds) const {
  SeriesTable t;
  t.epoch_seconds = epoch_seconds;
  if (registry_ == nullptr) return t;
  t.columns.reserve(columns_.size());
  for (const CounterId c : columns_) t.columns.push_back(registry_->name_of(c));
  t.epochs = epochs_;
  t.values = values_;
  return t;
}

}  // namespace starcdn::obs
