#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace starcdn::obs {

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricDesc* Registry::lookup(const std::string& name, Kind kind) const {
  for (const auto& d : descriptors_) {
    if (d.name != name) continue;
    if (d.kind != kind) {
      throw std::invalid_argument("obs::Registry: metric '" + name +
                                  "' already registered as " +
                                  to_string(d.kind));
    }
    return &d;
  }
  return nullptr;
}

CounterId Registry::counter(std::string name, std::string help,
                            std::string unit) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* d = lookup(name, Kind::kCounter)) return {d->slot};
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.unit = std::move(unit);
  d.kind = Kind::kCounter;
  d.slot = n_counters_++;
  descriptors_.push_back(std::move(d));
  return {descriptors_.back().slot};
}

GaugeId Registry::gauge(std::string name, std::string help,
                        std::string unit) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* d = lookup(name, Kind::kGauge)) return {d->slot};
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.unit = std::move(unit);
  d.kind = Kind::kGauge;
  d.slot = n_gauges_++;
  descriptors_.push_back(std::move(d));
  return {descriptors_.back().slot};
}

HistogramId Registry::histogram(std::string name, std::string help,
                                std::vector<double> bounds,
                                std::string unit) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument(
        "obs::Registry: histogram bounds must be ascending");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* d = lookup(name, Kind::kHistogram)) return {d->slot};
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.unit = std::move(unit);
  d.kind = Kind::kHistogram;
  d.slot = n_histograms_++;
  d.bounds = std::move(bounds);
  descriptors_.push_back(std::move(d));
  return {descriptors_.back().slot};
}

std::optional<MetricDesc> Registry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& d : descriptors_) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

const std::string& Registry::name_of(CounterId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& d : descriptors_) {
    if (d.kind == Kind::kCounter && d.slot == id.index) return d.name;
  }
  throw std::out_of_range("obs::Registry::name_of: unknown counter handle");
}

Shard::Shard(const Registry& registry) {
  counters_.assign(registry.counters(), 0);
  gauges_.assign(registry.gauges(), 0.0);
  gauge_set_.assign(registry.gauges(), 0);
  histograms_.resize(registry.histograms());
  bounds_.resize(registry.histograms());
  for (const auto& d : registry.descriptors()) {
    if (d.kind != Kind::kHistogram) continue;
    histograms_[d.slot].counts.assign(d.bounds.size() + 1, 0);
    // Bounds are copied per slot so a Shard outlives its Registry safely.
    bounds_[d.slot] = d.bounds;
  }
}

void Shard::observe(HistogramId h, double x) noexcept {
  assert(h.index < histograms_.size());
  HistogramCells& cells = histograms_[h.index];
  const std::vector<double>& bounds = bounds_[h.index];
  std::size_t b = 0;
  while (b < bounds.size() && x > bounds[b]) ++b;
  ++cells.counts[b];
  ++cells.count;
  cells.sum += x;
}

void Shard::merge_from(const Shard& other) {
  if (other.counters_.size() != counters_.size() ||
      other.gauges_.size() != gauges_.size() ||
      other.histograms_.size() != histograms_.size()) {
    throw std::invalid_argument("obs::Shard::merge_from: schema mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (other.gauge_set_[i] != 0) {
      gauges_[i] = other.gauges_[i];
      gauge_set_[i] = 1;
    }
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    HistogramCells& mine = histograms_[i];
    const HistogramCells& theirs = other.histograms_[i];
    for (std::size_t b = 0; b < mine.counts.size(); ++b) {
      mine.counts[b] += theirs.counts[b];
    }
    mine.count += theirs.count;
    mine.sum += theirs.sum;
  }
}

Shard merge(const Registry& registry, const std::vector<const Shard*>& shards) {
  Shard out(registry);
  for (const Shard* s : shards) {
    if (s != nullptr) out.merge_from(*s);
  }
  return out;
}

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_csv(const Registry& registry, const Shard& shard,
               std::ostream& os) {
  os << "name,kind,unit,value\n";
  for (const auto& d : registry.descriptors()) {
    switch (d.kind) {
      case Kind::kCounter:
        os << d.name << ",counter," << d.unit << ','
           << shard.value(CounterId{d.slot}) << '\n';
        break;
      case Kind::kGauge:
        os << d.name << ",gauge," << d.unit << ','
           << shard.value(GaugeId{d.slot}) << '\n';
        break;
      case Kind::kHistogram: {
        const HistogramCells& cells = shard.cells(HistogramId{d.slot});
        os << d.name << "_count,histogram," << d.unit << ',' << cells.count
           << '\n';
        os << d.name << "_sum,histogram," << d.unit << ',' << cells.sum
           << '\n';
        for (std::size_t b = 0; b < cells.counts.size(); ++b) {
          os << d.name << "_bucket_le_";
          if (b < d.bounds.size()) {
            os << d.bounds[b];
          } else {
            os << "inf";
          }
          os << ",histogram," << d.unit << ',' << cells.counts[b] << '\n';
        }
        break;
      }
    }
  }
}

void write_json(const Registry& registry, const Shard& shard,
                std::ostream& os) {
  os << '{';
  bool first = true;
  for (const auto& d : registry.descriptors()) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, d.name);
    os << ':';
    switch (d.kind) {
      case Kind::kCounter: os << shard.value(CounterId{d.slot}); break;
      case Kind::kGauge: os << shard.value(GaugeId{d.slot}); break;
      case Kind::kHistogram: {
        const HistogramCells& cells = shard.cells(HistogramId{d.slot});
        os << "{\"count\":" << cells.count << ",\"sum\":" << cells.sum
           << ",\"buckets\":[";
        for (std::size_t b = 0; b < cells.counts.size(); ++b) {
          if (b != 0) os << ',';
          os << cells.counts[b];
        }
        os << "]}";
        break;
      }
    }
  }
  os << '}';
}

}  // namespace starcdn::obs
