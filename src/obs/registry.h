// Deterministic metrics registry (DESIGN.md §11).
//
// A Registry is the *schema*: named counters, gauges and histograms are
// registered once at setup time, each handing back a small index handle.
// Values live in Shards — flat arrays aligned to the schema — owned one
// per worker (the simulator keeps one per variant), so a hot-path update
// is a single unsynchronized array add through the handle. merge() folds
// shards in caller order; as long as the shard *list* is deterministic
// (the simulator passes variants in registration order), the merged values
// are bitwise identical for any thread count.
//
// Registration is mutex-protected so setup code may race; create Shards
// only after the schema is complete (Shard sizes are frozen at
// construction, and updating a metric registered later is checked by
// assert in debug builds).
#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace starcdn::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(Kind k) noexcept;

/// Handles are plain indices into a Shard's per-kind value arrays; they are
/// meaningful only together with the Registry that issued them.
struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

struct MetricDesc {
  std::string name;
  std::string help;
  std::string unit;
  Kind kind = Kind::kCounter;
  std::uint32_t slot = 0;      ///< index within the kind's value array
  std::vector<double> bounds;  ///< histogram upper bounds (ascending)
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or re-fetch, by name) a monotonically increasing counter.
  CounterId counter(std::string name, std::string help, std::string unit = "");
  /// Register a last-write-wins gauge.
  GaugeId gauge(std::string name, std::string help, std::string unit = "");
  /// Register a histogram with ascending bucket upper bounds; an implicit
  /// +inf bucket is appended. Throws std::invalid_argument on unsorted
  /// bounds or a name collision with a different kind.
  HistogramId histogram(std::string name, std::string help,
                        std::vector<double> bounds, std::string unit = "");

  /// All descriptors in registration order.
  [[nodiscard]] const std::vector<MetricDesc>& descriptors() const noexcept {
    return descriptors_;
  }
  [[nodiscard]] std::optional<MetricDesc> find(
      const std::string& name) const;

  [[nodiscard]] std::size_t counters() const noexcept { return n_counters_; }
  [[nodiscard]] std::size_t gauges() const noexcept { return n_gauges_; }
  [[nodiscard]] std::size_t histograms() const noexcept {
    return n_histograms_;
  }

  /// Name of a counter handle (for series headers and exports).
  [[nodiscard]] const std::string& name_of(CounterId id) const;

 private:
  const MetricDesc* lookup(const std::string& name, Kind kind) const;

  mutable std::mutex mu_;
  std::vector<MetricDesc> descriptors_;
  std::uint32_t n_counters_ = 0;
  std::uint32_t n_gauges_ = 0;
  std::uint32_t n_histograms_ = 0;
};

/// Histogram value state inside a Shard.
struct HistogramCells {
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 cells
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One worker's value storage, aligned to a Registry's schema. Updates are
/// unsynchronized — each Shard must be owned by exactly one thread at a
/// time (the merge step runs after workers join).
class Shard {
 public:
  Shard() = default;
  explicit Shard(const Registry& registry);

  void add(CounterId c, std::uint64_t n = 1) noexcept {
    assert(c.index < counters_.size());
    counters_[c.index] += n;
  }
  void set(GaugeId g, double v) noexcept {
    assert(g.index < gauges_.size());
    gauges_[g.index] = v;
    gauge_set_[g.index] = 1;
  }
  void observe(HistogramId h, double x) noexcept;

  [[nodiscard]] std::uint64_t value(CounterId c) const noexcept {
    assert(c.index < counters_.size());
    return counters_[c.index];
  }
  [[nodiscard]] double value(GaugeId g) const noexcept {
    assert(g.index < gauges_.size());
    return gauges_[g.index];
  }
  [[nodiscard]] bool is_set(GaugeId g) const noexcept {
    return g.index < gauge_set_.size() && gauge_set_[g.index] != 0;
  }
  [[nodiscard]] const HistogramCells& cells(HistogramId h) const noexcept {
    assert(h.index < histograms_.size());
    return histograms_[h.index];
  }

  /// Fold `other` into this shard: counters and histogram cells add;
  /// gauges take `other`'s value when it was set there (last-writer-wins
  /// in merge order).
  void merge_from(const Shard& other);

  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }

 private:
  friend class Registry;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<std::uint8_t> gauge_set_;
  std::vector<HistogramCells> histograms_;
  std::vector<std::vector<double>> bounds_;  ///< histogram bounds per slot
};

/// Merge shards in argument order into a fresh snapshot shard. The order is
/// the determinism contract: callers must pass a deterministically ordered
/// list (e.g. variant registration order), never thread-completion order.
[[nodiscard]] Shard merge(const Registry& registry,
                          const std::vector<const Shard*>& shards);

/// name,kind,unit,value rows (histograms expand to _count/_sum/_bucket).
void write_csv(const Registry& registry, const Shard& shard,
               std::ostream& os);
/// Single JSON object keyed by metric name.
void write_json(const Registry& registry, const Shard& shard,
                std::ostream& os);

}  // namespace starcdn::obs
