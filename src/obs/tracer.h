// Structured event tracer in Chrome trace-event JSON (DESIGN.md §11).
//
// Records complete spans (simulator phases, per-variant replays, schedule
// construction) and instant events (epoch boundaries, failure remaps) into
// an in-memory buffer, exported as the chrome://tracing / Perfetto JSON
// object format: {"traceEvents":[...],"displayTimeUnit":"ms"}. Open the
// file at https://ui.perfetto.dev to see the run's phase structure and
// thread-level parallelism.
//
// The tracer observes wall clock and phase structure only — it never
// influences simulation state, so results are bitwise identical with
// tracing on or off. Event appends are mutex-protected (spans fire at
// phase granularity, not per request). Install a tracer process-wide with
// set_tracer(); all instrumentation points no-op on a null tracer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace starcdn::obs {

/// One trace-event arg; `quoted` distinguishes JSON strings from numbers.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

[[nodiscard]] TraceArg arg(std::string key, std::string value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg arg(std::string key, std::int64_t value);
[[nodiscard]] TraceArg arg(std::string key, double value);

struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';            ///< 'X' complete, 'i' instant
  std::int64_t ts_us = 0;   ///< since tracer construction
  std::int64_t dur_us = 0;  ///< complete events only
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  Tracer();

  /// Microseconds since this tracer was constructed.
  [[nodiscard]] std::int64_t now_us() const noexcept;

  /// Record a complete ('X') event covering [ts_us, ts_us + dur_us).
  void complete(std::string name, const char* cat, std::int64_t ts_us,
                std::int64_t dur_us, std::vector<TraceArg> args = {});
  /// Record an instant ('i') event at the current time.
  void instant(std::string name, const char* cat,
               std::vector<TraceArg> args = {});

  [[nodiscard]] std::size_t events() const;

  void write_json(std::ostream& os) const;
  /// Returns false (and logs nothing) when the file cannot be opened.
  bool write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::int64_t origin_ns_ = 0;
};

/// Process-wide tracer installation; nullptr disables tracing. The tracer
/// is not owned — the installer keeps it alive past the last traced call.
void set_tracer(Tracer* t) noexcept;
[[nodiscard]] Tracer* tracer() noexcept;

/// RAII complete-event span; no-ops on a null tracer, so call sites write
/// `TraceSpan span(tracer(), "Simulator::run", "core");` unconditionally.
class TraceSpan {
 public:
  TraceSpan(Tracer* t, const char* name, const char* cat,
            std::vector<TraceArg> args = {}) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach/replace args after construction (e.g. result counts).
  void set_args(std::vector<TraceArg> args);

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  std::int64_t start_us_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace starcdn::obs
