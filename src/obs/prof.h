// Scoped hot-path profiling timers (DESIGN.md §11).
//
// STARCDN_PROF_SCOPE("name") opens a wall-clock scope recorded into a
// thread-local table and aggregated across threads into a per-run
// ProfileReport (calls / total / mean / max per scope, merged by name in
// sorted order, so the report shape is deterministic even though the
// timings are not).
//
// Zero overhead when off, at two levels:
//   * compile-time: the macro expands to `(void)0` unless the build sets
//     -DSTARCDN_PROF=1 (CMake option STARCDN_PROF). The default build
//     therefore carries no timers at all — bitwise-identical binaries on
//     the hot path.
//   * runtime: when compiled in, scopes check one relaxed atomic flag,
//     controlled by the STARCDN_PROF environment variable (default on;
//     set STARCDN_PROF=0 to disable) or set_prof_enabled().
//
// Timers observe only the clock — they never touch RNG streams, metrics
// or any simulation state, so results are bitwise identical with
// profiling on, off, or compiled out (asserted by tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace starcdn::obs {

struct ProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  [[nodiscard]] double mean_ms() const noexcept {
    return calls != 0 ? total_ms / static_cast<double>(calls) : 0.0;
  }
};

struct ProfileReport {
  bool compiled = false;  ///< build carries timers (STARCDN_PROF=1)
  bool enabled = false;   ///< timers were active at report time
  std::vector<ProfileEntry> entries;  ///< merged by name, name-sorted

  /// Aligned hot-path table, sorted by total time descending. Prints a
  /// one-line notice instead when profiling is compiled out.
  void print(std::ostream& os) const;
};

/// True when the build carries timers.
[[nodiscard]] bool prof_compiled() noexcept;
/// True when timers are compiled in and currently enabled.
[[nodiscard]] bool prof_enabled() noexcept;
/// Override the STARCDN_PROF environment default (tests, benches).
void set_prof_enabled(bool on) noexcept;

/// Merge every thread's table into one deterministic-shape report.
[[nodiscard]] ProfileReport profile_report();
/// Zero all per-thread tables (between bench repetitions).
void profile_reset();

/// RAII scope; prefer the STARCDN_PROF_SCOPE macro, which compiles this
/// out entirely in default builds. `name` must outlive the process
/// (string literals only).
class ProfScope {
 public:
  explicit ProfScope(const char* name) noexcept;
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
};

}  // namespace starcdn::obs

#define STARCDN_PROF_CONCAT_IMPL(a, b) a##b
#define STARCDN_PROF_CONCAT(a, b) STARCDN_PROF_CONCAT_IMPL(a, b)

#if defined(STARCDN_PROF) && STARCDN_PROF
#define STARCDN_PROF_SCOPE(name)                    \
  const ::starcdn::obs::ProfScope STARCDN_PROF_CONCAT(starcdn_prof_scope_, \
                                                      __LINE__) {          \
    name                                                                   \
  }
#else
#define STARCDN_PROF_SCOPE(name) static_cast<void>(0)
#endif
