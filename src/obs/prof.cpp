#include "obs/prof.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>

namespace starcdn::obs {

namespace {

struct Slot {
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;
  std::int64_t max_ns = 0;
};

/// One thread's scope table. Keyed by the literal's address (fast); merged
/// by string value at report time so identical names from different TUs
/// fold together.
struct ThreadTable {
  std::vector<std::pair<const char*, Slot>> slots;

  Slot& slot(const char* name) {
    for (auto& [k, v] : slots) {
      if (k == name) return v;
    }
    slots.emplace_back(name, Slot{});
    return slots.back().second;
  }
};

struct ProfState {
  std::mutex mu;
  std::deque<ThreadTable> tables;  // deque: stable addresses for TLS refs
};

ProfState& state() {
  static ProfState s;
  return s;
}

ThreadTable& local_table() {
  thread_local ThreadTable* table = [] {
    ProfState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.tables.emplace_back();
    return &s.tables.back();
  }();
  return *table;
}

bool env_default() noexcept {
  const char* v = std::getenv("STARCDN_PROF");
  if (v == nullptr || *v == '\0') return true;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0;
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_default()};
  return flag;
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool prof_compiled() noexcept {
#if defined(STARCDN_PROF) && STARCDN_PROF
  return true;
#else
  return false;
#endif
}

bool prof_enabled() noexcept {
  return prof_compiled() && enabled_flag().load(std::memory_order_relaxed);
}

void set_prof_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

ProfScope::ProfScope(const char* name) noexcept
    : name_(enabled_flag().load(std::memory_order_relaxed) ? name : nullptr),
      start_ns_(name_ != nullptr ? now_ns() : 0) {}

ProfScope::~ProfScope() {
  if (name_ == nullptr) return;
  const std::int64_t dt = now_ns() - start_ns_;
  Slot& s = local_table().slot(name_);
  ++s.calls;
  s.total_ns += dt;
  s.max_ns = std::max(s.max_ns, dt);
}

ProfileReport profile_report() {
  ProfileReport report;
  report.compiled = prof_compiled();
  report.enabled = prof_enabled();
  std::map<std::string, ProfileEntry> merged;  // name-sorted
  {
    ProfState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const ThreadTable& t : s.tables) {
      for (const auto& [name, slot] : t.slots) {
        ProfileEntry& e = merged[name];
        e.name = name;
        e.calls += slot.calls;
        e.total_ms += static_cast<double>(slot.total_ns) / 1e6;
        e.max_ms =
            std::max(e.max_ms, static_cast<double>(slot.max_ns) / 1e6);
      }
    }
  }
  report.entries.reserve(merged.size());
  for (auto& [name, entry] : merged) report.entries.push_back(entry);
  return report;
}

void profile_reset() {
  ProfState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (ThreadTable& t : s.tables) t.slots.clear();
}

void ProfileReport::print(std::ostream& os) const {
  if (!compiled) {
    os << "profile: compiled out (configure with -DSTARCDN_PROF=ON)\n";
    return;
  }
  if (entries.empty()) {
    os << "profile: no scopes recorded"
       << (enabled ? "" : " (disabled via STARCDN_PROF=0)") << '\n';
    return;
  }
  std::vector<ProfileEntry> by_total = entries;
  std::sort(by_total.begin(), by_total.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  os << "profile (hot paths, wall clock):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-36s %10s %12s %10s %10s\n", "scope",
                "calls", "total ms", "mean ms", "max ms");
  os << line;
  for (const auto& e : by_total) {
    std::snprintf(line, sizeof(line),
                  "  %-36s %10llu %12.3f %10.4f %10.3f\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.calls), e.total_ms,
                  e.mean_ms(), e.max_ms);
    os << line;
  }
}

}  // namespace starcdn::obs
