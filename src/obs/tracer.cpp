#include "obs/tracer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <ostream>
#include <thread>

namespace starcdn::obs {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t this_tid() noexcept {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h & 0x7fffffffu);
}

std::atomic<Tracer*> g_tracer{nullptr};

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return {std::move(key), std::move(value), true};
}
TraceArg arg(std::string key, const char* value) {
  return {std::move(key), std::string(value), true};
}
TraceArg arg(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), false};
}
TraceArg arg(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), false};
}
TraceArg arg(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return {std::move(key), std::string(buf), false};
}

Tracer::Tracer() : origin_ns_(steady_ns()) {}

std::int64_t Tracer::now_us() const noexcept {
  return (steady_ns() - origin_ns_) / 1000;
}

void Tracer::complete(std::string name, const char* cat, std::int64_t ts_us,
                      std::int64_t dur_us, std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = this_tid();
  e.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, const char* cat,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = now_us();
  e.tid = this_tid();
  e.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    append_json_string(os, e.name);
    os << ",\"cat\":";
    append_json_string(os, e.cat);
    os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& a : e.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        append_json_string(os, a.key);
        os << ':';
        if (a.quoted) {
          append_json_string(os, a.value);
        } else {
          os << a.value;
        }
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

void set_tracer(Tracer* t) noexcept {
  g_tracer.store(t, std::memory_order_release);
}

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_acquire); }

TraceSpan::TraceSpan(Tracer* t, const char* name, const char* cat,
                     std::vector<TraceArg> args) noexcept
    : tracer_(t), name_(name), cat_(cat), args_(std::move(args)) {
  if (tracer_ != nullptr) start_us_ = tracer_->now_us();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const std::int64_t end = tracer_->now_us();
  tracer_->complete(name_, cat_, start_us_, end - start_us_,
                    std::move(args_));
}

void TraceSpan::set_args(std::vector<TraceArg> args) {
  args_ = std::move(args);
}

}  // namespace starcdn::obs
