// Per-epoch time series of registry counters (DESIGN.md §11).
//
// The simulator's dynamics — hit-rate dips when the constellation drifts
// over an ocean, uplink saturation at a regional prime time, handover
// storms at epoch boundaries — are invisible in end-of-run totals. An
// EpochSeries snapshots a chosen set of Registry counters at every
// scheduler-epoch boundary (15 s by default), cumulatively; deltas and
// derived rates are computed at export time. Recording is a single
// integer compare per request plus one row copy per epoch crossed, so it
// stays on by default.
//
// The recorder itself is single-owner (one per simulator variant, advanced
// in trace order on that variant's worker), which makes the rows bitwise
// identical for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace starcdn::obs {

/// A materialized, self-contained series: column names + cumulative
/// counter values per epoch row. This is what travels inside a RunReport
/// after the simulator (and its Registry) are gone.
struct SeriesTable {
  std::vector<std::string> columns;
  double epoch_seconds = 15.0;
  std::vector<std::uint64_t> epochs;  ///< epoch index per row (ascending)
  std::vector<std::uint64_t> values;  ///< row-major, cumulative

  [[nodiscard]] std::size_t rows() const noexcept { return epochs.size(); }
  [[nodiscard]] std::uint64_t at(std::size_t row, std::size_t col) const {
    return values[row * columns.size() + col];
  }
  /// Per-epoch increment: row's cumulative value minus the previous row's.
  [[nodiscard]] std::uint64_t delta(std::size_t row, std::size_t col) const {
    const std::uint64_t cur = at(row, col);
    return row == 0 ? cur : cur - at(row - 1, col);
  }
  /// Column index by name; npos when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// Extra export column computed from one row's deltas.
  struct Derived {
    std::string name;
    std::function<double(const SeriesTable&, std::size_t row)> fn;
  };

  /// CSV: epoch,t_end_s,<per-column deltas>[,<derived>...]. Deterministic
  /// for a deterministic recording.
  void write_csv(std::ostream& os,
                 const std::vector<Derived>& derived = {}) const;
  /// JSON object: {"epoch_seconds":..,"columns":[..],"epochs":[..],
  /// "deltas":[[..row..],..]}.
  void write_json(std::ostream& os) const;
};

/// Incremental recorder bound to a Registry + one Shard stream.
class EpochSeries {
 public:
  EpochSeries() = default;
  EpochSeries(const Registry* registry, std::vector<CounterId> columns);

  /// Snapshot every epoch boundary crossed on the way to `epoch`. Call
  /// *before* processing the first request of `epoch`; calls with
  /// equal/smaller epochs are no-ops, so this sits on the per-request
  /// path as one compare.
  void advance_to(std::uint64_t epoch, const Shard& shard) {
    if (epoch <= next_epoch_) return;
    advance_slow(epoch, shard);
  }

  /// Close the final (possibly partial) epoch. Idempotent.
  void finish(const Shard& shard);

  [[nodiscard]] std::size_t rows() const noexcept { return epochs_.size(); }
  [[nodiscard]] bool enabled() const noexcept { return registry_ != nullptr; }

  /// Materialize into a self-contained table (column names resolved).
  [[nodiscard]] SeriesTable table(double epoch_seconds) const;

 private:
  void advance_slow(std::uint64_t epoch, const Shard& shard);
  void snapshot_row(std::uint64_t epoch, const Shard& shard);

  const Registry* registry_ = nullptr;
  std::vector<CounterId> columns_;
  std::vector<std::uint64_t> epochs_;
  std::vector<std::uint64_t> values_;  // row-major cumulative
  std::uint64_t next_epoch_ = 0;       // first epoch not yet closed
  bool finished_ = false;
};

}  // namespace starcdn::obs
