// Byte-capacity object cache interface and shared statistics.
//
// CDN caches are sized in bytes, not objects (§2.2): an eviction may need
// to remove many small objects to admit one large one. All policies below
// implement this interface; StarCDN's consistent hashing composes with any
// of them (§3.2 explicitly supports LRU/LFU/SIEVE/...).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace starcdn::cache {

using ObjectId = std::uint64_t;
using util::Bytes;

enum class Policy : std::uint8_t { kLru, kLfu, kFifo, kSieve, kSlru, kGdsf };

[[nodiscard]] const char* to_string(Policy p) noexcept;
/// Parse "lru"/"lfu"/"fifo"/"sieve"/"slru"/"gdsf"; throws on unknown names.
[[nodiscard]] Policy parse_policy(const std::string& name);

/// Hit/miss counters; request hit rate and byte hit rate as defined in §2.2.
struct CacheStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  Bytes bytes_requested = 0;
  Bytes bytes_hit = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double request_hit_rate() const noexcept {
    return requests ? static_cast<double>(hits) / static_cast<double>(requests)
                    : 0.0;
  }
  [[nodiscard]] double byte_hit_rate() const noexcept {
    return bytes_requested ? static_cast<double>(bytes_hit) /
                                 static_cast<double>(bytes_requested)
                           : 0.0;
  }
  void merge(const CacheStats& o) noexcept {
    requests += o.requests;
    hits += o.hits;
    bytes_requested += o.bytes_requested;
    bytes_hit += o.bytes_hit;
    evictions += o.evictions;
  }
};

enum class AccessResult : std::uint8_t {
  kHit,           // object was cached; recency/frequency state updated
  kMissInserted,  // object was fetched and admitted
  kMissTooLarge,  // object exceeds capacity; served but never admitted
};

class Cache {
 public:
  explicit Cache(Bytes capacity) noexcept : capacity_(capacity) {}
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Presence check with NO side effects (relayed-fetch probes must not
  /// perturb the neighbour's eviction state).
  [[nodiscard]] virtual bool peek(ObjectId id) const = 0;

  /// Hit path: if present, update policy state and return true.
  virtual bool touch(ObjectId id) = 0;

  /// Admit an object of `size` bytes, evicting as needed. Objects larger
  /// than the capacity are ignored. Re-admitting a resident object is a
  /// no-op apart from a touch.
  virtual void admit(ObjectId id, Bytes size) = 0;

  virtual void erase(ObjectId id) = 0;
  virtual void clear() = 0;

  /// Pre-size internal storage (entry slab + hash index) for roughly
  /// `expected_objects` simultaneously-resident objects, so a warm cache
  /// never reallocates on the serving path. Purely a performance hint:
  /// behaviour is identical with or without it, and the cache still grows
  /// past the hint if the workload needs it.
  virtual void reserve(std::size_t expected_objects) = 0;

  /// Up to `n` of the policy's best-retained objects with their sizes —
  /// most-recent for LRU/FIFO/SIEVE, most-frequent for LFU, protected head
  /// for SLRU. Powers the proactive-prefetch baseline (§3.3 of the paper:
  /// a satellite entering a region pulls the neighbour's hot set).
  [[nodiscard]] virtual std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const = 0;

  /// The canonical CDN access path: touch, and on miss admit. Updates the
  /// built-in counters either way.
  AccessResult access(ObjectId id, Bytes size);

  [[nodiscard]] Bytes capacity() const noexcept { return capacity_; }
  [[nodiscard]] Bytes used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t object_count() const noexcept { return count_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] virtual Policy policy() const noexcept = 0;

 protected:
  // Bookkeeping helpers for derived policies.
  void note_admit(Bytes size) noexcept {
    used_ += size;
    ++count_;
  }
  void note_evict(Bytes size) noexcept {
    used_ -= size;
    --count_;
    ++stats_.evictions;
  }
  void note_erase(Bytes size) noexcept {
    used_ -= size;
    --count_;
  }
  void reset_usage() noexcept {
    used_ = 0;
    count_ = 0;
  }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::size_t count_ = 0;
  CacheStats stats_;
};

/// Resident-object estimate for Cache::reserve: capacity over a mean-object
/// size hint, clamped to 2^20 entries so a pathological hint cannot demand
/// gigabytes of arena up front. Returns 0 (no pre-sizing) when the hint is 0.
[[nodiscard]] std::size_t presize_hint(Bytes capacity,
                                       Bytes mean_object_size) noexcept;

/// Factory covering all built-in policies. A non-zero `expected_objects`
/// pre-sizes the policy's slab and index (see Cache::reserve); callers
/// typically derive it via presize_hint().
[[nodiscard]] std::unique_ptr<Cache> make_cache(Policy policy, Bytes capacity,
                                                std::size_t expected_objects = 0);

}  // namespace starcdn::cache
