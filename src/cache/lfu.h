// Least Frequently Used eviction with O(1) operations.
//
// Implements the frequency-bucket structure of Ketan Shah et al.: an
// intrusive chain of frequency nodes (ascending counts), each holding an
// LRU-ordered intrusive list of entries with that access count. Eviction
// removes the least recently used entry of the lowest frequency. Both the
// entries and the frequency nodes live in slab arenas: a bump moves one
// entry between two adjacent buckets by relinking four u32 slots, with node
// creation/teardown recycling slab storage instead of allocating.
#pragma once

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

class LfuCache final : public Cache {
 public:
  explicit LfuCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override { return Policy::kLfu; }

  /// Access count of a resident object (0 if absent); for tests.
  [[nodiscard]] std::uint64_t frequency(ObjectId id) const;

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint32_t prev, next;
    std::uint32_t node;  // owning frequency bucket (slot into nodes_)
  };
  struct FreqNode {
    std::uint64_t freq;
    detail::IntrusiveList<Entry> entries;  // front = most recent at this freq
    std::uint32_t prev, next;
  };

  void bump(std::uint32_t entry_slot);
  void evict_until(Bytes needed);
  void release_if_empty(std::uint32_t node_slot);

  detail::Slab<Entry> slab_;
  detail::Slab<FreqNode> nodes_;
  detail::IntrusiveList<FreqNode> freq_list_;  // ascending frequency order
  detail::FlatIndex index_;
};

}  // namespace starcdn::cache
