// Least Frequently Used eviction with O(1) operations.
//
// Implements the frequency-bucket structure of Ketan Shah et al.: a doubly
// linked list of frequency nodes, each holding an LRU-ordered list of
// entries with that access count. Eviction removes the least recently used
// entry of the lowest frequency.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace starcdn::cache {

class LfuCache final : public Cache {
 public:
  explicit LfuCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override { return Policy::kLfu; }

  /// Access count of a resident object (0 if absent); for tests.
  [[nodiscard]] std::uint64_t frequency(ObjectId id) const;

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
  };
  struct FreqNode {
    std::uint64_t freq;
    std::list<Entry> entries;  // front = most recently used at this freq
  };
  using FreqList = std::list<FreqNode>;
  struct Locator {
    FreqList::iterator node;
    std::list<Entry>::iterator entry;
  };

  void bump(const std::unordered_map<ObjectId, Locator>::iterator& it);
  void evict_until(Bytes needed);

  FreqList freq_list_;  // ascending frequency order
  std::unordered_map<ObjectId, Locator> index_;
};

}  // namespace starcdn::cache
