// Greedy-Dual-Size-Frequency eviction.
//
// CDN caches serve objects of wildly different sizes; GDSF evicts by the
// utility H = L + frequency / size, where L is an inflating clock set to
// the evicted utility. Small popular objects are protected, large
// rarely-used ones go first — the classic web-cache answer to the
// byte-vs-request hit-rate tension (§2.2's "various eviction policies have
// different strengths"). Included as a size-aware alternative for StarCDN's
// pluggable caching.
//
// The ordered utility queue is inherently a tree (eviction needs a global
// minimum over float keys), but the per-object state moves onto the shared
// slab + flat index: the queue maps (utility, id) -> slot, so an eviction
// or requeue touches the arena instead of a second node-based map.
#pragma once

#include <algorithm>
#include <map>

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

class GdsfCache final : public Cache {
 public:
  explicit GdsfCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kGdsf;
  }

  /// Current clock value L (for tests).
  [[nodiscard]] double clock() const noexcept { return clock_; }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint64_t frequency;
    double utility;
    std::uint32_t prev, next;  // slab free-list links (no intrusive order)
  };

  [[nodiscard]] double utility_of(const Entry& e) const noexcept {
    return clock_ + static_cast<double>(e.frequency) /
                        static_cast<double>(std::max<Bytes>(e.size, 1));
  }
  void evict_until(Bytes needed);

  double clock_ = 0.0;
  detail::Slab<Entry> slab_;
  detail::FlatIndex index_;
  // Utility-ordered priority queue; (utility, id) keys are unique per entry.
  std::map<std::pair<double, ObjectId>, std::uint32_t> queue_;
};

}  // namespace starcdn::cache
