// Greedy-Dual-Size-Frequency eviction.
//
// CDN caches serve objects of wildly different sizes; GDSF evicts by the
// utility H = L + frequency / size, where L is an inflating clock set to
// the evicted utility. Small popular objects are protected, large
// rarely-used ones go first — the classic web-cache answer to the
// byte-vs-request hit-rate tension (§2.2's "various eviction policies have
// different strengths"). Included as a size-aware alternative for StarCDN's
// pluggable caching.
#pragma once

#include <map>
#include <unordered_map>

#include "cache/cache.h"

namespace starcdn::cache {

class GdsfCache final : public Cache {
 public:
  explicit GdsfCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kGdsf;
  }

  /// Current clock value L (for tests).
  [[nodiscard]] double clock() const noexcept { return clock_; }

 private:
  struct Entry {
    Bytes size = 0;
    std::uint64_t frequency = 0;
    double utility = 0.0;
  };

  [[nodiscard]] double utility_of(const Entry& e) const noexcept {
    return clock_ + static_cast<double>(e.frequency) /
                        static_cast<double>(std::max<Bytes>(e.size, 1));
  }
  void requeue(ObjectId id, Entry& e);
  void evict_until(Bytes needed);

  double clock_ = 0.0;
  std::unordered_map<ObjectId, Entry> index_;
  // Utility-ordered priority queue; (utility, id) keys are unique per entry.
  std::map<std::pair<double, ObjectId>, ObjectId> queue_;
};

}  // namespace starcdn::cache
