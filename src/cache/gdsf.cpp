#include "cache/gdsf.h"

namespace starcdn::cache {

void GdsfCache::requeue(ObjectId id, Entry& e) {
  queue_.erase({e.utility, id});
  e.utility = utility_of(e);
  queue_.emplace(std::pair{e.utility, id}, id);
}

bool GdsfCache::touch(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  ++it->second.frequency;
  requeue(id, it->second);
  return true;
}

void GdsfCache::evict_until(Bytes needed) {
  while (!queue_.empty() && capacity() - used_bytes() < needed) {
    const auto victim_it = queue_.begin();
    const ObjectId victim = victim_it->second;
    // The inflating clock: future admissions start from the last evicted
    // utility, so long-resident entries age out.
    clock_ = victim_it->first.first;
    queue_.erase(victim_it);
    const auto idx = index_.find(victim);
    note_evict(idx->second.size);
    index_.erase(idx);
  }
}

void GdsfCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_until(size);
  Entry e;
  e.size = size;
  e.frequency = 1;
  e.utility = utility_of(e);
  queue_.emplace(std::pair{e.utility, id}, id);
  index_.emplace(id, e);
  note_admit(size);
}

void GdsfCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  queue_.erase({it->second.utility, id});
  note_erase(it->second.size);
  index_.erase(it);
}

void GdsfCache::clear() {
  queue_.clear();
  index_.clear();
  clock_ = 0.0;
  reset_usage();
}

std::vector<std::pair<ObjectId, Bytes>> GdsfCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (auto it = queue_.rbegin(); it != queue_.rend() && out.size() < n;
       ++it) {
    out.emplace_back(it->second, index_.at(it->second).size);
  }
  return out;
}

}  // namespace starcdn::cache
