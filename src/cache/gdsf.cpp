#include "cache/gdsf.h"

namespace starcdn::cache {

bool GdsfCache::touch(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return false;
  Entry& e = slab_[s];
  ++e.frequency;
  queue_.erase({e.utility, id});
  e.utility = utility_of(e);
  queue_.emplace(std::pair{e.utility, id}, s);
  return true;
}

void GdsfCache::evict_until(Bytes needed) {
  while (!queue_.empty() && capacity() - used_bytes() < needed) {
    const auto victim_it = queue_.begin();
    const std::uint32_t s = victim_it->second;
    // The inflating clock: future admissions start from the last evicted
    // utility, so long-resident entries age out.
    clock_ = victim_it->first.first;
    queue_.erase(victim_it);
    index_.erase(slab_[s].id);
    note_evict(slab_[s].size);
    slab_.release(s);
  }
}

void GdsfCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_until(size);
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  e.frequency = 1;
  e.utility = utility_of(e);
  queue_.emplace(std::pair{e.utility, id}, s);
  index_.insert(id, s);
  note_admit(size);
}

void GdsfCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  queue_.erase({slab_[s].utility, id});
  note_erase(slab_[s].size);
  index_.erase(id);
  slab_.release(s);
}

void GdsfCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

void GdsfCache::clear() {
  queue_.clear();
  slab_.clear();
  index_.clear();
  clock_ = 0.0;
  reset_usage();
}

std::vector<std::pair<ObjectId, Bytes>> GdsfCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (auto it = queue_.rbegin(); it != queue_.rend() && out.size() < n;
       ++it) {
    out.emplace_back(slab_[it->second].id, slab_[it->second].size);
  }
  return out;
}

}  // namespace starcdn::cache
