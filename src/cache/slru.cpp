#include "cache/slru.h"

namespace starcdn::cache {

void SlruCache::shrink_protected(Bytes limit) {
  // Demote protected tail entries into probation until under `limit`.
  while (protected_used_ > limit && !protected_.empty()) {
    auto victim = std::prev(protected_.end());
    protected_used_ -= victim->size;
    victim->is_protected = false;
    probation_.splice(probation_.begin(), protected_, victim);
    index_[victim->id].it = probation_.begin();
  }
}

bool SlruCache::touch(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  auto entry_it = it->second.it;
  if (entry_it->is_protected) {
    protected_.splice(protected_.begin(), protected_, entry_it);
  } else {
    // Promote probation -> protected; demote overflow back to probation.
    entry_it->is_protected = true;
    protected_used_ += entry_it->size;
    protected_.splice(protected_.begin(), probation_, entry_it);
    shrink_protected(protected_capacity_);
  }
  index_[id].it = entry_it;
  return true;
}

void SlruCache::evict_probation_until(Bytes needed) {
  while (capacity() - used_bytes() < needed) {
    if (!probation_.empty()) {
      const auto victim = std::prev(probation_.end());
      index_.erase(victim->id);
      note_evict(victim->size);
      probation_.erase(victim);
    } else if (!protected_.empty()) {
      const auto victim = std::prev(protected_.end());
      protected_used_ -= victim->size;
      index_.erase(victim->id);
      note_evict(victim->size);
      protected_.erase(victim);
    } else {
      return;
    }
  }
}

void SlruCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_probation_until(size);
  probation_.push_front({id, size, false});
  index_[id] = Locator{probation_.begin()};
  note_admit(size);
}

void SlruCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const auto entry_it = it->second.it;
  note_erase(entry_it->size);
  if (entry_it->is_protected) {
    protected_used_ -= entry_it->size;
    protected_.erase(entry_it);
  } else {
    probation_.erase(entry_it);
  }
  index_.erase(it);
}

std::vector<std::pair<ObjectId, Bytes>> SlruCache::hottest(
    std::size_t n) const {
  // Protected (re-referenced) objects first, then probation.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (const Entry& e : protected_) {
    if (out.size() >= n) break;
    out.emplace_back(e.id, e.size);
  }
  for (const Entry& e : probation_) {
    if (out.size() >= n) break;
    out.emplace_back(e.id, e.size);
  }
  return out;
}

void SlruCache::clear() {
  probation_.clear();
  protected_.clear();
  protected_used_ = 0;
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
