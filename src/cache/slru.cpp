#include "cache/slru.h"

#include <stdexcept>
#include <string>

namespace starcdn::cache {

SlruCache::SlruCache(Bytes capacity, double protected_fraction)
    : Cache(capacity),
      protected_capacity_(static_cast<Bytes>(
          static_cast<double>(capacity) * protected_fraction)) {
  // NaN fails both comparisons' complement, so write the check to reject it.
  if (!(protected_fraction >= 0.0 && protected_fraction <= 1.0)) {
    throw std::invalid_argument(
        "SlruCache: protected_fraction must be in [0, 1], got " +
        std::to_string(protected_fraction));
  }
}

void SlruCache::shrink_protected(Bytes limit) {
  // Demote protected tail entries into probation until under `limit`.
  while (protected_used_ > limit && !protected_.empty()) {
    const std::uint32_t victim = protected_.tail;
    Entry& e = slab_[victim];
    protected_used_ -= e.size;
    e.is_protected = false;
    protected_.unlink(slab_, victim);
    probation_.push_front(slab_, victim);
  }
}

bool SlruCache::touch(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return false;
  Entry& e = slab_[s];
  if (e.is_protected) {
    protected_.move_front(slab_, s);
  } else {
    // Promote probation -> protected; demote overflow back to probation.
    e.is_protected = true;
    protected_used_ += e.size;
    probation_.unlink(slab_, s);
    protected_.push_front(slab_, s);
    shrink_protected(protected_capacity_);
  }
  return true;
}

void SlruCache::evict_probation_until(Bytes needed) {
  while (capacity() - used_bytes() < needed) {
    if (!probation_.empty()) {
      const std::uint32_t victim = probation_.tail;
      index_.erase(slab_[victim].id);
      note_evict(slab_[victim].size);
      probation_.unlink(slab_, victim);
      slab_.release(victim);
    } else if (!protected_.empty()) {
      const std::uint32_t victim = protected_.tail;
      protected_used_ -= slab_[victim].size;
      index_.erase(slab_[victim].id);
      note_evict(slab_[victim].size);
      protected_.unlink(slab_, victim);
      slab_.release(victim);
    } else {
      return;
    }
  }
}

void SlruCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_probation_until(size);
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  e.is_protected = false;
  probation_.push_front(slab_, s);
  index_.insert(id, s);
  note_admit(size);
}

void SlruCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  Entry& e = slab_[s];
  note_erase(e.size);
  if (e.is_protected) {
    protected_used_ -= e.size;
    protected_.unlink(slab_, s);
  } else {
    probation_.unlink(slab_, s);
  }
  index_.erase(id);
  slab_.release(s);
}

void SlruCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

std::vector<std::pair<ObjectId, Bytes>> SlruCache::hottest(
    std::size_t n) const {
  // Protected (re-referenced) objects first, then probation.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (std::uint32_t s = protected_.head;
       s != detail::kNullSlot && out.size() < n; s = slab_[s].next) {
    out.emplace_back(slab_[s].id, slab_[s].size);
  }
  for (std::uint32_t s = probation_.head;
       s != detail::kNullSlot && out.size() < n; s = slab_[s].next) {
    out.emplace_back(slab_[s].id, slab_[s].size);
  }
  return out;
}

void SlruCache::clear() {
  slab_.clear();
  probation_.clear();
  protected_.clear();
  protected_used_ = 0;
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
