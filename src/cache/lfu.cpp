#include "cache/lfu.h"

namespace starcdn::cache {

void LfuCache::bump(const std::unordered_map<ObjectId, Locator>::iterator& it) {
  Locator& loc = it->second;
  const std::uint64_t next_freq = loc.node->freq + 1;
  auto next_node = std::next(loc.node);
  if (next_node == freq_list_.end() || next_node->freq != next_freq) {
    next_node = freq_list_.insert(next_node, {next_freq, {}});
  }
  next_node->entries.splice(next_node->entries.begin(), loc.node->entries,
                            loc.entry);
  if (loc.node->entries.empty()) freq_list_.erase(loc.node);
  loc.node = next_node;
}

bool LfuCache::touch(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  bump(it);
  return true;
}

void LfuCache::evict_until(Bytes needed) {
  while (!freq_list_.empty() && capacity() - used_bytes() < needed) {
    FreqNode& lowest = freq_list_.front();
    const Entry& victim = lowest.entries.back();
    index_.erase(victim.id);
    note_evict(victim.size);
    lowest.entries.pop_back();
    if (lowest.entries.empty()) freq_list_.pop_front();
  }
}

void LfuCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_until(size);
  auto node = freq_list_.begin();
  if (node == freq_list_.end() || node->freq != 1) {
    node = freq_list_.insert(freq_list_.begin(), {1, {}});
  }
  node->entries.push_front({id, size});
  index_.emplace(id, Locator{node, node->entries.begin()});
  note_admit(size);
}

void LfuCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Locator& loc = it->second;
  note_erase(loc.entry->size);
  loc.node->entries.erase(loc.entry);
  if (loc.node->entries.empty()) freq_list_.erase(loc.node);
  index_.erase(it);
}

std::vector<std::pair<ObjectId, Bytes>> LfuCache::hottest(
    std::size_t n) const {
  // Walk frequency nodes from highest to lowest, recency order within each.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (auto node = freq_list_.rbegin(); node != freq_list_.rend(); ++node) {
    for (const Entry& e : node->entries) {
      if (out.size() >= n) return out;
      out.emplace_back(e.id, e.size);
    }
  }
  return out;
}

void LfuCache::clear() {
  freq_list_.clear();
  index_.clear();
  reset_usage();
}

std::uint64_t LfuCache::frequency(ObjectId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : it->second.node->freq;
}

}  // namespace starcdn::cache
