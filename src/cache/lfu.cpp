#include "cache/lfu.h"

namespace starcdn::cache {

void LfuCache::release_if_empty(std::uint32_t node_slot) {
  if (!nodes_[node_slot].entries.empty()) return;
  freq_list_.unlink(nodes_, node_slot);
  nodes_.release(node_slot);
}

void LfuCache::bump(std::uint32_t entry_slot) {
  Entry& e = slab_[entry_slot];
  const std::uint32_t cur = e.node;
  const std::uint64_t next_freq = nodes_[cur].freq + 1;
  std::uint32_t next = nodes_[cur].next;
  if (next == detail::kNullSlot || nodes_[next].freq != next_freq) {
    next = nodes_.allocate();
    FreqNode& n = nodes_[next];
    n.freq = next_freq;
    n.entries.clear();
    freq_list_.insert_after(nodes_, cur, next);
  }
  nodes_[cur].entries.unlink(slab_, entry_slot);
  nodes_[next].entries.push_front(slab_, entry_slot);
  e.node = next;
  release_if_empty(cur);
}

bool LfuCache::touch(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return false;
  bump(s);
  return true;
}

void LfuCache::evict_until(Bytes needed) {
  while (!freq_list_.empty() && capacity() - used_bytes() < needed) {
    const std::uint32_t lowest = freq_list_.head;
    const std::uint32_t victim = nodes_[lowest].entries.tail;
    index_.erase(slab_[victim].id);
    note_evict(slab_[victim].size);
    nodes_[lowest].entries.unlink(slab_, victim);
    slab_.release(victim);
    release_if_empty(lowest);
  }
}

void LfuCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;
  evict_until(size);
  std::uint32_t node = freq_list_.head;
  if (node == detail::kNullSlot || nodes_[node].freq != 1) {
    node = nodes_.allocate();
    FreqNode& n = nodes_[node];
    n.freq = 1;
    n.entries.clear();
    freq_list_.push_front(nodes_, node);
  }
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  e.node = node;
  nodes_[node].entries.push_front(slab_, s);
  index_.insert(id, s);
  note_admit(size);
}

void LfuCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  const std::uint32_t node = slab_[s].node;
  note_erase(slab_[s].size);
  nodes_[node].entries.unlink(slab_, s);
  slab_.release(s);
  release_if_empty(node);
  index_.erase(id);
}

void LfuCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

std::vector<std::pair<ObjectId, Bytes>> LfuCache::hottest(
    std::size_t n) const {
  // Walk frequency nodes from highest to lowest, recency order within each.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (std::uint32_t node = freq_list_.tail; node != detail::kNullSlot;
       node = nodes_[node].prev) {
    for (std::uint32_t s = nodes_[node].entries.head;
         s != detail::kNullSlot; s = slab_[s].next) {
      if (out.size() >= n) return out;
      out.emplace_back(slab_[s].id, slab_[s].size);
    }
  }
  return out;
}

void LfuCache::clear() {
  slab_.clear();
  nodes_.clear();
  freq_list_.clear();
  index_.clear();
  reset_usage();
}

std::uint64_t LfuCache::frequency(ObjectId id) const {
  const std::uint32_t s = index_.find(id);
  return s == detail::kNullSlot ? 0 : nodes_[slab_[s].node].freq;
}

}  // namespace starcdn::cache
