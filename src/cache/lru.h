// Least Recently Used eviction — the paper's policy of choice (§2.2, §5).
#pragma once

#include <optional>

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

/// Classic LRU: recency as an intrusive list over the entry slab, lookup
/// through the flat index. touch() is O(1); admit() evicts from the tail
/// until the object fits.
class LruCache final : public Cache {
 public:
  explicit LruCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override { return Policy::kLru; }

  /// Least-recently-used object id; nullopt on an empty cache.
  [[nodiscard]] std::optional<ObjectId> lru_victim() const noexcept {
    if (list_.empty()) return std::nullopt;
    return slab_[list_.tail].id;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint32_t prev, next;
  };
  void evict_until(Bytes needed);

  detail::Slab<Entry> slab_;
  detail::IntrusiveList<Entry> list_;  // front = most recent
  detail::FlatIndex index_;
};

}  // namespace starcdn::cache
