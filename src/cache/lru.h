// Least Recently Used eviction — the paper's policy of choice (§2.2, §5).
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace starcdn::cache {

/// Classic LRU: recency list + index. touch() is O(1); admit() evicts from
/// the tail until the object fits.
class LruCache final : public Cache {
 public:
  explicit LruCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override { return Policy::kLru; }

  /// Least-recently-used object id, if any (exposed for tests).
  [[nodiscard]] ObjectId lru_victim() const { return list_.back().id; }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
  };
  void evict_until(Bytes needed);

  std::list<Entry> list_;  // front = most recent
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

}  // namespace starcdn::cache
