#include "cache/hashring.h"

#include <algorithm>

#include "util/hash.h"

namespace starcdn::cache {

namespace {

std::uint64_t vnode_point(std::uint32_t server_id, int replica) {
  return util::hash_combine(util::splitmix64(server_id),
                            util::splitmix64(static_cast<std::uint64_t>(replica)));
}

}  // namespace

void HashRing::add_server(std::uint32_t server_id) {
  if (std::find(servers_.begin(), servers_.end(), server_id) !=
      servers_.end()) {
    return;
  }
  servers_.push_back(server_id);
  for (int r = 0; r < vnodes_; ++r) {
    ring_.emplace(vnode_point(server_id, r), server_id);
  }
}

void HashRing::remove_server(std::uint32_t server_id) {
  const auto it = std::find(servers_.begin(), servers_.end(), server_id);
  if (it == servers_.end()) return;
  servers_.erase(it);
  for (int r = 0; r < vnodes_; ++r) {
    const auto point = vnode_point(server_id, r);
    const auto range = ring_.equal_range(point);
    for (auto rit = range.first; rit != range.second;) {
      if (rit->second == server_id) {
        rit = ring_.erase(rit);
      } else {
        ++rit;
      }
    }
  }
}

std::uint32_t HashRing::owner(ObjectId object) const {
  const auto h = util::splitmix64(object);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->second;
}

std::vector<std::uint32_t> HashRing::owners(ObjectId object,
                                            std::size_t n) const {
  std::vector<std::uint32_t> out;
  if (ring_.empty()) return out;
  n = std::min(n, servers_.size());
  const auto h = util::splitmix64(object);
  auto it = ring_.lower_bound(h);
  while (out.size() < n) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

}  // namespace starcdn::cache
