#include "cache/hashring.h"

#include <algorithm>

#include "util/hash.h"

namespace starcdn::cache {

namespace {

std::uint64_t vnode_point(std::uint32_t server_id, int replica) {
  return util::hash_combine(util::splitmix64(server_id),
                            util::splitmix64(static_cast<std::uint64_t>(replica)));
}

}  // namespace

void HashRing::add_server(std::uint32_t server_id) {
  if (std::find(servers_.begin(), servers_.end(), server_id) !=
      servers_.end()) {
    return;
  }
  servers_.push_back(server_id);
  ring_.reserve(ring_.size() + static_cast<std::size_t>(vnodes_));
  for (int r = 0; r < vnodes_; ++r) {
    const auto point = vnode_point(server_id, r);
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const Point& p, std::uint64_t v) { return p.point < v; });
    // On a point collision the earlier-added server keeps the slot (the
    // behaviour of the previous std::map emplace).
    if (it != ring_.end() && it->point == point) continue;
    ring_.insert(it, Point{point, server_id});
  }
}

void HashRing::remove_server(std::uint32_t server_id) {
  const auto it = std::find(servers_.begin(), servers_.end(), server_id);
  if (it == servers_.end()) return;
  servers_.erase(it);
  std::erase_if(ring_, [server_id](const Point& p) {
    return p.server == server_id;
  });
}

std::uint32_t HashRing::owner(ObjectId object) const {
  const auto h = util::splitmix64(object);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.point < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->server;
}

std::vector<std::uint32_t> HashRing::owners(ObjectId object,
                                            std::size_t n) const {
  std::vector<std::uint32_t> out;
  if (ring_.empty()) return out;
  n = std::min(n, servers_.size());
  const auto h = util::splitmix64(object);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.point < v; });
  while (out.size() < n) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->server) == out.end()) {
      out.push_back(it->server);
    }
    ++it;
  }
  return out;
}

}  // namespace starcdn::cache
