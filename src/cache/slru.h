// Segmented LRU: a probationary segment absorbs one-hit wonders, a
// protected segment holds re-referenced objects. A common production LRU
// variant ("different LRU variants are often deployed in commercial CDNs",
// §2.2); included as an ablation policy for StarCDN's pluggable caching.
// Both segments are intrusive lists over one shared entry slab, so
// promotion/demotion is a relink, not a reallocation.
#pragma once

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

class SlruCache final : public Cache {
 public:
  /// `protected_fraction` of capacity is reserved for re-referenced
  /// objects; throws std::invalid_argument outside [0, 1] (incl. NaN).
  explicit SlruCache(Bytes capacity, double protected_fraction = 0.8);

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kSlru;
  }

  [[nodiscard]] Bytes protected_bytes() const noexcept {
    return protected_used_;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint32_t prev, next;
    bool is_protected;
  };

  void shrink_protected(Bytes limit);
  void evict_probation_until(Bytes needed);

  Bytes protected_capacity_;
  Bytes protected_used_ = 0;
  detail::Slab<Entry> slab_;
  detail::IntrusiveList<Entry> probation_;  // front = most recent
  detail::IntrusiveList<Entry> protected_;  // front = most recent
  detail::FlatIndex index_;
};

}  // namespace starcdn::cache
