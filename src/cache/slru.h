// Segmented LRU: a probationary segment absorbs one-hit wonders, a
// protected segment holds re-referenced objects. A common production LRU
// variant ("different LRU variants are often deployed in commercial CDNs",
// §2.2); included as an ablation policy for StarCDN's pluggable caching.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace starcdn::cache {

class SlruCache final : public Cache {
 public:
  /// `protected_fraction` of capacity is reserved for re-referenced objects.
  explicit SlruCache(Bytes capacity, double protected_fraction = 0.8) noexcept
      : Cache(capacity),
        protected_capacity_(static_cast<Bytes>(
            static_cast<double>(capacity) * protected_fraction)) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kSlru;
  }

  [[nodiscard]] Bytes protected_bytes() const noexcept {
    return protected_used_;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    bool is_protected = false;
  };
  using List = std::list<Entry>;
  struct Locator {
    List::iterator it;
  };

  void shrink_protected(Bytes limit);
  void evict_probation_until(Bytes needed);

  Bytes protected_capacity_;
  Bytes protected_used_ = 0;
  List probation_;   // front = most recent
  List protected_;   // front = most recent
  std::unordered_map<ObjectId, Locator> index_;
};

}  // namespace starcdn::cache
