// Classic consistent-hash ring (Karger et al., STOC 1997) with virtual
// nodes — the intra-cluster object-to-server mapping of terrestrial CDNs
// (§2.2, §3.2). StarCDN replaces this with the grid bucket layout of
// core/bucket_mapper.h; the ring is retained as the terrestrial baseline
// and for contrast tests (balance, minimal remapping on churn).
//
// The ring is a sorted flat vector of (point, server) pairs: membership
// changes re-sort once (rings are built once and queried millions of
// times), and every lookup is a cache-friendly std::lower_bound instead of
// a red-black-tree descent.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"

namespace starcdn::cache {

class HashRing {
 public:
  /// `vnodes` virtual points per server smooth the load distribution.
  explicit HashRing(int vnodes = 64) noexcept : vnodes_(vnodes) {}

  void add_server(std::uint32_t server_id);
  void remove_server(std::uint32_t server_id);

  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }

  /// Server owning `object` — first ring point clockwise of its hash.
  [[nodiscard]] std::uint32_t owner(ObjectId object) const;

  /// First `n` distinct servers clockwise (replication candidates).
  [[nodiscard]] std::vector<std::uint32_t> owners(ObjectId object,
                                                  std::size_t n) const;

 private:
  struct Point {
    std::uint64_t point;
    std::uint32_t server;
  };

  int vnodes_;
  std::vector<Point> ring_;  // sorted by point
  std::vector<std::uint32_t> servers_;
};

}  // namespace starcdn::cache
