#include "cache/cache.h"

#include <stdexcept>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/gdsf.h"
#include "cache/lru.h"
#include "cache/sieve.h"
#include "cache/slru.h"

namespace starcdn::cache {

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kLru: return "lru";
    case Policy::kLfu: return "lfu";
    case Policy::kFifo: return "fifo";
    case Policy::kSieve: return "sieve";
    case Policy::kSlru: return "slru";
    case Policy::kGdsf: return "gdsf";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "lru") return Policy::kLru;
  if (name == "lfu") return Policy::kLfu;
  if (name == "fifo") return Policy::kFifo;
  if (name == "sieve") return Policy::kSieve;
  if (name == "slru") return Policy::kSlru;
  if (name == "gdsf") return Policy::kGdsf;
  throw std::invalid_argument("unknown cache policy: " + name);
}

AccessResult Cache::access(ObjectId id, Bytes size) {
  ++stats_.requests;
  stats_.bytes_requested += size;
  if (touch(id)) {
    ++stats_.hits;
    stats_.bytes_hit += size;
    return AccessResult::kHit;
  }
  if (size > capacity_) return AccessResult::kMissTooLarge;
  admit(id, size);
  return AccessResult::kMissInserted;
}

std::size_t presize_hint(Bytes capacity, Bytes mean_object_size) noexcept {
  if (mean_object_size == 0) return 0;
  constexpr std::size_t kMaxPresize = std::size_t{1} << 20;
  const Bytes n = capacity / mean_object_size;
  return n < kMaxPresize ? static_cast<std::size_t>(n) : kMaxPresize;
}

std::unique_ptr<Cache> make_cache(Policy policy, Bytes capacity,
                                  std::size_t expected_objects) {
  std::unique_ptr<Cache> cache;
  switch (policy) {
    case Policy::kLru: cache = std::make_unique<LruCache>(capacity); break;
    case Policy::kLfu: cache = std::make_unique<LfuCache>(capacity); break;
    case Policy::kFifo: cache = std::make_unique<FifoCache>(capacity); break;
    case Policy::kSieve: cache = std::make_unique<SieveCache>(capacity); break;
    case Policy::kSlru: cache = std::make_unique<SlruCache>(capacity); break;
    case Policy::kGdsf: cache = std::make_unique<GdsfCache>(capacity); break;
  }
  if (!cache) throw std::invalid_argument("make_cache: unknown policy");
  if (expected_objects) cache->reserve(expected_objects);
  return cache;
}

}  // namespace starcdn::cache
