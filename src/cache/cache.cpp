#include "cache/cache.h"

#include <stdexcept>

#include "cache/fifo.h"
#include "cache/lfu.h"
#include "cache/gdsf.h"
#include "cache/lru.h"
#include "cache/sieve.h"
#include "cache/slru.h"

namespace starcdn::cache {

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kLru: return "lru";
    case Policy::kLfu: return "lfu";
    case Policy::kFifo: return "fifo";
    case Policy::kSieve: return "sieve";
    case Policy::kSlru: return "slru";
    case Policy::kGdsf: return "gdsf";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "lru") return Policy::kLru;
  if (name == "lfu") return Policy::kLfu;
  if (name == "fifo") return Policy::kFifo;
  if (name == "sieve") return Policy::kSieve;
  if (name == "slru") return Policy::kSlru;
  if (name == "gdsf") return Policy::kGdsf;
  throw std::invalid_argument("unknown cache policy: " + name);
}

AccessResult Cache::access(ObjectId id, Bytes size) {
  ++stats_.requests;
  stats_.bytes_requested += size;
  if (touch(id)) {
    ++stats_.hits;
    stats_.bytes_hit += size;
    return AccessResult::kHit;
  }
  if (size > capacity_) return AccessResult::kMissTooLarge;
  admit(id, size);
  return AccessResult::kMissInserted;
}

std::unique_ptr<Cache> make_cache(Policy policy, Bytes capacity) {
  switch (policy) {
    case Policy::kLru: return std::make_unique<LruCache>(capacity);
    case Policy::kLfu: return std::make_unique<LfuCache>(capacity);
    case Policy::kFifo: return std::make_unique<FifoCache>(capacity);
    case Policy::kSieve: return std::make_unique<SieveCache>(capacity);
    case Policy::kSlru: return std::make_unique<SlruCache>(capacity);
    case Policy::kGdsf: return std::make_unique<GdsfCache>(capacity);
  }
  throw std::invalid_argument("make_cache: unknown policy");
}

}  // namespace starcdn::cache
