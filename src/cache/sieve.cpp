#include "cache/sieve.h"

namespace starcdn::cache {

bool SieveCache::touch(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return false;
  slab_[s].visited = true;
  return true;
}

void SieveCache::evict_one() {
  // The hand sweeps tail -> head, clearing visited bits, and evicts the
  // first unvisited entry; it wraps to the tail when it passes the head.
  if (list_.empty()) return;
  if (hand_ == detail::kNullSlot) hand_ = list_.tail;
  while (slab_[hand_].visited) {
    slab_[hand_].visited = false;
    hand_ = hand_ == list_.head ? list_.tail : slab_[hand_].prev;
  }
  const std::uint32_t victim = hand_;
  // Advance the hand before erasing; "toward head", wrapping at the head.
  hand_ = victim == list_.head ? detail::kNullSlot : slab_[victim].prev;
  index_.erase(slab_[victim].id);
  note_evict(slab_[victim].size);
  list_.unlink(slab_, victim);
  slab_.release(victim);
}

void SieveCache::admit(ObjectId id, Bytes size) {
  if (size > capacity() || index_.contains(id)) return;
  while (!list_.empty() && capacity() - used_bytes() < size) evict_one();
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  e.visited = false;
  list_.push_front(slab_, s);
  index_.insert(id, s);
  note_admit(size);
}

void SieveCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  if (hand_ == s) {
    hand_ = s == list_.head ? detail::kNullSlot : slab_[s].prev;
  }
  note_erase(slab_[s].size);
  list_.unlink(slab_, s);
  index_.erase(id);
  slab_.release(s);
}

std::vector<std::pair<ObjectId, Bytes>> SieveCache::hottest(
    std::size_t n) const {
  // Visited entries first (they survived a sweep), then by insertion order.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (std::uint32_t s = list_.head; s != detail::kNullSlot && out.size() < n;
       s = slab_[s].next) {
    if (slab_[s].visited) out.emplace_back(slab_[s].id, slab_[s].size);
  }
  for (std::uint32_t s = list_.head; s != detail::kNullSlot && out.size() < n;
       s = slab_[s].next) {
    if (!slab_[s].visited) out.emplace_back(slab_[s].id, slab_[s].size);
  }
  return out;
}

void SieveCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

void SieveCache::clear() {
  slab_.clear();
  list_.clear();
  index_.clear();
  hand_ = detail::kNullSlot;
  reset_usage();
}

}  // namespace starcdn::cache
