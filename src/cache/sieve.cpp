#include "cache/sieve.h"

namespace starcdn::cache {

bool SieveCache::touch(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  it->second->visited = true;
  return true;
}

void SieveCache::evict_one() {
  // The hand sweeps tail -> head, clearing visited bits, and evicts the
  // first unvisited entry; it wraps to the tail when it passes the head.
  if (list_.empty()) return;
  if (hand_ == list_.end()) hand_ = std::prev(list_.end());
  while (hand_->visited) {
    hand_->visited = false;
    if (hand_ == list_.begin()) {
      hand_ = std::prev(list_.end());
    } else {
      --hand_;
    }
  }
  const auto victim = hand_;
  // Advance the hand before erasing; "toward head", wrapping at begin.
  if (victim == list_.begin()) {
    hand_ = list_.end();  // next eviction restarts at the tail
  } else {
    hand_ = std::prev(victim);
  }
  index_.erase(victim->id);
  note_evict(victim->size);
  list_.erase(victim);
}

void SieveCache::admit(ObjectId id, Bytes size) {
  if (size > capacity() || index_.contains(id)) return;
  while (!list_.empty() && capacity() - used_bytes() < size) evict_one();
  list_.push_front({id, size, false});
  index_.emplace(id, list_.begin());
  note_admit(size);
}

void SieveCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  if (hand_ == it->second) {
    hand_ = it->second == list_.begin() ? list_.end() : std::prev(it->second);
  }
  note_erase(it->second->size);
  list_.erase(it->second);
  index_.erase(it);
}

std::vector<std::pair<ObjectId, Bytes>> SieveCache::hottest(
    std::size_t n) const {
  // Visited entries first (they survived a sweep), then by insertion order.
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (const Entry& e : list_) {
    if (out.size() >= n) break;
    if (e.visited) out.emplace_back(e.id, e.size);
  }
  for (const Entry& e : list_) {
    if (out.size() >= n) break;
    if (!e.visited) out.emplace_back(e.id, e.size);
  }
  return out;
}

void SieveCache::clear() {
  list_.clear();
  index_.clear();
  hand_ = list_.end();
  reset_usage();
}

}  // namespace starcdn::cache
