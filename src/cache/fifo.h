// First-In First-Out eviction: the simplest baseline and the substrate
// SIEVE builds on.
#pragma once

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

class FifoCache final : public Cache {
 public:
  explicit FifoCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override { return index_.contains(id); }
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kFifo;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint32_t prev, next;
  };

  detail::Slab<Entry> slab_;
  detail::IntrusiveList<Entry> list_;  // front = newest
  detail::FlatIndex index_;
};

}  // namespace starcdn::cache
