#include "cache/lru.h"

namespace starcdn::cache {

bool LruCache::touch(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  list_.splice(list_.begin(), list_, it->second);
  return true;
}

void LruCache::evict_until(Bytes needed) {
  while (!list_.empty() && capacity() - used_bytes() < needed) {
    const Entry& victim = list_.back();
    index_.erase(victim.id);
    note_evict(victim.size);
    list_.pop_back();
  }
}

void LruCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;  // already resident
  evict_until(size);
  list_.push_front({id, size});
  index_.emplace(id, list_.begin());
  note_admit(size);
}

void LruCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  note_erase(it->second->size);
  list_.erase(it->second);
  index_.erase(it);
}

std::vector<std::pair<ObjectId, Bytes>> LruCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (const Entry& e : list_) {
    if (out.size() >= n) break;
    out.emplace_back(e.id, e.size);
  }
  return out;
}

void LruCache::clear() {
  list_.clear();
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
