#include "cache/lru.h"

namespace starcdn::cache {

bool LruCache::touch(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return false;
  list_.move_front(slab_, s);
  return true;
}

void LruCache::evict_until(Bytes needed) {
  while (!list_.empty() && capacity() - used_bytes() < needed) {
    const std::uint32_t victim = list_.tail;
    index_.erase(slab_[victim].id);
    note_evict(slab_[victim].size);
    list_.unlink(slab_, victim);
    slab_.release(victim);
  }
}

void LruCache::admit(ObjectId id, Bytes size) {
  if (size > capacity()) return;
  if (touch(id)) return;  // already resident
  evict_until(size);
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  list_.push_front(slab_, s);
  index_.insert(id, s);
  note_admit(size);
}

void LruCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  note_erase(slab_[s].size);
  list_.unlink(slab_, s);
  index_.erase(id);
  slab_.release(s);
}

void LruCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

std::vector<std::pair<ObjectId, Bytes>> LruCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (std::uint32_t s = list_.head; s != detail::kNullSlot && out.size() < n;
       s = slab_[s].next) {
    out.emplace_back(slab_[s].id, slab_[s].size);
  }
  return out;
}

void LruCache::clear() {
  slab_.clear();
  list_.clear();
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
