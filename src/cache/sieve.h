// SIEVE eviction (Zhang et al., NSDI 2024), cited by the paper as a policy
// its consistent hashing composes with (§3.2).
//
// SIEVE keeps a FIFO-ordered list with one "visited" bit per entry and a
// hand that sweeps from tail to head: on eviction the hand skips (and
// clears) visited entries and removes the first unvisited one. Hits only
// set the visited bit — no list movement — which makes hits cheaper than
// LRU and gives better scan resistance.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace starcdn::cache {

class SieveCache final : public Cache {
 public:
  explicit SieveCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kSieve;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    bool visited = false;
  };
  using List = std::list<Entry>;

  void evict_one();

  List list_;  // front = newest insertion
  List::iterator hand_ = list_.end();
  std::unordered_map<ObjectId, List::iterator> index_;
};

}  // namespace starcdn::cache
