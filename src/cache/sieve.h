// SIEVE eviction (Zhang et al., NSDI 2024), cited by the paper as a policy
// its consistent hashing composes with (§3.2).
//
// SIEVE keeps a FIFO-ordered list with one "visited" bit per entry and a
// hand that sweeps from tail to head: on eviction the hand skips (and
// clears) visited entries and removes the first unvisited one. Hits only
// set the visited bit — no list movement — which makes hits cheaper than
// LRU and gives better scan resistance. Here the list is intrusive over the
// entry slab and the hand is a slot index (kNullSlot = restart at the
// tail), so the sweep is a contiguous-arena pointer chase.
#pragma once

#include "cache/cache.h"
#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"

namespace starcdn::cache {

class SieveCache final : public Cache {
 public:
  explicit SieveCache(Bytes capacity) noexcept : Cache(capacity) {}

  [[nodiscard]] bool peek(ObjectId id) const override {
    return index_.contains(id);
  }
  bool touch(ObjectId id) override;
  void admit(ObjectId id, Bytes size) override;
  void erase(ObjectId id) override;
  void clear() override;
  void reserve(std::size_t expected_objects) override;
  [[nodiscard]] std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override;
  [[nodiscard]] Policy policy() const noexcept override {
    return Policy::kSieve;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    std::uint32_t prev, next;
    bool visited;
  };

  void evict_one();

  detail::Slab<Entry> slab_;
  detail::IntrusiveList<Entry> list_;  // front = newest insertion
  std::uint32_t hand_ = detail::kNullSlot;
  detail::FlatIndex index_;
};

}  // namespace starcdn::cache
