// Entry slab + intrusive slot-linked list: the storage layer of the cache
// core (DESIGN.md §"Cache-core memory layout").
//
// Every eviction policy keeps its entries in one contiguous arena
// (`Slab<Entry>`) and expresses ordering through 32-bit slot links carried
// *inside* the entries, instead of `std::list` nodes scattered across the
// heap. Consequences on the simulator's hot path:
//
//   * zero allocations after warm-up — evicted slots go on a free list and
//     are recycled by the next admit;
//   * ordering updates (touch -> move-to-front, evict -> unlink tail) touch
//     at most three adjacent 24-48 byte entries, not five list nodes;
//   * slot indices are half the size of pointers, so entries pack tighter
//     and the index (detail::FlatIndex) stores u32 values.
//
// Invariants:
//   * a slot is either LIVE (reachable from exactly one intrusive list, or
//     owned by a policy-side structure like GDSF's queue) or FREE (on the
//     slab free list, where `next` is repurposed as the free link);
//   * `kNullSlot` terminates both lists and marks "no slot" everywhere;
//   * releasing a slot invalidates its contents but never its memory — the
//     arena only grows, so entry references stay valid across release (but
//     NOT across allocate(), which may reallocate the vector).
#pragma once

#include <cstdint>
#include <vector>

namespace starcdn::cache::detail {

inline constexpr std::uint32_t kNullSlot = 0xFFFFFFFFu;

/// Contiguous arena of `Entry` with an intrusive free list. `Entry` must be
/// default-constructible and expose `std::uint32_t prev, next` members (the
/// slab reuses `next` as the free-list link while a slot is free).
template <typename Entry>
class Slab {
 public:
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Pop a recycled slot, or grow the arena by one. The returned entry's
  /// fields are stale; the caller initializes them.
  [[nodiscard]] std::uint32_t allocate() {
    if (free_head_ != kNullSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = entries_[s].next;
      --free_count_;
      return s;
    }
    entries_.emplace_back();
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Return a slot to the free list. The caller must have unlinked it from
  /// any intrusive list first.
  void release(std::uint32_t s) noexcept {
    entries_[s].next = free_head_;
    free_head_ = s;
    ++free_count_;
  }

  [[nodiscard]] Entry& operator[](std::uint32_t s) noexcept {
    return entries_[s];
  }
  [[nodiscard]] const Entry& operator[](std::uint32_t s) const noexcept {
    return entries_[s];
  }

  /// Live (allocated and not released) slot count.
  [[nodiscard]] std::size_t live() const noexcept {
    return entries_.size() - free_count_;
  }
  [[nodiscard]] std::size_t arena_size() const noexcept {
    return entries_.size();
  }

  void clear() noexcept {
    entries_.clear();
    free_head_ = kNullSlot;
    free_count_ = 0;
  }

 private:
  std::vector<Entry> entries_;
  std::uint32_t free_head_ = kNullSlot;
  std::size_t free_count_ = 0;
};

/// Doubly-linked list over slab slots. The list itself holds only head/tail;
/// all link state lives in the entries' `prev`/`next` members, so splicing a
/// slot between lists sharing one slab (SLRU's segments, LFU's frequency
/// buckets) is just unlink + push_front with no data movement.
template <typename Entry>
struct IntrusiveList {
  std::uint32_t head = kNullSlot;  // front
  std::uint32_t tail = kNullSlot;  // back

  [[nodiscard]] bool empty() const noexcept { return head == kNullSlot; }
  void clear() noexcept { head = tail = kNullSlot; }

  void push_front(Slab<Entry>& slab, std::uint32_t s) noexcept {
    Entry& e = slab[s];
    e.prev = kNullSlot;
    e.next = head;
    if (head != kNullSlot) {
      slab[head].prev = s;
    } else {
      tail = s;
    }
    head = s;
  }

  /// Insert `s` immediately after `pos` (which must be a live member).
  void insert_after(Slab<Entry>& slab, std::uint32_t pos,
                    std::uint32_t s) noexcept {
    Entry& e = slab[s];
    Entry& p = slab[pos];
    e.prev = pos;
    e.next = p.next;
    if (p.next != kNullSlot) {
      slab[p.next].prev = s;
    } else {
      tail = s;
    }
    p.next = s;
  }

  void unlink(Slab<Entry>& slab, std::uint32_t s) noexcept {
    Entry& e = slab[s];
    if (e.prev != kNullSlot) {
      slab[e.prev].next = e.next;
    } else {
      head = e.next;
    }
    if (e.next != kNullSlot) {
      slab[e.next].prev = e.prev;
    } else {
      tail = e.prev;
    }
  }

  void move_front(Slab<Entry>& slab, std::uint32_t s) noexcept {
    if (head == s) return;
    unlink(slab, s);
    push_front(slab, s);
  }
};

}  // namespace starcdn::cache::detail
