#include "cache/detail/flat_index.h"

#include <bit>
#include <cstring>

namespace starcdn::cache::detail {

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kGroup = 8;
constexpr std::uint8_t kDispSaturated = 0xFF;
// Fibonacci multiplier (2^64 / golden ratio, forced odd). One multiply
// replaces a full avalanche mix: the home index takes the hash's TOP bits,
// where a single multiply mixes well, and golden-ratio steps turn dense
// sequential object ids (the common trace shape) into a low-discrepancy,
// cluster-free spread instead of the long probe runs identity hashing
// would produce.
constexpr std::uint64_t kMul = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kLsb = 0x0101010101010101ull;
constexpr std::uint64_t kMsb = 0x8080808080808080ull;

[[nodiscard]] std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t cap = kMinBuckets;
  while (cap < n) cap <<= 1;
  return cap;
}

[[nodiscard]] std::uint64_t mix(std::uint64_t key) noexcept {
  return key * kMul;
}

/// Control byte for an occupied cell: marker bit + 7 mid hash bits
/// (bits 33-39). The home index consumes the top `64 - shift_` bits, so the
/// two stay independent for any table up to 2^24 buckets; past that they
/// overlap and the tag merely discriminates less (never incorrectly).
[[nodiscard]] std::uint8_t ctrl_of(std::uint64_t h) noexcept {
  return static_cast<std::uint8_t>(0x80u | ((h >> 33) & 0x7F));
}

[[nodiscard]] std::uint8_t saturate_disp(std::size_t d) noexcept {
  return d >= kDispSaturated ? kDispSaturated
                             : static_cast<std::uint8_t>(d);
}

/// 8 control bytes starting at an 8-aligned index (capacity is a power of
/// two >= 16, so an aligned group never straddles the end of the array).
[[nodiscard]] std::uint64_t load_group(const std::uint8_t* p) noexcept {
  std::uint64_t g;
  std::memcpy(&g, p, sizeof(g));
  return g;
}

/// Bit 8k+7 set where byte k of `g` equals `b`. SWAR zero-byte detection
/// after XOR; borrows can set false-positive bits, but only at positions
/// ABOVE a true match, and callers verify candidates against the full key.
[[nodiscard]] std::uint64_t match_byte(std::uint64_t g,
                                       std::uint8_t b) noexcept {
  const std::uint64_t x = g ^ (kLsb * b);
  return (x - kLsb) & ~x & kMsb;
}

/// Bit 8k+7 set where byte k of `g` is 0 (empty). The lowest set bit is
/// always exact (borrow propagates upward only), which is all probing needs.
[[nodiscard]] std::uint64_t match_empty(std::uint64_t g) noexcept {
  return (g - kLsb) & ~g & kMsb;
}

[[nodiscard]] std::size_t byte_of(std::uint64_t bit_mask) noexcept {
  return static_cast<std::size_t>(std::countr_zero(bit_mask)) / 8;
}

}  // namespace

void FlatIndex::reserve(std::size_t n) {
  // Smallest power of two keeping n keys at or under 3/4 load.
  const std::size_t cap = pow2_at_least(n + n / 3 + 1);
  if (cap > cells_.size()) grow(cap);
}

std::uint32_t FlatIndex::find(std::uint64_t key) const noexcept {
  if (cells_.empty()) return kNullSlot;
  const std::uint64_t h = mix(key);
  const std::uint8_t tag = ctrl_of(h);
  const std::size_t start = h >> shift_;
  // Scalar fast path: most probes resolve at the home cell (hit with a tag
  // and key match, miss with an empty byte) without the group-scan setup.
  const std::uint8_t c0 = ctrl_[start];
  if (c0 == tag && cells_[start].key == key) return cells_[start].slot;
  if (c0 == 0) return kNullSlot;
  std::size_t base = start & ~(kGroup - 1);
  // Bytes before `start` in the first group precede the probe origin and
  // belong to other clusters; mask them out of both bit sets.
  std::uint64_t live = ~std::uint64_t{0} << (8 * (start - base));
  while (true) {
    const std::uint64_t g = load_group(&ctrl_[base]);
    const std::uint64_t empty = match_empty(g) & live;
    std::uint64_t m = match_byte(g, tag) & live;
    if (empty != 0) m &= (empty & (~empty + 1)) - 1;  // only before 1st empty
    while (m != 0) {
      const std::size_t i = base + byte_of(m);
      if (cells_[i].key == key) return cells_[i].slot;
      m &= m - 1;
    }
    if (empty != 0) return kNullSlot;
    base = (base + kGroup) & mask_;
    live = ~std::uint64_t{0};
  }
}

void FlatIndex::insert(std::uint64_t key, std::uint32_t slot) {
  if (cells_.empty() || (size_ + 1) * 4 > cells_.size() * 3) {
    grow(cells_.empty() ? kMinBuckets : cells_.size() * 2);
  }
  const std::uint64_t h = mix(key);
  const std::size_t home = h >> shift_;
  std::size_t i = home;
  if (ctrl_[i] != 0) {
    std::size_t base = home & ~(kGroup - 1);
    std::uint64_t live = ~std::uint64_t{0} << (8 * (home - base));
    while (true) {
      const std::uint64_t empty = match_empty(load_group(&ctrl_[base])) & live;
      if (empty != 0) {
        i = base + byte_of(empty);
        break;
      }
      base = (base + kGroup) & mask_;
      live = ~std::uint64_t{0};
    }
  }
  ctrl_[i] = ctrl_of(h);
  disp_[i] = saturate_disp((i - home) & mask_);
  cells_[i] = {key, slot};
  ++size_;
}

std::size_t FlatIndex::disp_at(std::size_t i) const noexcept {
  const std::uint8_t d = disp_[i];
  if (d != kDispSaturated) return d;
  // Saturated displacement (essentially unreachable below ~255-long probe
  // chains): recompute the true distance from the key.
  return (i - (mix(cells_[i].key) >> shift_)) & mask_;
}

bool FlatIndex::erase(std::uint64_t key) noexcept {
  if (cells_.empty()) return false;
  const std::uint64_t h = mix(key);
  const std::uint8_t tag = ctrl_of(h);
  const std::size_t start = h >> shift_;
  std::size_t i = start;
  const std::uint8_t c0 = ctrl_[start];
  if (c0 != tag || cells_[start].key != key) {
    if (c0 == 0) return false;
    std::size_t base = start & ~(kGroup - 1);
    std::uint64_t live = ~std::uint64_t{0} << (8 * (start - base));
    bool found = false;
    while (!found) {
      const std::uint64_t g = load_group(&ctrl_[base]);
      const std::uint64_t empty = match_empty(g) & live;
      std::uint64_t m = match_byte(g, tag) & live;
      if (empty != 0) m &= (empty & (~empty + 1)) - 1;
      while (m != 0) {
        i = base + byte_of(m);
        if (cells_[i].key == key) {
          found = true;
          break;
        }
        m &= m - 1;
      }
      if (found) break;
      if (empty != 0) return false;
      base = (base + kGroup) & mask_;
      live = ~std::uint64_t{0};
    }
  }
  // Backward shift: walk the cluster after the hole and pull back every
  // cell displaced far enough that moving it to the hole keeps it at or
  // after its home cell, so no probe sequence is ever interrupted by the
  // deletion. The displacement bytes make this scan pure L1 byte reads —
  // no key loads, no re-hashing.
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (ctrl_[j] == 0) break;
    const std::size_t dist = (j - i) & mask_;
    const std::size_t d = disp_at(j);
    if (d < dist) continue;  // would land before its home; leave in place
    cells_[i] = cells_[j];
    ctrl_[i] = ctrl_[j];
    disp_[i] = saturate_disp(d - dist);
    i = j;
  }
  ctrl_[i] = 0;
  --size_;
  return true;
}

void FlatIndex::clear() noexcept {
  ctrl_.assign(ctrl_.size(), 0);
  size_ = 0;
}

void FlatIndex::grow(std::size_t cap) {
  std::vector<Cell> old_cells = std::move(cells_);
  std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
  cells_.assign(cap, Cell{0, kNullSlot});
  ctrl_.assign(cap, 0);
  disp_.assign(cap, 0);
  mask_ = cap - 1;
  shift_ = 64 - static_cast<std::uint32_t>(std::countr_zero(cap));
  for (std::size_t k = 0; k < old_cells.size(); ++k) {
    if (old_ctrl[k] == 0) continue;
    const std::uint64_t h = mix(old_cells[k].key);
    const std::size_t home = h >> shift_;
    std::size_t i = home;
    while (ctrl_[i] != 0) i = (i + 1) & mask_;
    ctrl_[i] = ctrl_of(h);
    disp_[i] = saturate_disp((i - home) & mask_);
    cells_[i] = old_cells[k];
  }
}

}  // namespace starcdn::cache::detail
