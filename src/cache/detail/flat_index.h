// Open-addressing hash index `u64 key -> u32 slot` for the cache core.
//
// Replaces the per-policy `std::unordered_map<ObjectId, iterator>`: a flat
// power-of-two array of 16-byte cells plus parallel 1-byte control and
// displacement arrays, linear probing, and tombstone-free backward-shift
// deletion.
//
// The control array is the load-bearing trick (borrowed from Swiss-table
// designs, with SWAR byte groups instead of SIMD): each cell's control byte
// is either 0 (empty) or `0x80 | 7 hash bits`, so a probe scans the byte
// array eight cells per u64 load — 64 cells per cache line, small enough to
// stay L1/L2-resident — and only dereferences the wide cell on a
// control-byte match. Negative lookups (the simulator's dominant pattern:
// every relayed-fetch probe and every miss path checks absent ids) usually
// finish on one or two hot byte-group loads with a 1/128 false-positive
// rate per scanned cell.
//
// Deletion backward-shifts the displaced tail of the cluster over the hole
// (cells, control bytes, and displacement bytes together), so there are no
// tombstones and probe lengths cannot degrade under the simulator's heavy
// eviction churn. The displacement array caches each cell's distance from
// its home bucket (saturating at 255), turning the shift decision into a
// byte compare instead of a rehash. Object ids are already 64-bit integers,
// so the key is mixed once with a Fibonacci multiply (golden-ratio
// constant; home = top log2(capacity) bits, control = 7 mid bits) and never
// re-hashed.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/detail/slab.h"  // kNullSlot

namespace starcdn::cache::detail {

class FlatIndex {
 public:
  FlatIndex() = default;

  /// Pre-size so `n` keys fit without rehashing (load factor <= 3/4).
  void reserve(std::size_t n);

  /// Slot mapped to `key`, or kNullSlot when absent.
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const noexcept;
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key) != kNullSlot;
  }

  /// Insert a mapping; `key` must not be present.
  void insert(std::uint64_t key, std::uint32_t slot);

  /// Remove `key` (backward-shift); returns false when absent.
  bool erase(std::uint64_t key) noexcept;

  void clear() noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return cells_.size();
  }

 private:
  struct Cell {
    std::uint64_t key;
    std::uint32_t slot;
  };

  [[nodiscard]] std::size_t disp_at(std::size_t i) const noexcept;
  void grow(std::size_t cap);

  std::vector<Cell> cells_;
  std::vector<std::uint8_t> ctrl_;  // 0 = empty, else 0x80 | 7 hash bits
  std::vector<std::uint8_t> disp_;  // distance from home cell, saturating
  std::size_t mask_ = 0;            // cells_.size() - 1 while non-empty
  std::uint32_t shift_ = 64;        // home index = hash >> shift_
  std::size_t size_ = 0;
};

}  // namespace starcdn::cache::detail
