#include "cache/fifo.h"

namespace starcdn::cache {

void FifoCache::admit(ObjectId id, Bytes size) {
  if (size > capacity() || index_.contains(id)) return;
  while (!list_.empty() && capacity() - used_bytes() < size) {
    const Entry& victim = list_.back();
    index_.erase(victim.id);
    note_evict(victim.size);
    list_.pop_back();
  }
  list_.push_front({id, size});
  index_.emplace(id, list_.begin());
  note_admit(size);
}

void FifoCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  note_erase(it->second->size);
  list_.erase(it->second);
  index_.erase(it);
}

std::vector<std::pair<ObjectId, Bytes>> FifoCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (const Entry& e : list_) {
    if (out.size() >= n) break;
    out.emplace_back(e.id, e.size);
  }
  return out;
}

void FifoCache::clear() {
  list_.clear();
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
