#include "cache/fifo.h"

namespace starcdn::cache {

void FifoCache::admit(ObjectId id, Bytes size) {
  if (size > capacity() || index_.contains(id)) return;
  while (!list_.empty() && capacity() - used_bytes() < size) {
    const std::uint32_t victim = list_.tail;
    index_.erase(slab_[victim].id);
    note_evict(slab_[victim].size);
    list_.unlink(slab_, victim);
    slab_.release(victim);
  }
  const std::uint32_t s = slab_.allocate();
  Entry& e = slab_[s];
  e.id = id;
  e.size = size;
  list_.push_front(slab_, s);
  index_.insert(id, s);
  note_admit(size);
}

void FifoCache::erase(ObjectId id) {
  const std::uint32_t s = index_.find(id);
  if (s == detail::kNullSlot) return;
  note_erase(slab_[s].size);
  list_.unlink(slab_, s);
  index_.erase(id);
  slab_.release(s);
}

void FifoCache::reserve(std::size_t expected_objects) {
  slab_.reserve(expected_objects);
  index_.reserve(expected_objects);
}

std::vector<std::pair<ObjectId, Bytes>> FifoCache::hottest(
    std::size_t n) const {
  std::vector<std::pair<ObjectId, Bytes>> out;
  for (std::uint32_t s = list_.head; s != detail::kNullSlot && out.size() < n;
       s = slab_[s].next) {
    out.emplace_back(slab_[s].id, slab_[s].size);
  }
  return out;
}

void FifoCache::clear() {
  slab_.clear();
  list_.clear();
  index_.clear();
  reset_usage();
}

}  // namespace starcdn::cache
