#include "orbit/visibility.h"

#include <algorithm>
#include <cmath>

#include "orbit/propagator.h"

namespace starcdn::orbit {

util::Degrees elevation(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  const Vec3 up = ground_ecef.normalized();
  const Vec3 to_sat = sat_ecef - ground_ecef;
  const double d = to_sat.norm();
  if (d <= 0.0) return util::Degrees{90.0};
  const double sin_el = up.dot(to_sat) / d;
  return util::to_degrees(
      util::Radians{std::asin(std::clamp(sin_el, -1.0, 1.0))});
}

util::Km slant_range(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  return util::Km{distance(ground_ecef, sat_ecef)};
}

util::Km horizon_slant_range(util::Km orbit_radius, util::Km ground_radius,
                             util::Degrees min_elevation) noexcept {
  const double el = util::to_radians(min_elevation).value();
  const double rc = ground_radius.value() * std::cos(el);
  const double under = orbit_radius.value() * orbit_radius.value() - rc * rc;
  if (under <= 0.0) return util::Km{0.0};  // orbit never clears the mask
  return util::Km{std::sqrt(under) - ground_radius.value() * std::sin(el)};
}

std::vector<VisibleSat> VisibilityOracle::visible(
    const util::GeoCoord& ground, const Constellation& constellation,
    const std::vector<Vec3>& sat_positions_ecef) const {
  return visible_from_ecef(geodetic_to_ecef(ground), constellation,
                           sat_positions_ecef);
}

std::vector<VisibleSat> VisibilityOracle::visible_from_ecef(
    const Vec3& ground_ecef, const Constellation& constellation,
    const std::vector<Vec3>& sat_positions_ecef) const {
  const Vec3& g = ground_ecef;
  // Cheap reject: any satellite of this constellation whose slant range
  // exceeds the horizon slant range at the mask — derived from the shell's
  // actual orbital radius, so higher-altitude shells are never culled
  // (at 550 km / 25 deg this is ~1,124 km) — is below the mask; skip the
  // asin for those. +1 km absorbs floating-point slack.
  const util::Km reject =
      horizon_slant_range(constellation.max_orbital_radius(),
                          util::Km{g.norm()}, min_elevation_) +
      util::Km{1.0};
  std::vector<VisibleSat> out;
  for (int i = 0; i < constellation.size(); ++i) {
    const util::SatId sat{i};
    if (!constellation.active(sat)) continue;
    const Vec3& s = sat_positions_ecef[static_cast<std::size_t>(i)];
    const util::Km range = slant_range(g, s);
    if (range > reject) continue;
    const util::Degrees el = elevation(g, s);
    if (el >= min_elevation_) {
      out.push_back({sat, el, range});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const VisibleSat& a, const VisibleSat& b) {
              return a.elevation > b.elevation;
            });
  return out;
}

}  // namespace starcdn::orbit
