#include "orbit/visibility.h"

#include <algorithm>
#include <cmath>

#include "orbit/propagator.h"

namespace starcdn::orbit {

double elevation_deg(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  const Vec3 up = ground_ecef.normalized();
  const Vec3 to_sat = sat_ecef - ground_ecef;
  const double d = to_sat.norm();
  if (d <= 0.0) return 90.0;
  const double sin_el = up.dot(to_sat) / d;
  return util::rad2deg(std::asin(std::clamp(sin_el, -1.0, 1.0)));
}

double slant_range_km(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  return distance(ground_ecef, sat_ecef);
}

std::vector<VisibleSat> VisibilityOracle::visible(
    const util::GeoCoord& ground, const Constellation& constellation,
    const std::vector<Vec3>& sat_positions_ecef) const {
  const Vec3 g = geodetic_to_ecef(ground);
  std::vector<VisibleSat> out;
  for (int i = 0; i < constellation.size(); ++i) {
    if (!constellation.active(i)) continue;
    const Vec3& s = sat_positions_ecef[static_cast<std::size_t>(i)];
    // Cheap reject: a 550 km satellite more than ~2,600 km of slant range
    // away is always below a 25-degree mask; skip the asin for those.
    const double range = slant_range_km(g, s);
    if (range > 3500.0) continue;
    const double el = elevation_deg(g, s);
    if (el >= min_elevation_deg_) {
      out.push_back({i, el, range});
    }
  }
  std::sort(out.begin(), out.end(), [](const VisibleSat& a, const VisibleSat& b) {
    return a.elevation_deg > b.elevation_deg;
  });
  return out;
}

}  // namespace starcdn::orbit
