#include "orbit/visibility.h"

#include <algorithm>
#include <cmath>

#include "orbit/propagator.h"

namespace starcdn::orbit {

double elevation_deg(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  const Vec3 up = ground_ecef.normalized();
  const Vec3 to_sat = sat_ecef - ground_ecef;
  const double d = to_sat.norm();
  if (d <= 0.0) return 90.0;
  const double sin_el = up.dot(to_sat) / d;
  return util::rad2deg(std::asin(std::clamp(sin_el, -1.0, 1.0)));
}

double slant_range_km(const Vec3& ground_ecef, const Vec3& sat_ecef) noexcept {
  return distance(ground_ecef, sat_ecef);
}

double horizon_slant_range_km(double orbit_radius_km, double ground_radius_km,
                              double elevation_deg) noexcept {
  const double el = util::deg2rad(elevation_deg);
  const double rc = ground_radius_km * std::cos(el);
  const double under = orbit_radius_km * orbit_radius_km - rc * rc;
  if (under <= 0.0) return 0.0;  // orbit never clears the mask
  return std::sqrt(under) - ground_radius_km * std::sin(el);
}

std::vector<VisibleSat> VisibilityOracle::visible(
    const util::GeoCoord& ground, const Constellation& constellation,
    const std::vector<Vec3>& sat_positions_ecef) const {
  return visible_from_ecef(geodetic_to_ecef(ground), constellation,
                           sat_positions_ecef);
}

std::vector<VisibleSat> VisibilityOracle::visible_from_ecef(
    const Vec3& ground_ecef, const Constellation& constellation,
    const std::vector<Vec3>& sat_positions_ecef) const {
  const Vec3& g = ground_ecef;
  // Cheap reject: any satellite of this constellation whose slant range
  // exceeds the horizon slant range at the mask — derived from the shell's
  // actual orbital radius, so higher-altitude shells are never culled
  // (at 550 km / 25 deg this is ~1,124 km) — is below the mask; skip the
  // asin for those. +1 km absorbs floating-point slack.
  const double reject_km =
      horizon_slant_range_km(constellation.max_orbital_radius_km(), g.norm(),
                             min_elevation_deg_) +
      1.0;
  std::vector<VisibleSat> out;
  for (int i = 0; i < constellation.size(); ++i) {
    if (!constellation.active(i)) continue;
    const Vec3& s = sat_positions_ecef[static_cast<std::size_t>(i)];
    const double range = slant_range_km(g, s);
    if (range > reject_km) continue;
    const double el = elevation_deg(g, s);
    if (el >= min_elevation_deg_) {
      out.push_back({i, el, range});
    }
  }
  std::sort(out.begin(), out.end(), [](const VisibleSat& a, const VisibleSat& b) {
    return a.elevation_deg > b.elevation_deg;
  });
  return out;
}

}  // namespace starcdn::orbit
