#include "orbit/tle.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/geo.h"
#include "util/units.h"

namespace starcdn::orbit {

namespace {

/// Parse a fixed-width substring as double; returns NaN on failure.
double field(std::string_view line, std::size_t pos, std::size_t len) {
  if (pos + len > line.size()) return std::nan("");
  const std::string s{line.substr(pos, len)};
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    (void)used;
    return v;
  } catch (...) {
    return std::nan("");
  }
}

}  // namespace

CircularElements Tle::to_circular() const noexcept {
  using util::Degrees;
  CircularElements e;
  // a^3 = mu / n^2 with n in rad/s.
  const double n_rad_s = mean_motion_rev_day * 2.0 * M_PI / util::kDay.value();
  e.semi_major_axis =
      util::Km{std::cbrt(util::kEarthMuKm3PerS2 / (n_rad_s * n_rad_s))};
  e.inclination = util::to_radians(Degrees{inclination_deg});
  e.raan = util::to_radians(Degrees{raan_deg});
  e.arg_latitude_epoch = util::to_radians(
      Degrees{std::fmod(arg_perigee_deg + mean_anomaly_deg, 360.0)});
  return e;
}

KeplerianElements Tle::to_keplerian() const noexcept {
  using util::Degrees;
  KeplerianElements e;
  const double n_rad_s = mean_motion_rev_day * 2.0 * M_PI / util::kDay.value();
  e.semi_major_axis =
      util::Km{std::cbrt(util::kEarthMuKm3PerS2 / (n_rad_s * n_rad_s))};
  e.eccentricity = eccentricity;
  e.inclination = util::to_radians(Degrees{inclination_deg});
  e.raan = util::to_radians(Degrees{raan_deg});
  e.arg_perigee = util::to_radians(Degrees{arg_perigee_deg});
  e.mean_anomaly_epoch = util::to_radians(Degrees{mean_anomaly_deg});
  return e;
}

int tle_checksum(std::string_view line) noexcept {
  int sum = 0;
  const std::size_t n = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = line[i];
    if (c >= '0' && c <= '9') sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

std::optional<Tle> parse_tle(std::string_view line1, std::string_view line2,
                             std::string_view name) {
  if (line1.size() < 69 || line2.size() < 69) return std::nullopt;
  if (line1[0] != '1' || line2[0] != '2') return std::nullopt;
  if (tle_checksum(line1) != line1[68] - '0') return std::nullopt;
  if (tle_checksum(line2) != line2[68] - '0') return std::nullopt;

  Tle t;
  t.name = std::string(name);
  t.catalog_number = static_cast<int>(field(line2, 2, 5));
  t.inclination_deg = field(line2, 8, 8);
  t.raan_deg = field(line2, 17, 8);
  // Eccentricity field has an implied leading decimal point.
  t.eccentricity = field(line2, 26, 7) * 1e-7;
  t.arg_perigee_deg = field(line2, 34, 8);
  t.mean_anomaly_deg = field(line2, 43, 8);
  t.mean_motion_rev_day = field(line2, 52, 11);
  if (std::isnan(t.inclination_deg) || std::isnan(t.raan_deg) ||
      std::isnan(t.mean_motion_rev_day) || t.mean_motion_rev_day <= 0.0) {
    return std::nullopt;
  }
  return t;
}

std::vector<Tle> parse_tle_file(std::string_view text) {
  std::vector<Tle> out;
  std::vector<std::string> lines;
  {
    std::istringstream in{std::string(text)};
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
        line.pop_back();
      }
      if (!line.empty()) lines.push_back(line);
    }
  }
  std::string pending_name;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (l[0] == '1' && i + 1 < lines.size() && lines[i + 1][0] == '2') {
      if (auto t = parse_tle(l, lines[i + 1], pending_name)) {
        out.push_back(std::move(*t));
      }
      pending_name.clear();
      ++i;
    } else if (l[0] != '1' && l[0] != '2') {
      pending_name = l;
      // Strip trailing spaces of the name line.
      while (!pending_name.empty() && pending_name.back() == ' ') {
        pending_name.pop_back();
      }
    }
  }
  return out;
}

std::string format_tle(const Tle& t) {
  char l1[80], l2[80];
  std::snprintf(l1, sizeof l1,
                "1 %05dU 20001A   24001.00000000  .00000000  00000-0  00000-0 "
                "0  999",
                t.catalog_number);
  std::snprintf(l2, sizeof l2,
                "2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f    1",
                t.catalog_number, t.inclination_deg, t.raan_deg,
                static_cast<int>(std::llround(t.eccentricity * 1e7)),
                t.arg_perigee_deg, t.mean_anomaly_deg, t.mean_motion_rev_day);
  std::string s1{l1}, s2{l2};
  s1 += static_cast<char>('0' + tle_checksum(s1));
  s2 += static_cast<char>('0' + tle_checksum(s2));
  std::string out;
  if (!t.name.empty()) out += t.name + "\n";
  out += s1 + "\n" + s2 + "\n";
  return out;
}

}  // namespace starcdn::orbit
