// Two-Line Element (TLE) set parsing.
//
// The paper builds its constellation from CelesTrak TLEs for the
// Starlink-53 Gen-1 shell. We support the same ingestion path: parse TLE
// pairs (with checksum validation) and reduce them to the circular element
// model used by the propagator. For offline runs the Walker generator in
// constellation.h produces an equivalent element set directly.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "orbit/elements.h"

namespace starcdn::orbit {

struct Tle {
  std::string name;          // line 0, may be empty
  int catalog_number = 0;    // NORAD id
  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_rev_day = 0.0;

  /// Reduce to the circular model: a from mean motion, u0 = w + M0.
  [[nodiscard]] CircularElements to_circular() const noexcept;

  /// Full elliptical element set (keeps eccentricity and perigee).
  [[nodiscard]] KeplerianElements to_keplerian() const noexcept;
};

/// Modulo-10 TLE checksum over the first 68 characters of a line.
[[nodiscard]] int tle_checksum(std::string_view line) noexcept;

/// Parse a two-line pair (optionally preceded by a name line elsewhere).
/// Returns std::nullopt on malformed input or checksum failure.
[[nodiscard]] std::optional<Tle> parse_tle(std::string_view line1,
                                           std::string_view line2,
                                           std::string_view name = {});

/// Parse a whole 3LE/2LE text blob into element sets; malformed entries are
/// skipped (CelesTrak feeds occasionally contain truncated records).
[[nodiscard]] std::vector<Tle> parse_tle_file(std::string_view text);

/// Serialize to canonical two-line form (with valid checksums); used by the
/// round-trip tests and by SpaceGEN's scenario export.
[[nodiscard]] std::string format_tle(const Tle& t);

}  // namespace starcdn::orbit
