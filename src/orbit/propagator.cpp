#include "orbit/propagator.h"

#include <cmath>

#include "util/units.h"

namespace starcdn::orbit {

using util::kEarthMuKm3PerS2;
using util::kEarthRadiusKm;
using util::kEarthRotationRadPerS;

double mean_motion_rad_s(const CircularElements& e) noexcept {
  const double a = e.semi_major_axis_km;
  return std::sqrt(kEarthMuKm3PerS2 / (a * a * a));
}

double orbital_period_s(const CircularElements& e) noexcept {
  return 2.0 * M_PI / mean_motion_rad_s(e);
}

Vec3 eci_position(const CircularElements& e, double t_s) noexcept {
  const double u = e.arg_latitude_epoch_rad + mean_motion_rad_s(e) * t_s;
  const double a = e.semi_major_axis_km;
  const double ci = std::cos(e.inclination_rad);
  const double si = std::sin(e.inclination_rad);
  const double cu = std::cos(u), su = std::sin(u);
  // Position in the orbital plane rotated by inclination, then RAAN.
  const Vec3 in_plane{a * cu, a * su * ci, a * su * si};
  return rotate_z(in_plane, e.raan_rad);
}

Vec3 eci_to_ecef(const Vec3& eci, double t_s) noexcept {
  return rotate_z(eci, -kEarthRotationRadPerS * t_s);
}

Vec3 ecef_position(const CircularElements& e, double t_s) noexcept {
  return eci_to_ecef(eci_position(e, t_s), t_s);
}

Vec3 geodetic_to_ecef(const util::GeoCoord& g, double altitude_km) noexcept {
  const double lat = util::deg2rad(g.lat_deg);
  const double lon = util::deg2rad(g.lon_deg);
  const double r = kEarthRadiusKm + altitude_km;
  return {r * std::cos(lat) * std::cos(lon), r * std::cos(lat) * std::sin(lon),
          r * std::sin(lat)};
}

util::GeoCoord ecef_to_geodetic(const Vec3& ecef) noexcept {
  const double r = ecef.norm();
  util::GeoCoord g;
  if (r <= 0.0) return g;
  g.lat_deg = util::rad2deg(std::asin(ecef.z / r));
  g.lon_deg = util::rad2deg(std::atan2(ecef.y, ecef.x));
  return g;
}

util::GeoCoord ground_track_point(const CircularElements& e,
                                  double t_s) noexcept {
  return ecef_to_geodetic(ecef_position(e, t_s));
}

double solve_kepler(double mean_anomaly_rad, double eccentricity) noexcept {
  // Newton's method on f(E) = E - e sin E - M; the standard starting guess
  // E0 = M (e small) or pi (e large) converges in a handful of steps.
  const double M = mean_anomaly_rad;
  double E = eccentricity < 0.8 ? M : M_PI;
  for (int i = 0; i < 32; ++i) {
    const double f = E - eccentricity * std::sin(E) - M;
    const double fp = 1.0 - eccentricity * std::cos(E);
    const double step = f / fp;
    E -= step;
    if (std::abs(step) < 1e-13) break;
  }
  return E;
}

double mean_motion_rad_s(const KeplerianElements& e) noexcept {
  const double a = e.semi_major_axis_km;
  return std::sqrt(kEarthMuKm3PerS2 / (a * a * a));
}

Vec3 eci_position(const KeplerianElements& e, double t_s) noexcept {
  const double M = e.mean_anomaly_epoch_rad + mean_motion_rad_s(e) * t_s;
  const double E = solve_kepler(M, e.eccentricity);
  // True anomaly and radius from the eccentric anomaly.
  const double cosE = std::cos(E), sinE = std::sin(E);
  const double r = e.semi_major_axis_km * (1.0 - e.eccentricity * cosE);
  const double nu = std::atan2(std::sqrt(1.0 - e.eccentricity * e.eccentricity) * sinE,
                               cosE - e.eccentricity);
  // Argument of latitude, then the same plane rotation as the circular path.
  const double u = e.arg_perigee_rad + nu;
  const double ci = std::cos(e.inclination_rad);
  const double si = std::sin(e.inclination_rad);
  const double cu = std::cos(u), su = std::sin(u);
  const Vec3 in_plane{r * cu, r * su * ci, r * su * si};
  return rotate_z(in_plane, e.raan_rad);
}

Vec3 ecef_position(const KeplerianElements& e, double t_s) noexcept {
  return eci_to_ecef(eci_position(e, t_s), t_s);
}

}  // namespace starcdn::orbit
