#include "orbit/propagator.h"

#include <cmath>

#include "util/units.h"

namespace starcdn::orbit {

using util::kEarthMuKm3PerS2;
using util::kEarthRadiusKm;
using util::kEarthRotationRadPerS;

double mean_motion_rad_s(const CircularElements& e) noexcept {
  const double a = e.semi_major_axis.value();
  return std::sqrt(kEarthMuKm3PerS2 / (a * a * a));
}

util::Seconds orbital_period(const CircularElements& e) noexcept {
  return util::Seconds{2.0 * M_PI / mean_motion_rad_s(e)};
}

Vec3 eci_position(const CircularElements& e, util::Seconds t) noexcept {
  const double u =
      e.arg_latitude_epoch.value() + mean_motion_rad_s(e) * t.value();
  const double a = e.semi_major_axis.value();
  const double ci = std::cos(e.inclination.value());
  const double si = std::sin(e.inclination.value());
  const double cu = std::cos(u), su = std::sin(u);
  // Position in the orbital plane rotated by inclination, then RAAN.
  const Vec3 in_plane{a * cu, a * su * ci, a * su * si};
  return rotate_z(in_plane, e.raan.value());
}

Vec3 eci_to_ecef(const Vec3& eci, util::Seconds t) noexcept {
  return rotate_z(eci, -kEarthRotationRadPerS * t.value());
}

Vec3 ecef_position(const CircularElements& e, util::Seconds t) noexcept {
  return eci_to_ecef(eci_position(e, t), t);
}

Vec3 geodetic_to_ecef(const util::GeoCoord& g, util::Km altitude) noexcept {
  const double lat = util::to_radians(util::Degrees{g.lat_deg}).value();
  const double lon = util::to_radians(util::Degrees{g.lon_deg}).value();
  const double r = kEarthRadiusKm + altitude.value();
  return {r * std::cos(lat) * std::cos(lon), r * std::cos(lat) * std::sin(lon),
          r * std::sin(lat)};
}

util::GeoCoord ecef_to_geodetic(const Vec3& ecef) noexcept {
  const double r = ecef.norm();
  util::GeoCoord g;
  if (r <= 0.0) return g;
  g.lat_deg = util::to_degrees(util::Radians{std::asin(ecef.z / r)}).value();
  g.lon_deg =
      util::to_degrees(util::Radians{std::atan2(ecef.y, ecef.x)}).value();
  return g;
}

util::GeoCoord ground_track_point(const CircularElements& e,
                                  util::Seconds t) noexcept {
  return ecef_to_geodetic(ecef_position(e, t));
}

util::Radians solve_kepler(util::Radians mean_anomaly,
                           double eccentricity) noexcept {
  // Newton's method on f(E) = E - e sin E - M; the standard starting guess
  // E0 = M (e small) or pi (e large) converges in a handful of steps.
  const double M = mean_anomaly.value();
  double E = eccentricity < 0.8 ? M : M_PI;
  for (int i = 0; i < 32; ++i) {
    const double f = E - eccentricity * std::sin(E) - M;
    const double fp = 1.0 - eccentricity * std::cos(E);
    const double step = f / fp;
    E -= step;
    if (std::abs(step) < 1e-13) break;
  }
  return util::Radians{E};
}

double mean_motion_rad_s(const KeplerianElements& e) noexcept {
  const double a = e.semi_major_axis.value();
  return std::sqrt(kEarthMuKm3PerS2 / (a * a * a));
}

Vec3 eci_position(const KeplerianElements& e, util::Seconds t) noexcept {
  const double M =
      e.mean_anomaly_epoch.value() + mean_motion_rad_s(e) * t.value();
  const double E = solve_kepler(util::Radians{M}, e.eccentricity).value();
  // True anomaly and radius from the eccentric anomaly.
  const double cosE = std::cos(E), sinE = std::sin(E);
  const double r = e.semi_major_axis.value() * (1.0 - e.eccentricity * cosE);
  const double nu = std::atan2(
      std::sqrt(1.0 - e.eccentricity * e.eccentricity) * sinE,
      cosE - e.eccentricity);
  // Argument of latitude, then the same plane rotation as the circular path.
  const double u = e.arg_perigee.value() + nu;
  const double ci = std::cos(e.inclination.value());
  const double si = std::sin(e.inclination.value());
  const double cu = std::cos(u), su = std::sin(u);
  const Vec3 in_plane{r * cu, r * su * ci, r * su * si};
  return rotate_z(in_plane, e.raan.value());
}

Vec3 ecef_position(const KeplerianElements& e, util::Seconds t) noexcept {
  return eci_to_ecef(eci_position(e, t), t);
}

}  // namespace starcdn::orbit
