// Walker-delta constellation model of the Starlink 53-degree shell.
//
// The paper simulates 1,170 active satellites out of the 72-plane / 18-slot
// (=1,296 slot) Starlink Gen-1 shell at 53 degrees inclination and 550 km
// altitude. This module generates that shell (or ingests TLEs), tracks
// which slots are occupied by an active satellite, and exposes the
// (plane, slot) grid structure that both the ISL topology and the
// consistent-hashing bucket layout are built on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "orbit/elements.h"
#include "orbit/propagator.h"
#include "orbit/tle.h"
#include "orbit/vec3.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/units.h"

namespace starcdn::orbit {

/// Grid coordinate of a satellite slot. `plane` indexes the orbital plane
/// (RAAN order), `slot` the position within the plane (argument-of-latitude
/// order). Both wrap: the grid is a torus. The two coordinates are distinct
/// strong types, so transposing them no longer compiles.
struct SatelliteId {
  util::PlaneIdx plane{0};
  util::SlotIdx slot{0};

  constexpr SatelliteId() = default;
  constexpr SatelliteId(util::PlaneIdx p, util::SlotIdx s) noexcept
      : plane(p), slot(s) {}
  /// Grid literals like `{3, 5}` stay ergonomic: a (plane, slot) pair of
  /// ints is unambiguous here, and the members remain strongly typed for
  /// every read. Single ints still do not convert (no one-arg ctor).
  constexpr SatelliteId(int p, int s) noexcept
      : plane(util::PlaneIdx{p}), slot(util::SlotIdx{s}) {}

  friend bool operator==(const SatelliteId&, const SatelliteId&) = default;
};

/// Brace-friendly constructor from raw grid coordinates; the single named
/// entry point for int -> (PlaneIdx, SlotIdx).
[[nodiscard]] constexpr SatelliteId grid_id(int plane, int slot) noexcept {
  return {util::PlaneIdx{plane}, util::SlotIdx{slot}};
}

struct WalkerParams {
  int planes = 72;
  int slots_per_plane = 18;
  util::Degrees inclination{53.0};
  util::Km altitude{550.0};
  /// Walker phasing factor F: slot k of plane p leads by F*p/(P*S) orbits.
  int phase_factor = 1;
};

/// The constellation: a fixed slot grid plus per-slot elements and an
/// active/out-of-slot mask (the paper found 126/1296 slots inactive, §5.4).
class Constellation {
 public:
  /// Generate a Walker-delta shell.
  explicit Constellation(const WalkerParams& params);

  /// Build from parsed TLEs: planes are recovered by clustering RAAN, slots
  /// by sorting argument of latitude within each plane. Slots without a TLE
  /// are marked inactive.
  Constellation(const WalkerParams& grid_shape, std::span<const Tle> tles);

  [[nodiscard]] int planes() const noexcept { return params_.planes; }
  [[nodiscard]] int slots_per_plane() const noexcept {
    return params_.slots_per_plane;
  }
  [[nodiscard]] int size() const noexcept {
    return params_.planes * params_.slots_per_plane;
  }
  [[nodiscard]] const WalkerParams& params() const noexcept { return params_; }

  [[nodiscard]] util::SatId index_of(SatelliteId id) const noexcept;
  [[nodiscard]] SatelliteId id_of(util::SatId index) const noexcept;

  [[nodiscard]] bool active(SatelliteId id) const noexcept {
    return active_[util::as_index(index_of(id))];
  }
  [[nodiscard]] bool active(util::SatId index) const noexcept {
    return active_[util::as_index(index)];
  }
  [[nodiscard]] int active_count() const noexcept;

  /// Mark `fraction` of slots inactive, chosen uniformly (fault
  /// experiments, Fig. 11). Deterministic given `rng`.
  void knock_out_random(double fraction, util::Rng& rng);
  void set_active(SatelliteId id, bool active_flag) noexcept;

  [[nodiscard]] const CircularElements& elements(SatelliteId id) const noexcept {
    return elements_[util::as_index(index_of(id))];
  }

  /// Largest orbital radius (semi-major axis) over all slots; bounds the
  /// slant range any satellite of this constellation can have at a given
  /// elevation (used by VisibilityOracle's cheap reject).
  [[nodiscard]] util::Km max_orbital_radius() const noexcept {
    return max_orbital_radius_;
  }

  /// ECEF position of one satellite at time t past epoch.
  [[nodiscard]] Vec3 position_ecef(SatelliteId id, util::Seconds t) const noexcept;

  /// ECEF positions of all slots (inactive slots still get their nominal
  /// position; callers must consult `active`). Size == size().
  [[nodiscard]] std::vector<Vec3> all_positions_ecef(util::Seconds t) const;

  // --- Toroidal grid neighbours (+grid ISL endpoints) ---------------------
  [[nodiscard]] SatelliteId intra_next(SatelliteId id) const noexcept;   // ahead in orbit
  [[nodiscard]] SatelliteId intra_prev(SatelliteId id) const noexcept;   // behind in orbit
  [[nodiscard]] SatelliteId inter_east(SatelliteId id) const noexcept;   // plane + 1
  [[nodiscard]] SatelliteId inter_west(SatelliteId id) const noexcept;   // plane - 1
  /// Neighbour `dp` planes east (negative = west), same slot.
  [[nodiscard]] SatelliteId plane_offset(SatelliteId id, int dp) const noexcept;
  /// Neighbour `ds` slots ahead (negative = behind), same plane.
  [[nodiscard]] SatelliteId slot_offset(SatelliteId id, int ds) const noexcept;

  /// Minimal toroidal grid hop distance between two slots.
  [[nodiscard]] int grid_hops(SatelliteId a, SatelliteId b) const noexcept;

 private:
  void recompute_max_radius() noexcept;

  WalkerParams params_;
  std::vector<CircularElements> elements_;
  std::vector<bool> active_;
  util::Km max_orbital_radius_{0.0};
};

}  // namespace starcdn::orbit
