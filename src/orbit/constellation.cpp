#include "orbit/constellation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace starcdn::orbit {

namespace {

int wrap(int v, int n) noexcept {
  v %= n;
  return v < 0 ? v + n : v;
}

}  // namespace

Constellation::Constellation(const WalkerParams& params) : params_(params) {
  if (params.planes <= 0 || params.slots_per_plane <= 0) {
    throw std::invalid_argument("Constellation: non-positive grid shape");
  }
  const int P = params.planes;
  const int S = params.slots_per_plane;
  elements_.resize(static_cast<std::size_t>(P) * S);
  active_.assign(elements_.size(), true);
  const util::Km a = util::kEarthRadius + params.altitude;
  for (int p = 0; p < P; ++p) {
    for (int s = 0; s < S; ++s) {
      CircularElements e;
      e.semi_major_axis = a;
      e.inclination = util::to_radians(params.inclination);
      e.raan = util::Radians{2.0 * M_PI * p / P};
      // Walker-delta phasing: in-plane spacing plus per-plane phase offset.
      e.arg_latitude_epoch = util::Radians{
          2.0 * M_PI * (static_cast<double>(s) / S +
                        static_cast<double>(params.phase_factor) * p /
                            (static_cast<double>(P) * S))};
      elements_[util::as_index(index_of(grid_id(p, s)))] = e;
    }
  }
  recompute_max_radius();
}

Constellation::Constellation(const WalkerParams& grid_shape,
                             std::span<const Tle> tles)
    : Constellation(grid_shape) {
  // Slots without a matching TLE become inactive; matched slots adopt the
  // TLE's elements. Planes are recovered from RAAN, slots from argument of
  // latitude within the plane.
  active_.assign(elements_.size(), false);
  const int P = params_.planes;
  const int S = params_.slots_per_plane;
  for (const Tle& t : tles) {
    const CircularElements e = t.to_circular();
    const double raan_frac = e.raan.value() / (2.0 * M_PI);
    const int p = wrap(static_cast<int>(std::lround(raan_frac * P)), P);
    const double phase_offset =
        static_cast<double>(params_.phase_factor) * p /
        (static_cast<double>(P) * S);
    double u_frac = e.arg_latitude_epoch.value() / (2.0 * M_PI) - phase_offset;
    u_frac -= std::floor(u_frac);
    const int s = wrap(static_cast<int>(std::lround(u_frac * S)), S);
    const std::size_t idx = util::as_index(index_of(grid_id(p, s)));
    elements_[idx] = e;
    active_[idx] = true;
  }
  recompute_max_radius();
}

void Constellation::recompute_max_radius() noexcept {
  max_orbital_radius_ = util::Km{0.0};
  for (const auto& e : elements_) {
    max_orbital_radius_ = std::max(max_orbital_radius_, e.semi_major_axis);
  }
}

util::SatId Constellation::index_of(SatelliteId id) const noexcept {
  return util::SatId{id.plane.value() * params_.slots_per_plane +
                     id.slot.value()};
}

SatelliteId Constellation::id_of(util::SatId index) const noexcept {
  return grid_id(index.value() / params_.slots_per_plane,
                 index.value() % params_.slots_per_plane);
}

int Constellation::active_count() const noexcept {
  return static_cast<int>(std::count(active_.begin(), active_.end(), true));
}

void Constellation::knock_out_random(double fraction, util::Rng& rng) {
  if (fraction <= 0.0) return;
  // Clamp to the currently-active population: asking for more knockouts
  // than there are active satellites (repeated calls, or a TLE-built shell
  // with empty slots) must not spin the rejection loop forever.
  const auto target = std::min(
      static_cast<std::size_t>(
          std::llround(fraction * static_cast<double>(size()))),
      static_cast<std::size_t>(active_count()));
  std::size_t knocked = 0;
  while (knocked < target) {
    const auto idx = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(size())));
    if (active_[idx]) {
      active_[idx] = false;
      ++knocked;
    }
  }
}

void Constellation::set_active(SatelliteId id, bool active_flag) noexcept {
  active_[util::as_index(index_of(id))] = active_flag;
}

Vec3 Constellation::position_ecef(SatelliteId id,
                                  util::Seconds t) const noexcept {
  return orbit::ecef_position(elements(id), t);
}

std::vector<Vec3> Constellation::all_positions_ecef(util::Seconds t) const {
  std::vector<Vec3> out(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) {
    out[static_cast<std::size_t>(i)] =
        orbit::ecef_position(elements_[static_cast<std::size_t>(i)], t);
  }
  return out;
}

SatelliteId Constellation::intra_next(SatelliteId id) const noexcept {
  return {id.plane,
          util::SlotIdx{wrap(id.slot.value() + 1, params_.slots_per_plane)}};
}
SatelliteId Constellation::intra_prev(SatelliteId id) const noexcept {
  return {id.plane,
          util::SlotIdx{wrap(id.slot.value() - 1, params_.slots_per_plane)}};
}
SatelliteId Constellation::inter_east(SatelliteId id) const noexcept {
  return {util::PlaneIdx{wrap(id.plane.value() + 1, params_.planes)}, id.slot};
}
SatelliteId Constellation::inter_west(SatelliteId id) const noexcept {
  return {util::PlaneIdx{wrap(id.plane.value() - 1, params_.planes)}, id.slot};
}
SatelliteId Constellation::plane_offset(SatelliteId id, int dp) const noexcept {
  return {util::PlaneIdx{wrap(id.plane.value() + dp, params_.planes)}, id.slot};
}
SatelliteId Constellation::slot_offset(SatelliteId id, int ds) const noexcept {
  return {id.plane,
          util::SlotIdx{wrap(id.slot.value() + ds, params_.slots_per_plane)}};
}

int Constellation::grid_hops(SatelliteId a, SatelliteId b) const noexcept {
  const int P = params_.planes;
  const int S = params_.slots_per_plane;
  const int dp = std::abs(a.plane.value() - b.plane.value());
  const int ds = std::abs(a.slot.value() - b.slot.value());
  return std::min(dp, P - dp) + std::min(ds, S - ds);
}

}  // namespace starcdn::orbit
