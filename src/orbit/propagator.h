// Circular two-body propagation, ECI/ECEF frames, and geodetic conversion.
//
// This is the orbital-mechanics substrate that substitutes for the paper's
// use of Microsoft CosmicBeats: it produces satellite positions over time,
// ground tracks (Fig. 3), and the inputs for visibility and link-delay
// computation (Table 1).
#pragma once

#include "orbit/elements.h"
#include "orbit/vec3.h"
#include "util/geo.h"

namespace starcdn::orbit {

/// Mean motion n = sqrt(mu/a^3) in rad/s.
[[nodiscard]] double mean_motion_rad_s(const CircularElements& e) noexcept;

/// Orbital period in seconds (~5'740 s, i.e. about 95 min, for 550 km).
[[nodiscard]] double orbital_period_s(const CircularElements& e) noexcept;

/// Position in the Earth-Centered Inertial frame at `t` seconds past epoch.
[[nodiscard]] Vec3 eci_position(const CircularElements& e, double t_s) noexcept;

/// Rotate ECI -> ECEF given elapsed time (Earth rotates by w_e * t; the
/// epoch is defined with ECI and ECEF aligned, which is sufficient for a
/// self-consistent simulation).
[[nodiscard]] Vec3 eci_to_ecef(const Vec3& eci, double t_s) noexcept;

/// Satellite position directly in ECEF.
[[nodiscard]] Vec3 ecef_position(const CircularElements& e, double t_s) noexcept;

/// Geodetic (spherical-Earth) <-> ECEF for ground points at given altitude.
[[nodiscard]] Vec3 geodetic_to_ecef(const util::GeoCoord& g,
                                    double altitude_km = 0.0) noexcept;
[[nodiscard]] util::GeoCoord ecef_to_geodetic(const Vec3& ecef) noexcept;

/// Sub-satellite point (ground track sample) at time t.
[[nodiscard]] util::GeoCoord ground_track_point(const CircularElements& e,
                                                double t_s) noexcept;

// --- Elliptical (full Keplerian) propagation --------------------------------

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E
/// via Newton iteration; accurate to ~1e-12 rad for e < 0.9.
[[nodiscard]] double solve_kepler(double mean_anomaly_rad,
                                  double eccentricity) noexcept;

[[nodiscard]] double mean_motion_rad_s(const KeplerianElements& e) noexcept;

/// ECI position of an elliptical orbit at `t` seconds past epoch.
[[nodiscard]] Vec3 eci_position(const KeplerianElements& e, double t_s) noexcept;

/// ECEF position of an elliptical orbit.
[[nodiscard]] Vec3 ecef_position(const KeplerianElements& e, double t_s) noexcept;

}  // namespace starcdn::orbit
