// Circular two-body propagation, ECI/ECEF frames, and geodetic conversion.
//
// This is the orbital-mechanics substrate that substitutes for the paper's
// use of Microsoft CosmicBeats: it produces satellite positions over time,
// ground tracks (Fig. 3), and the inputs for visibility and link-delay
// computation (Table 1).
//
// Times are strong util::Seconds and angles util::Radians; Vec3 components
// are implicit km (see DESIGN.md §10 for why the vector stays raw).
#pragma once

#include "orbit/elements.h"
#include "orbit/vec3.h"
#include "util/geo.h"
#include "util/units.h"

namespace starcdn::orbit {

/// Mean motion n = sqrt(mu/a^3) in rad/s (rate composite; raw by design).
[[nodiscard]] double mean_motion_rad_s(const CircularElements& e) noexcept;

/// Orbital period (~5'740 s, i.e. about 95 min, for 550 km).
[[nodiscard]] util::Seconds orbital_period(const CircularElements& e) noexcept;

/// Position in the Earth-Centered Inertial frame at `t` past epoch.
[[nodiscard]] Vec3 eci_position(const CircularElements& e,
                                util::Seconds t) noexcept;

/// Rotate ECI -> ECEF given elapsed time (Earth rotates by w_e * t; the
/// epoch is defined with ECI and ECEF aligned, which is sufficient for a
/// self-consistent simulation).
[[nodiscard]] Vec3 eci_to_ecef(const Vec3& eci, util::Seconds t) noexcept;

/// Satellite position directly in ECEF.
[[nodiscard]] Vec3 ecef_position(const CircularElements& e,
                                 util::Seconds t) noexcept;

/// Geodetic (spherical-Earth) <-> ECEF for ground points at given altitude.
[[nodiscard]] Vec3 geodetic_to_ecef(const util::GeoCoord& g,
                                    util::Km altitude = util::Km{0.0}) noexcept;
[[nodiscard]] util::GeoCoord ecef_to_geodetic(const Vec3& ecef) noexcept;

/// Sub-satellite point (ground track sample) at time t.
[[nodiscard]] util::GeoCoord ground_track_point(const CircularElements& e,
                                                util::Seconds t) noexcept;

// --- Elliptical (full Keplerian) propagation --------------------------------

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E
/// via Newton iteration; accurate to ~1e-12 rad for e < 0.9.
[[nodiscard]] util::Radians solve_kepler(util::Radians mean_anomaly,
                                         double eccentricity) noexcept;

[[nodiscard]] double mean_motion_rad_s(const KeplerianElements& e) noexcept;

/// ECI position of an elliptical orbit at `t` past epoch.
[[nodiscard]] Vec3 eci_position(const KeplerianElements& e,
                                util::Seconds t) noexcept;

/// ECEF position of an elliptical orbit.
[[nodiscard]] Vec3 ecef_position(const KeplerianElements& e,
                                 util::Seconds t) noexcept;

}  // namespace starcdn::orbit
