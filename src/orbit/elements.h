// Keplerian orbital elements for circular LEO orbits.
//
// StarCDN models the Starlink shell as circular orbits (eccentricity of the
// operational shell is < 0.0002), so the element set reduces to semi-major
// axis, inclination, RAAN and the argument of latitude at epoch. The TLE
// parser maps general element sets onto this circular model.
//
// All angular fields are strong util::Radians and lengths are util::Km —
// constructing an element set from degrees without going through
// util::to_radians is a compile error.
#pragma once

#include "util/units.h"

namespace starcdn::orbit {

struct CircularElements {
  util::Km semi_major_axis{6921.0};  // 550 km altitude + Earth radius
  util::Radians inclination{0.0};
  util::Radians raan{0.0};  // right ascension of ascending node
  util::Radians arg_latitude_epoch{0.0};  // u0 = omega + M0, circular orbits
};

/// Full Keplerian element set for elliptical orbits (TLE fidelity path);
/// the circular model above is the fast path for the operational shell.
/// Eccentricity is dimensionless and stays a raw double.
struct KeplerianElements {
  util::Km semi_major_axis{6921.0};
  double eccentricity = 0.0;
  util::Radians inclination{0.0};
  util::Radians raan{0.0};
  util::Radians arg_perigee{0.0};
  util::Radians mean_anomaly_epoch{0.0};
};

}  // namespace starcdn::orbit
