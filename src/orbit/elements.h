// Keplerian orbital elements for circular LEO orbits.
//
// StarCDN models the Starlink shell as circular orbits (eccentricity of the
// operational shell is < 0.0002), so the element set reduces to semi-major
// axis, inclination, RAAN and the argument of latitude at epoch. The TLE
// parser maps general element sets onto this circular model.
#pragma once

namespace starcdn::orbit {

struct CircularElements {
  double semi_major_axis_km = 6921.0;  // 550 km altitude + Earth radius
  double inclination_rad = 0.0;
  double raan_rad = 0.0;            // right ascension of ascending node
  double arg_latitude_epoch_rad = 0.0;  // u0 = omega + M0 for circular orbits
};

/// Full Keplerian element set for elliptical orbits (TLE fidelity path);
/// the circular model above is the fast path for the operational shell.
struct KeplerianElements {
  double semi_major_axis_km = 6921.0;
  double eccentricity = 0.0;
  double inclination_rad = 0.0;
  double raan_rad = 0.0;
  double arg_perigee_rad = 0.0;
  double mean_anomaly_epoch_rad = 0.0;
};

}  // namespace starcdn::orbit
