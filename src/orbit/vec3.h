// Plain 3-vector math for orbital geometry. Kept header-only and constexpr-
// friendly; no external linear-algebra dependency is warranted for the
// handful of operations the propagator needs.
#pragma once

#include <cmath>

namespace starcdn::orbit {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double k) const noexcept {
    return {x * k, y * k, z * k};
  }
  constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const noexcept { return std::sqrt(dot(*this)); }
  Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

[[nodiscard]] inline double distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).norm();
}

/// Rotate `v` about the +z axis by `angle_rad` (counter-clockwise looking
/// down +z). Used for both RAAN placement and ECI->ECEF Earth rotation.
[[nodiscard]] inline Vec3 rotate_z(const Vec3& v, double angle_rad) noexcept {
  const double c = std::cos(angle_rad), s = std::sin(angle_rad);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

}  // namespace starcdn::orbit
