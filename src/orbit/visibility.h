// Ground-to-satellite visibility: which satellites a user terminal or
// ground station can see above its elevation mask.
//
// Starlink user terminals require roughly 25 degrees of elevation; at
// 550 km this yields the "10+ satellites in view" property the paper relies
// on (§3.1.2) and defines the first-contact candidate set for the link
// scheduler.
#pragma once

#include <vector>

#include "orbit/constellation.h"
#include "orbit/vec3.h"
#include "util/geo.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::orbit {

/// Elevation angle of a satellite at `sat_ecef` as seen from the ground
/// point `ground_ecef`; negative when below the horizon.
[[nodiscard]] util::Degrees elevation(const Vec3& ground_ecef,
                                      const Vec3& sat_ecef) noexcept;

/// Slant range between a ground point and a satellite.
[[nodiscard]] util::Km slant_range(const Vec3& ground_ecef,
                                   const Vec3& sat_ecef) noexcept;

/// Maximum slant range at which a satellite on an orbit of radius
/// `orbit_radius` can sit at or above `min_elevation` as seen from a
/// ground point `ground_radius` from the geocentre:
///   sqrt(r^2 - (R cos el)^2) - R sin el.
/// Any satellite farther away is guaranteed below the mask.
[[nodiscard]] util::Km horizon_slant_range(util::Km orbit_radius,
                                           util::Km ground_radius,
                                           util::Degrees min_elevation) noexcept;

struct VisibleSat {
  util::SatId sat = util::SatId{0};  // linear index into the constellation
  util::Degrees elevation{0.0};
  util::Km range{0.0};
};

/// Computes per-ground-point visible sets against a position snapshot.
class VisibilityOracle {
 public:
  explicit VisibilityOracle(
      util::Degrees min_elevation = util::Degrees{25.0}) noexcept
      : min_elevation_(min_elevation) {}

  [[nodiscard]] util::Degrees min_elevation() const noexcept {
    return min_elevation_;
  }

  /// All active satellites above the mask, sorted by descending elevation
  /// (best first-contact candidate first).
  [[nodiscard]] std::vector<VisibleSat> visible(
      const util::GeoCoord& ground, const Constellation& constellation,
      const std::vector<Vec3>& sat_positions_ecef) const;

  /// Same, from a precomputed ground ECEF point — callers scanning many
  /// epochs for a fixed city should convert once and use this entry point.
  /// (Named, not overloaded: {lat, lon} braces would be ambiguous with
  /// GeoCoord otherwise.)
  [[nodiscard]] std::vector<VisibleSat> visible_from_ecef(
      const Vec3& ground_ecef, const Constellation& constellation,
      const std::vector<Vec3>& sat_positions_ecef) const;

 private:
  util::Degrees min_elevation_;
};

}  // namespace starcdn::orbit
