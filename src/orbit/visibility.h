// Ground-to-satellite visibility: which satellites a user terminal or
// ground station can see above its elevation mask.
//
// Starlink user terminals require roughly 25 degrees of elevation; at
// 550 km this yields the "10+ satellites in view" property the paper relies
// on (§3.1.2) and defines the first-contact candidate set for the link
// scheduler.
#pragma once

#include <vector>

#include "orbit/constellation.h"
#include "orbit/vec3.h"
#include "util/geo.h"

namespace starcdn::orbit {

/// Elevation angle (degrees) of a satellite at `sat_ecef` as seen from the
/// ground point `ground_ecef`; negative when below the horizon.
[[nodiscard]] double elevation_deg(const Vec3& ground_ecef,
                                   const Vec3& sat_ecef) noexcept;

/// Slant range in km between a ground point and a satellite.
[[nodiscard]] double slant_range_km(const Vec3& ground_ecef,
                                    const Vec3& sat_ecef) noexcept;

/// Maximum slant range (km) at which a satellite on an orbit of radius
/// `orbit_radius_km` can sit at or above `elevation_deg` as seen from a
/// ground point `ground_radius_km` from the geocentre:
///   sqrt(r^2 - (R cos el)^2) - R sin el.
/// Any satellite farther away is guaranteed below the mask.
[[nodiscard]] double horizon_slant_range_km(double orbit_radius_km,
                                            double ground_radius_km,
                                            double elevation_deg) noexcept;

struct VisibleSat {
  int sat_index = 0;       // linear index into the constellation
  double elevation_deg = 0.0;
  double range_km = 0.0;
};

/// Computes per-ground-point visible sets against a position snapshot.
class VisibilityOracle {
 public:
  explicit VisibilityOracle(double min_elevation_deg = 25.0) noexcept
      : min_elevation_deg_(min_elevation_deg) {}

  [[nodiscard]] double min_elevation_deg() const noexcept {
    return min_elevation_deg_;
  }

  /// All active satellites above the mask, sorted by descending elevation
  /// (best first-contact candidate first).
  [[nodiscard]] std::vector<VisibleSat> visible(
      const util::GeoCoord& ground, const Constellation& constellation,
      const std::vector<Vec3>& sat_positions_ecef) const;

  /// Same, from a precomputed ground ECEF point — callers scanning many
  /// epochs for a fixed city should convert once and use this entry point.
  /// (Named, not overloaded: {lat, lon} braces would be ambiguous with
  /// GeoCoord otherwise.)
  [[nodiscard]] std::vector<VisibleSat> visible_from_ecef(
      const Vec3& ground_ecef, const Constellation& constellation,
      const std::vector<Vec3>& sat_positions_ecef) const;

 private:
  double min_elevation_deg_;
};

}  // namespace starcdn::orbit
