// Message-driven cluster replayer (§5.1).
//
// The paper's evaluation harness spawns one cache process per satellite and
// mimics ISLs with TCP. This module reproduces that architecture: each
// satellite runs as a worker thread owning its cache and speaking the
// net/codec wire protocol over a Channel; an orchestrator replays a trace
// by issuing Request/RelayProbe/Admit messages along the StarCDN pipeline
// (consistent hashing -> owner -> relayed fetch -> ground). Two transports
// are provided: in-process queues (fast, deterministic) and real TCP
// loopback sockets (faithful to the paper's setup). Both produce
// bit-identical results — asserted by the integration tests.
#pragma once

#include <cstdint>

#include "cache/cache.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/record.h"
#include "trace/stream.h"

namespace starcdn::replay {

enum class TransportKind : std::uint8_t { kInProcess, kTcp };

struct ReplayConfig {
  cache::Policy policy = cache::Policy::kLru;
  util::Bytes cache_capacity = util::gib(1);
  int buckets = 4;
  bool relay_east = true;
  TransportKind transport = TransportKind::kInProcess;
  int users_per_city = 64;
  /// Mean-object-size hint used to pre-size each worker's cache slab
  /// (capacity / hint resident objects); 0 disables pre-sizing.
  util::Bytes mean_object_size_hint = util::mib(16);
};

struct ReplayReport {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;        // served from any satellite cache
  std::uint64_t relay_hits = 0;  // subset of hits served via relayed fetch
  std::uint64_t misses = 0;
  util::Bytes uplink_bytes = 0;

  [[nodiscard]] double request_hit_rate() const noexcept {
    return requests ? static_cast<double>(hits) / static_cast<double>(requests)
                    : 0.0;
  }
  friend bool operator==(const ReplayReport&, const ReplayReport&) = default;
};

/// Replay a chunked time-ordered stream through a per-satellite worker
/// cluster with O(chunk) trace memory. Throws std::runtime_error on
/// transport failures.
[[nodiscard]] ReplayReport replay_cluster(
    const orbit::Constellation& constellation,
    const sched::LinkSchedule& schedule, trace::RequestStream& stream,
    const ReplayConfig& config);

/// Replay `requests` (time-ordered) through a per-satellite worker cluster.
/// Identical results to the stream overload on the same requests.
[[nodiscard]] ReplayReport replay_cluster(
    const orbit::Constellation& constellation,
    const sched::LinkSchedule& schedule,
    const std::vector<trace::Request>& requests, const ReplayConfig& config);

}  // namespace starcdn::replay
