#include "replay/replayer.h"

#include <memory>
#include <thread>
#include <vector>

#include "core/bucket_mapper.h"
#include "net/transport.h"
#include "obs/prof.h"
#include "obs/tracer.h"
#include "util/hash.h"
#include "util/ids.h"

namespace starcdn::replay {

namespace {

using net::Channel;
using net::Message;
using net::MessageType;

constexpr std::uint32_t kShutdownFlag = 1u << 1;

/// Worker: one satellite's cache server. Speaks the wire protocol until a
/// shutdown control message arrives.
void worker_loop(std::uint32_t node_id, Channel& channel,
                 const ReplayConfig& config) {
  const auto cache = cache::make_cache(
      config.policy, config.cache_capacity,
      cache::presize_hint(config.cache_capacity,
                          config.mean_object_size_hint));
  for (;;) {
    const auto msg = channel.recv();
    if (!msg) return;  // orchestrator closed the channel
    Message reply;
    reply.src = node_id;
    reply.dst = msg->src;
    reply.object_id = msg->object_id;
    reply.size_bytes = msg->size_bytes;
    reply.request_id = msg->request_id;
    switch (msg->type) {
      case MessageType::kRequest:
        // Owner-path access: touch (hit) without admitting on miss — the
        // orchestrator decides the fill source first.
        reply.type = MessageType::kResponse;
        if (cache->touch(msg->object_id)) reply.flags |= net::kFlagHit;
        channel.send(reply);
        break;
      case MessageType::kRelayProbe:
        // Side-effect-free probe of a neighbour replica.
        reply.type = MessageType::kRelayReply;
        if (cache->peek(msg->object_id)) reply.flags |= net::kFlagHit;
        channel.send(reply);
        break;
      case MessageType::kGroundReply:
        // Fill directive: object arrived (from replica or ground); admit.
        cache->admit(msg->object_id, msg->size_bytes);
        break;
      case MessageType::kControl:
        if (msg->flags & kShutdownFlag) return;
        break;
      default:
        break;  // ignore unexpected traffic rather than wedging the cluster
    }
  }
}

struct Cluster {
  std::vector<std::unique_ptr<Channel>> channels;  // orchestrator side
  std::vector<std::thread> threads;

  Cluster() = default;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;

  ~Cluster() {
    for (auto& ch : channels) {
      if (ch) ch->close();
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

Cluster spawn_cluster(int n_nodes, const ReplayConfig& config) {
  Cluster cluster;
  cluster.channels.resize(static_cast<std::size_t>(n_nodes));
  if (config.transport == TransportKind::kInProcess) {
    for (int i = 0; i < n_nodes; ++i) {
      auto [orch_end, node_end] = net::make_inproc_pair();
      cluster.channels[static_cast<std::size_t>(i)] = std::move(orch_end);
      cluster.threads.emplace_back(
          [i, &config, node = std::shared_ptr<Channel>(std::move(node_end))] {
            worker_loop(static_cast<std::uint32_t>(i), *node, config);
          });
    }
  } else {
    // TCP mode: workers dial the orchestrator's loopback listener and
    // identify themselves with a control hello (paper setup: per-satellite
    // processes over TCP; threads here, same wire behaviour).
    net::TcpListener listener(0);
    const std::uint16_t port = listener.port();
    for (int i = 0; i < n_nodes; ++i) {
      cluster.threads.emplace_back([i, port, &config] {
        auto ch = net::TcpChannel::connect("127.0.0.1", port);
        Message hello;
        hello.type = MessageType::kControl;
        hello.src = static_cast<std::uint32_t>(i);
        ch->send(hello);
        worker_loop(static_cast<std::uint32_t>(i), *ch, config);
      });
    }
    for (int i = 0; i < n_nodes; ++i) {
      auto ch = listener.accept();
      const auto hello = ch->recv();
      if (!hello || hello->type != MessageType::kControl) {
        throw std::runtime_error("replay: bad hello from worker");
      }
      cluster.channels[hello->src] = std::move(ch);
    }
  }
  return cluster;
}

/// Blocking RPC helper: send and await the matching reply.
Message rpc(Channel& ch, const Message& m) {
  ch.send(m);
  for (;;) {
    auto reply = ch.recv();
    if (!reply) throw std::runtime_error("replay: worker died mid-RPC");
    if (reply->request_id == m.request_id) return *reply;
  }
}

}  // namespace

ReplayReport replay_cluster(const orbit::Constellation& constellation,
                            const sched::LinkSchedule& schedule,
                            trace::RequestStream& stream,
                            const ReplayConfig& config) {
  STARCDN_PROF_SCOPE("replay_cluster");
  const obs::TraceSpan span(
      obs::tracer(), "replay_cluster", "replay",
      {obs::arg("requests", stream.size_hint().value_or(0)),
       obs::arg("nodes", static_cast<std::int64_t>(constellation.size()))});
  const core::BucketMapper mapper(constellation, config.buckets);
  Cluster cluster = [&] {
    STARCDN_PROF_SCOPE("replay_cluster::spawn");
    const obs::TraceSpan spawn_span(obs::tracer(), "spawn_cluster", "replay");
    return spawn_cluster(constellation.size(), config);
  }();

  ReplayReport report;
  std::uint64_t request_counter = 0;
  std::uint64_t rpc_id = 0;
  const auto channel_of = [&](orbit::SatelliteId id) -> Channel& {
    return *cluster.channels[util::as_index(constellation.index_of(id))];
  };

  const auto process = [&](const trace::Request& r) {
    ++report.requests;
    const util::EpochIdx epoch =
        schedule.epoch_of(util::Seconds{r.timestamp_s});
    const std::uint64_t user =
        util::splitmix64(request_counter++) %
        static_cast<std::uint64_t>(config.users_per_city);
    const auto fc =
        schedule.first_contact(epoch, util::CityId{r.location}, user);
    if (fc.sat.value() < 0) {
      ++report.misses;
      report.uplink_bytes += r.size;
      return;
    }
    const auto fc_id = constellation.id_of(fc.sat);
    const util::BucketId bucket = mapper.bucket_of_object(r.object);
    const auto owner = mapper.owner(fc_id, bucket);
    const orbit::SatelliteId serving = owner.value_or(fc_id);

    Message req;
    req.type = MessageType::kRequest;
    req.object_id = r.object;
    req.size_bytes = r.size;
    req.request_id = ++rpc_id;
    const Message resp = rpc(channel_of(serving), req);
    if (resp.flags & net::kFlagHit) {
      ++report.hits;
      return;
    }

    // Relayed fetch: probe same-bucket west then east replicas.
    bool relayed = false;
    for (const auto& replica :
         {mapper.west_replica(serving),
          config.relay_east ? mapper.east_replica(serving) : std::nullopt}) {
      if (!replica) continue;
      Message probe;
      probe.type = MessageType::kRelayProbe;
      probe.object_id = r.object;
      probe.size_bytes = r.size;
      probe.request_id = ++rpc_id;
      const Message reply = rpc(channel_of(*replica), probe);
      if (reply.flags & net::kFlagHit) {
        relayed = true;
        break;
      }
    }
    if (!relayed) report.uplink_bytes += r.size;  // origin fetch

    // Fill the owner either way (from the replica or from the ground).
    Message fill;
    fill.type = MessageType::kGroundReply;
    fill.object_id = r.object;
    fill.size_bytes = r.size;
    fill.flags = relayed ? net::kFlagHit : 0;
    channel_of(serving).send(fill);
    if (relayed) {
      ++report.hits;
      ++report.relay_hits;
    } else {
      ++report.misses;
    }
  };

  trace::RequestBlock block;
  while (stream.next(block)) {
    for (std::size_t i = 0; i < block.count(); ++i) process(block.at(i));
  }

  // Graceful shutdown so worker caches drain deterministically.
  STARCDN_PROF_SCOPE("replay_cluster::shutdown");
  const obs::TraceSpan bye_span(obs::tracer(), "cluster_shutdown", "replay");
  for (auto& ch : cluster.channels) {
    Message bye;
    bye.type = MessageType::kControl;
    bye.flags = kShutdownFlag;
    ch->send(bye);
  }
  return report;
}

ReplayReport replay_cluster(const orbit::Constellation& constellation,
                            const sched::LinkSchedule& schedule,
                            const std::vector<trace::Request>& requests,
                            const ReplayConfig& config) {
  trace::VectorStream stream(requests);
  return replay_cluster(constellation, schedule, stream, config);
}

}  // namespace starcdn::replay
