#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/prof.h"
#include "obs/tracer.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/units.h"

namespace starcdn::sched {

LinkSchedule::LinkSchedule(const orbit::Constellation& constellation,
                           const std::vector<util::City>& cities,
                           util::Seconds duration,
                           const SchedulerParams& params)
    : params_(params), n_cities_(cities.size()) {
  STARCDN_PROF_SCOPE("LinkSchedule::build");
  epochs_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(duration / params.epoch)));
  const obs::TraceSpan span(
      obs::tracer(), "LinkSchedule::build", "sched",
      {obs::arg("epochs", static_cast<std::uint64_t>(epochs_)),
       obs::arg("cities", static_cast<std::uint64_t>(n_cities_))});
  table_.resize(epochs_ * n_cities_);
  const orbit::VisibilityOracle oracle(params.min_elevation);
  // City ECEF points are epoch-invariant: convert once instead of inside
  // every visibility scan.
  std::vector<orbit::Vec3> city_ecef(n_cities_);
  for (std::size_t c = 0; c < n_cities_; ++c) {
    city_ecef[c] = orbit::geodetic_to_ecef(cities[c].coord);
  }
  // Epochs are independent: each worker propagates its epoch's satellite
  // positions and fills that epoch's pre-sized table slots. Static chunking
  // plus disjoint writes keep the table bitwise identical for any thread
  // count.
  util::parallel_for(epochs_, [&](std::size_t e) {
    const util::Seconds t = static_cast<double>(e) * params_.epoch;
    const auto positions = constellation.all_positions_ecef(t);
    for (std::size_t c = 0; c < n_cities_; ++c) {
      const auto visible = oracle.visible_from_ecef(city_ecef[c],
                                                    constellation, positions);
      auto& cell = table_[e * n_cities_ + c];
      const std::size_t k = std::min<std::size_t>(
          visible.size(),
          static_cast<std::size_t>(params_.candidates_per_cell));
      cell.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        cell.push_back(
            {visible[i].sat,
             static_cast<float>(
                 util::propagation_delay(visible[i].range).value())});
      }
    }
  });
}

util::EpochIdx LinkSchedule::epoch_of(util::Seconds t) const noexcept {
  const auto e = static_cast<std::size_t>(std::max(0.0, t.value()) /
                                          params_.epoch.value());
  return util::EpochIdx{std::min(e, epochs_ - 1)};
}

Candidate LinkSchedule::first_contact(util::EpochIdx epoch, util::CityId city,
                                      std::uint64_t user_id) const noexcept {
  const auto& cell = candidates(epoch, city);
  if (cell.empty()) return {};
  // Hash (user, epoch) so each user sticks to one satellite within an epoch
  // but the population reshuffles when the scheduler reconfigures.
  const std::uint64_t h = util::hash_combine(
      util::splitmix64(user_id),
      util::splitmix64(epoch.value() * 1315423911ULL));
  return cell[h % cell.size()];
}

double LinkSchedule::mean_candidates() const noexcept {
  if (table_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& cell : table_) total += static_cast<double>(cell.size());
  return total / static_cast<double>(table_.size());
}

}  // namespace starcdn::sched
