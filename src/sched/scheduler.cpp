#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/units.h"

namespace starcdn::sched {

LinkSchedule::LinkSchedule(const orbit::Constellation& constellation,
                           const std::vector<util::City>& cities,
                           double duration_s, const SchedulerParams& params)
    : params_(params), n_cities_(cities.size()) {
  epochs_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(duration_s / params.epoch_s)));
  table_.resize(epochs_ * n_cities_);
  const orbit::VisibilityOracle oracle(params.min_elevation_deg);
  for (std::size_t e = 0; e < epochs_; ++e) {
    const double t = static_cast<double>(e) * params.epoch_s;
    const auto positions = constellation.all_positions_ecef(t);
    for (std::size_t c = 0; c < n_cities_; ++c) {
      const auto visible = oracle.visible(cities[c].coord, constellation,
                                          positions);
      auto& cell = table_[e * n_cities_ + c];
      const std::size_t k = std::min<std::size_t>(
          visible.size(), static_cast<std::size_t>(params.candidates_per_cell));
      cell.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        cell.push_back(
            {visible[i].sat_index,
             static_cast<float>(util::propagation_delay_ms(visible[i].range_km))});
      }
    }
  }
}

std::size_t LinkSchedule::epoch_of(double t_s) const noexcept {
  const auto e = static_cast<std::size_t>(std::max(0.0, t_s) / params_.epoch_s);
  return std::min(e, epochs_ - 1);
}

Candidate LinkSchedule::first_contact(std::size_t epoch, std::size_t city,
                                      std::uint64_t user_id) const noexcept {
  const auto& cell = candidates(epoch, city);
  if (cell.empty()) return {};
  // Hash (user, epoch) so each user sticks to one satellite within an epoch
  // but the population reshuffles when the scheduler reconfigures.
  const std::uint64_t h = util::hash_combine(
      util::splitmix64(user_id), util::splitmix64(epoch * 1315423911ULL));
  return cell[h % cell.size()];
}

double LinkSchedule::mean_candidates() const noexcept {
  if (table_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& cell : table_) total += static_cast<double>(cell.size());
  return total / static_cast<double>(table_.size());
}

}  // namespace starcdn::sched
