// User-to-satellite link scheduling (the Starlink scheduler model).
//
// Starlink reassigns user terminals to satellites every 15 seconds (§3.1.2,
// [51]); at any instant a user sees 10+ candidate satellites. We model this
// as discrete epochs: per (epoch, city) we precompute the top-K visible
// satellites, and each logical user of that city is hashed onto one of
// them for the duration of the epoch. Precomputing the schedule once lets
// every simulator variant and cache configuration replay the same orbital
// dynamics without recomputing geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "orbit/constellation.h"
#include "orbit/visibility.h"
#include "util/geo.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::sched {

struct Candidate {
  util::SatId sat = util::kNoSat;
  /// One-way GSL delay from the slant range at epoch start. Intentionally a
  /// raw float, not util::Millis: the schedule table is the simulator's
  /// largest resident structure and the paper's precision needs fit in 32
  /// bits (see DESIGN.md §10). Widen via Millis{candidate.gsl_one_way_ms}.
  float gsl_one_way_ms = 0.0F;
};

struct SchedulerParams {
  util::Seconds epoch{15.0};       // Starlink reconfigure interval
  util::Degrees min_elevation{25.0};
  int candidates_per_cell = 10;    // top-K satellites kept per (epoch, city)
  int users_per_city = 64;         // logical user terminals per city
};

/// Precomputed link schedule over a time horizon.
class LinkSchedule {
 public:
  LinkSchedule(const orbit::Constellation& constellation,
               const std::vector<util::City>& cities, util::Seconds duration,
               const SchedulerParams& params = {});

  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] util::Seconds epoch_duration() const noexcept {
    return params_.epoch;
  }
  [[nodiscard]] const SchedulerParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] util::EpochIdx epoch_of(util::Seconds t) const noexcept;

  /// Candidate set for a city at an epoch (possibly empty during a
  /// coverage gap).
  [[nodiscard]] const std::vector<Candidate>& candidates(
      util::EpochIdx epoch, util::CityId city) const noexcept {
    return table_[epoch.value() * n_cities_ + city.value()];
  }

  /// First-contact satellite for a logical user, stable within an epoch and
  /// re-randomized across epochs (the scheduler's 15 s reshuffle).
  [[nodiscard]] Candidate first_contact(util::EpochIdx epoch,
                                        util::CityId city,
                                        std::uint64_t user_id) const noexcept;

  /// Mean number of visible satellites across cells (sanity statistic; the
  /// paper quotes "10+ satellites in view").
  [[nodiscard]] double mean_candidates() const noexcept;

 private:
  SchedulerParams params_;
  std::size_t n_cities_ = 0;
  std::size_t epochs_ = 0;
  std::vector<std::vector<Candidate>> table_;  // [epoch * n_cities + city]
};

}  // namespace starcdn::sched
