// Zero-overhead strong typedefs: the compiler as the unit/ID linter.
//
// The simulator's hot math is geometry — degrees vs radians, km vs ms,
// satellite vs city indices — and a silent mix-up corrupts every latency
// and hit-rate figure downstream (§5). `Strong<Tag, Rep>` wraps a scalar in
// a distinct type so those mixes fail to compile, at zero runtime cost:
// every member is a one-liner the optimizer collapses to the bare scalar
// (bench_micro before/after in EXPERIMENTS.md confirms a ~0% delta).
//
// Two opt-in capability bases control which operations a tag admits:
//
//   * `UnitTag`  — dimensioned quantities (Km, Millis, Radians, ...):
//     same-type +/-, scalar * and /, unit/unit ratio, compound assignment.
//     Cross-unit arithmetic never compiles; conversions live as named
//     functions in units.h (`to_radians`, `propagation_delay`, ...).
//   * `IndexTag` — ordinal identifiers (SatId, CityId, BucketId, ...):
//     equality/ordering, ++/--, and hashing only. No arithmetic between
//     two ids and no implicit use of one id family as another.
//
// Both families are explicit-construction-only and expose the scalar via
// `.value()`. Raw escapes are deliberate and local: subscripting a vector
// or calling into generic math (`std::sin`, stats sinks) names the unwrap
// at the call site, which is exactly where a reviewer wants to see it.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <type_traits>

namespace starcdn::util {

/// Capability base: tags deriving from UnitTag get quantity arithmetic.
struct UnitTag {};
/// Capability base: tags deriving from IndexTag get increment/decrement.
struct IndexTag {};

template <class Tag, class Rep>
class Strong {
 public:
  using rep = Rep;
  using tag = Tag;

  constexpr Strong() noexcept = default;
  constexpr explicit Strong(Rep v) noexcept : v_(v) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  // --- Comparison (all tags) ----------------------------------------------
  [[nodiscard]] friend constexpr bool operator==(Strong a, Strong b) noexcept {
    return a.v_ == b.v_;
  }
  [[nodiscard]] friend constexpr auto operator<=>(Strong a, Strong b) noexcept {
    return a.v_ <=> b.v_;
  }
  // Direct relational overloads beat the <=> rewrite in overload
  // resolution. For floating reps the rewrite goes through
  // std::partial_ordering, which the optimizer does not always collapse
  // back to one branch in hot loops (measured ~15% on the visibility
  // sweep); these compile to the bare scalar compare.
  [[nodiscard]] friend constexpr bool operator<(Strong a, Strong b) noexcept {
    return a.v_ < b.v_;
  }
  [[nodiscard]] friend constexpr bool operator>(Strong a, Strong b) noexcept {
    return a.v_ > b.v_;
  }
  [[nodiscard]] friend constexpr bool operator<=(Strong a, Strong b) noexcept {
    return a.v_ <= b.v_;
  }
  [[nodiscard]] friend constexpr bool operator>=(Strong a, Strong b) noexcept {
    return a.v_ >= b.v_;
  }

  // --- Quantity arithmetic (UnitTag only) ---------------------------------
  [[nodiscard]] friend constexpr Strong operator+(Strong a, Strong b) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{a.v_ + b.v_};
  }
  [[nodiscard]] friend constexpr Strong operator-(Strong a, Strong b) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{a.v_ - b.v_};
  }
  [[nodiscard]] constexpr Strong operator-() const noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{-v_};
  }
  [[nodiscard]] friend constexpr Strong operator*(Strong a, Rep s) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{a.v_ * s};
  }
  [[nodiscard]] friend constexpr Strong operator*(Rep s, Strong a) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{s * a.v_};
  }
  [[nodiscard]] friend constexpr Strong operator/(Strong a, Rep s) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return Strong{a.v_ / s};
  }
  /// Ratio of two like quantities is a dimensionless scalar.
  [[nodiscard]] friend constexpr Rep operator/(Strong a, Strong b) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    return a.v_ / b.v_;
  }
  constexpr Strong& operator+=(Strong o) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    v_ += o.v_;
    return *this;
  }
  constexpr Strong& operator-=(Strong o) noexcept
    requires std::is_base_of_v<UnitTag, Tag>
  {
    v_ -= o.v_;
    return *this;
  }

  // --- Ordinal stepping (IndexTag only) -----------------------------------
  constexpr Strong& operator++() noexcept
    requires std::is_base_of_v<IndexTag, Tag>
  {
    ++v_;
    return *this;
  }
  constexpr Strong operator++(int) noexcept
    requires std::is_base_of_v<IndexTag, Tag>
  {
    Strong old = *this;
    ++v_;
    return old;
  }
  constexpr Strong& operator--() noexcept
    requires std::is_base_of_v<IndexTag, Tag>
  {
    --v_;
    return *this;
  }

 private:
  Rep v_{};
};

}  // namespace starcdn::util

/// Hashing forwards to the representation's hash, so a strong id keys an
/// unordered container exactly like its raw scalar would (identical bucket
/// layout and iteration order — required for bitwise-stable statistics).
template <class Tag, class Rep>
struct std::hash<starcdn::util::Strong<Tag, Rep>> {
  [[nodiscard]] std::size_t operator()(
      starcdn::util::Strong<Tag, Rep> v) const noexcept {
    return std::hash<Rep>{}(v.value());
  }
};
