#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace starcdn::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
}

void Histogram::add(double x, double weight) {
  const double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(bins());
  const auto idx = static_cast<std::ptrdiff_t>(std::floor(pos));
  const std::size_t clamped = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0,
                                 static_cast<std::ptrdiff_t>(bins()) - 1));
  counts_[clamped] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> out = pmf();
  double acc = 0.0;
  for (auto& v : out) {
    acc += v;
    v = acc;
  }
  return out;
}

double Histogram::tv_distance(const Histogram& other) const {
  if (other.bins() != bins()) {
    throw std::invalid_argument("tv_distance: histogram binning mismatch");
  }
  const auto a = pmf();
  const auto b = other.pmf();
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d / 2.0;
}

}  // namespace starcdn::util
