#include "util/stats.h"

#include <cmath>

#include "util/hash.h"

namespace starcdn::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void QuantileSampler::add(double x) {
  ++total_;
  if (max_samples_ == 0 || samples_.size() < max_samples_) {
    samples_.push_back(x);
  } else {
    // Algorithm R reservoir sampling with an internal splitmix stream so the
    // sampler stays deterministic without threading an Rng through metrics.
    reservoir_state_ = splitmix64(reservoir_state_ + total_);
    const std::size_t slot = reservoir_state_ % total_;
    if (slot < max_samples_) samples_[slot] = x;
  }
  sorted_ = false;
}

void QuantileSampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileSampler::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double QuantileSampler::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  const double denom = sa.stddev() * sb.stddev();
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace starcdn::util
