// Process memory introspection for the bounded-memory streaming contract:
// the bench harness prints (and optionally asserts a budget on) the peak
// resident set after a paper-scale streamed replay.
#pragma once

#include <cstdint>

namespace starcdn::util {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss);
/// 0 when the platform does not report it.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace starcdn::util
