// Deterministic, seedable hash primitives used across StarCDN.
//
// CDN-style consistent hashing needs hashes that are (a) stable across runs
// and platforms — std::hash gives no such guarantee — and (b) well mixed so
// that bucket assignment (object id mod L after mixing) is uniform. We use
// splitmix64 as the canonical 64-bit mixer and FNV-1a for byte strings.
#pragma once

#include <cstdint>
#include <string_view>

namespace starcdn::util {

/// Finalizing mixer from the splitmix64 generator (Vigna). Bijective on
/// uint64, excellent avalanche behaviour; the standard choice for hashing
/// already-numeric ids.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string. Stable across platforms, good enough for
/// object-key hashing; pass the result through splitmix64 when low bits are
/// used directly (e.g. `% buckets`).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two hashes (boost::hash_combine style, 64-bit variant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace starcdn::util
