// Fixed-bin histogram used for spread distributions (Fig. 6a/6b) and
// latency buckets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace starcdn::util {

/// Linear-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Probability mass per bin (sums to 1 when total > 0).
  [[nodiscard]] std::vector<double> pmf() const;
  /// Cumulative distribution at the upper edge of each bin.
  [[nodiscard]] std::vector<double> cdf() const;

  /// Total-variation distance to another histogram with identical binning;
  /// 0 = identical, 1 = disjoint. Used by trace fidelity tests.
  [[nodiscard]] double tv_distance(const Histogram& other) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace starcdn::util
