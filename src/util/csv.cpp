#include "util/csv.h"

#include <stdexcept>

namespace starcdn::util {

namespace {

bool needs_quoting(std::string_view f) {
  return f.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string escape(std::string_view f) {
  if (!needs_quoting(f)) return std::string(f);
  std::string out = "\"";
  for (const char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace starcdn::util
