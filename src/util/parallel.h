// Deterministic parallel execution substrate.
//
// A single process-wide thread pool plus `parallel_for` with *static*
// contiguous chunking: [0, n) is split into `threads` equal slices, so the
// mapping from index to chunk depends only on (n, threads) — never on
// scheduling order. Every call site writes results into pre-sized,
// per-index slots, which makes the whole simulator bitwise reproducible for
// any thread count (see DESIGN.md, "Parallel execution engine").
//
// The worker count defaults to std::thread::hardware_concurrency and can be
// overridden by the STARCDN_THREADS environment variable (checked once at
// startup) or programmatically via set_parallel_threads (used by the
// determinism tests). STARCDN_THREADS=1 runs every parallel_for inline on
// the calling thread.
//
// Nested parallel_for calls (e.g. a parallel bench sweep whose points each
// run a parallel simulation) execute inline on the worker: the pool never
// deadlocks on recursive submission, and the inner loop simply stays serial.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace starcdn::util {

/// Reusable fixed-size pool of worker threads draining a shared task queue.
/// Most callers want `parallel_for` instead of submitting tasks directly.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept;

  /// Enqueue a task for execution on some worker. Fire-and-forget: use
  /// parallel_for for fork-join semantics.
  void submit(std::function<void()> task);

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide pool backing parallel_for; created on first use.
[[nodiscard]] ThreadPool& global_pool();

/// Effective chunk/worker count for parallel_for: the programmatic override
/// if set, else STARCDN_THREADS, else hardware_concurrency (min 1).
[[nodiscard]] int parallel_threads() noexcept;

/// Override the chunk count used by subsequent parallel_for calls; n <= 0
/// restores the environment/hardware default. Intended for tests and for
/// serial-vs-parallel bench comparisons.
void set_parallel_threads(int n) noexcept;

/// Parse a STARCDN_THREADS-style value; returns 0 (meaning "default") for
/// null, empty, non-numeric, or non-positive strings. Exposed for tests.
[[nodiscard]] int parse_thread_count(const char* text) noexcept;

/// Run body(begin, end) over [0, n) split into `threads` static contiguous
/// chunks (threads == 0 uses parallel_threads()). Blocks until every chunk
/// finished; the first exception thrown by any chunk is rethrown here.
/// Called from a pool worker, runs inline (serial) to avoid deadlock.
void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    int threads = 0);

/// Element-wise convenience wrapper: body(i) for every i in [0, n), with the
/// same static chunking and exception semantics as parallel_for_chunks.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, int threads = 0) {
  parallel_for_chunks(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      threads);
}

}  // namespace starcdn::util
