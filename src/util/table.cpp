#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/csv.h"

namespace starcdn::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : header_[c];
      os << (c ? " | " : "") << cell
         << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c ? 3 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  os.flush();
}

void TextTable::write_csv(const std::string& path) const {
  try {
    CsvWriter w(path);
    w.row(header_);
    for (const auto& r : rows_) w.row(r);
  } catch (...) {
    // Best-effort: bench output to stdout is the primary artifact.
  }
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace starcdn::util
