#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace starcdn::util {

namespace {

thread_local bool tls_on_pool_worker = false;

std::atomic<int> g_thread_override{0};

int hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_threads() noexcept {
  static const int cached = parse_thread_count(std::getenv("STARCDN_THREADS"));
  return cached;
}

}  // namespace

int parse_thread_count(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || (end != nullptr && *end != '\0')) return 0;
  if (v <= 0 || v > 4096) return 0;
  return static_cast<int>(v);
}

int parallel_threads() noexcept {
  const int override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const int env = env_threads();
  if (env > 0) return env;
  return hardware_threads();
}

void set_parallel_threads(int n) noexcept {
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    tls_on_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  const int n = std::max(1, threads);
  impl_->workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

int ThreadPool::size() const noexcept {
  return static_cast<int>(impl_->workers.size());
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

bool ThreadPool::on_worker_thread() noexcept { return tls_on_pool_worker; }

ThreadPool& global_pool() {
  // Sized so an STARCDN_THREADS larger than the core count still gets its
  // requested chunk concurrency (useful for determinism tests and TSan runs
  // on small machines); the floor of 4 keeps chunked paths exercised even
  // on single-core CI containers.
  static ThreadPool pool(std::max({hardware_threads(), env_threads(), 4}));
  return pool;
}

void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    int threads) {
  if (n == 0) return;
  const int requested = threads > 0 ? threads : parallel_threads();
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(1, requested)), n);
  if (chunks <= 1 || ThreadPool::on_worker_thread()) {
    body(0, n);
    return;
  }

  // Static contiguous chunking: chunk c covers the same index range for a
  // given (n, chunks) regardless of which worker runs it or when.
  struct Join {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending;
    std::exception_ptr error;
  };
  const auto join = std::make_shared<Join>();
  join->pending = chunks;

  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1
  ThreadPool& pool = global_pool();
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    auto run_chunk = [join, &body, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard lock(join->mutex);
        if (!join->error) join->error = std::current_exception();
      }
      {
        std::lock_guard lock(join->mutex);
        --join->pending;
      }
      join->cv.notify_one();
    };
    if (c + 1 == chunks) {
      run_chunk();  // the caller contributes the last chunk itself
    } else {
      pool.submit(std::move(run_chunk));
    }
    begin = end;
  }

  std::unique_lock lock(join->mutex);
  join->cv.wait(lock, [&join] { return join->pending == 0; });
  if (join->error) std::rethrow_exception(join->error);
}

}  // namespace starcdn::util
