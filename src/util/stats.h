// Streaming statistics accumulators used by metrics collection and benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace starcdn::util {

/// Welford's online algorithm: numerically stable mean/variance plus
/// min/max, O(1) memory. Used for link-delay statistics (Table 1) and
/// anywhere we only need moments.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples (optionally reservoir-subsampled) and answers quantile /
/// CDF queries. Used for the latency CDFs of Fig. 10.
class QuantileSampler {
 public:
  /// `max_samples == 0` keeps everything; otherwise reservoir-samples.
  explicit QuantileSampler(std::size_t max_samples = 0) noexcept
      : max_samples_(max_samples) {}

  void add(double x);

  /// Quantile in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Empirical CDF value P(X <= x).
  [[nodiscard]] double cdf(double x) const;

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;

  std::size_t max_samples_;
  std::size_t total_ = 0;
  mutable bool sorted_ = false;
  mutable std::vector<double> samples_;
  std::uint64_t reservoir_state_ = 0x9e3779b97f4a7c15ULL;
};

/// Pearson correlation between two equal-length series (trace fidelity
/// checks in the SpaceGEN tests).
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace starcdn::util
