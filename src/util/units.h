// Strong-ish unit helpers and physical constants shared by the simulator.
#pragma once

#include <cstdint>

namespace starcdn::util {

// --- Data sizes -------------------------------------------------------------
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;
inline constexpr Bytes kTiB = 1024ULL * kGiB;

[[nodiscard]] constexpr Bytes gib(double n) noexcept {
  return static_cast<Bytes>(n * static_cast<double>(kGiB));
}
[[nodiscard]] constexpr Bytes mib(double n) noexcept {
  return static_cast<Bytes>(n * static_cast<double>(kMiB));
}

// --- Time -------------------------------------------------------------------
// Simulation time is kept as double seconds since epoch start; latencies are
// in milliseconds to match the paper's tables.
using Seconds = double;
using Millis = double;

inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 86400.0;

// --- Physical constants -----------------------------------------------------
inline constexpr double kSpeedOfLightKmPerS = 299792.458;
inline constexpr double kEarthRadiusKm = 6371.0;
inline constexpr double kEarthMuKm3PerS2 = 398600.4418;  // gravitational param
inline constexpr double kEarthSiderealDayS = 86164.0905;
inline constexpr double kEarthRotationRadPerS =
    6.283185307179586 / kEarthSiderealDayS;

/// One-way propagation delay over a straight-line distance, in milliseconds.
[[nodiscard]] constexpr Millis propagation_delay_ms(double distance_km) noexcept {
  return distance_km / kSpeedOfLightKmPerS * 1000.0;
}

}  // namespace starcdn::util
