// Strong unit types and physical constants shared by the simulator.
//
// Every dimensioned quantity that crosses a module boundary travels as a
// `Strong<>` wrapper (strong.h): `Km`, `Meters`, `Seconds`, `Millis`,
// `Radians`, `Degrees`, `BytesPerSec`. Mixing units does not compile; the
// ONLY conversions between them are the named functions below, so a
// deg-for-rad or km-for-ms swap is a build error instead of a silently
// corrupted latency table.
//
// Intentionally raw (see DESIGN.md §10): `Bytes` (pervasive unsigned
// payload sizes in cache/trace code), `Vec3` components (implicit km; a
// per-component wrapper would gut the vector math), and rate-of-angle
// composites like rad/s (used in two propagator-internal expressions).
#pragma once

#include <cstdint>
#include <numbers>

#include "util/strong.h"

namespace starcdn::util {

// --- Data sizes -------------------------------------------------------------
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;
inline constexpr Bytes kTiB = 1024ULL * kGiB;

[[nodiscard]] constexpr Bytes gib(double n) noexcept {
  return static_cast<Bytes>(n * static_cast<double>(kGiB));
}
[[nodiscard]] constexpr Bytes mib(double n) noexcept {
  return static_cast<Bytes>(n * static_cast<double>(kMiB));
}

// --- Dimensioned quantities -------------------------------------------------
struct KmTag : UnitTag {};
struct MetersTag : UnitTag {};
struct SecondsTag : UnitTag {};
struct MillisTag : UnitTag {};
struct RadiansTag : UnitTag {};
struct DegreesTag : UnitTag {};
struct BytesPerSecTag : UnitTag {};

using Km = Strong<KmTag, double>;
using Meters = Strong<MetersTag, double>;
/// Simulation time: seconds since epoch start.
using Seconds = Strong<SecondsTag, double>;
/// Latencies, in milliseconds to match the paper's tables.
using Millis = Strong<MillisTag, double>;
using Radians = Strong<RadiansTag, double>;
using Degrees = Strong<DegreesTag, double>;
/// Link throughput. Table 1 quotes Gbps; convert via gbps()/to_gbps().
using BytesPerSec = Strong<BytesPerSecTag, double>;

inline constexpr Seconds kMinute{60.0};
inline constexpr Seconds kHour{3600.0};
inline constexpr Seconds kDay{86400.0};

// --- Physical constants -----------------------------------------------------
inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kSpeedOfLightKmPerS = 299792.458;
inline constexpr Km kEarthRadius{6371.0};
inline constexpr double kEarthRadiusKm = kEarthRadius.value();
inline constexpr double kEarthMuKm3PerS2 = 398600.4418;  // gravitational param
inline constexpr Seconds kEarthSiderealDay{86164.0905};
inline constexpr double kEarthRotationRadPerS =
    kTwoPi / kEarthSiderealDay.value();

// --- Conversions (the only way across unit families) ------------------------
[[nodiscard]] constexpr Radians to_radians(Degrees d) noexcept {
  return Radians{d.value() * kPi / 180.0};
}
[[nodiscard]] constexpr Degrees to_degrees(Radians r) noexcept {
  return Degrees{r.value() * 180.0 / kPi};
}

[[nodiscard]] constexpr Meters to_meters(Km d) noexcept {
  return Meters{d.value() * 1000.0};
}
[[nodiscard]] constexpr Km to_km(Meters d) noexcept {
  return Km{d.value() / 1000.0};
}

[[nodiscard]] constexpr Millis to_millis(Seconds s) noexcept {
  return Millis{s.value() * 1000.0};
}
[[nodiscard]] constexpr Seconds to_seconds(Millis ms) noexcept {
  return Seconds{ms.value() / 1000.0};
}

/// One-way propagation delay over a straight-line distance.
[[nodiscard]] constexpr Millis propagation_delay(Km distance) noexcept {
  return Millis{distance.value() / kSpeedOfLightKmPerS * 1000.0};
}

[[nodiscard]] constexpr BytesPerSec gbps(double gigabits_per_s) noexcept {
  return BytesPerSec{gigabits_per_s * 1e9 / 8.0};
}
[[nodiscard]] constexpr double to_gbps(BytesPerSec r) noexcept {
  return r.value() * 8.0 / 1e9;
}

}  // namespace starcdn::util
