// k-way merge on a tournament loser tree.
//
// The classic external-merge structure: a complete binary tree whose leaves
// are the k input sources; each internal node remembers the *loser* of the
// match played there and the overall winner sits above the root. Emitting
// the winner and replaying its leaf-to-root path costs exactly ceil(log2 k)
// comparisons — against a binary heap's pop+push this halves the compare
// count and touches one fixed path instead of sifting, which is what makes
// the streaming trace merge (trace::MultiTraceStream, WorkloadModel::
// generate_stream) cheap even with one comparator call per request.
//
// The tree orders *source indices*: the caller's comparator looks up each
// source's current head element. The comparator must be a strict total
// order over live sources — tie-break on the source index (that is also
// what makes the merge deterministic) — and must rank exhausted sources
// after every live one.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace starcdn::util {

/// Tournament tree over `k` sources. `less(a, b)` returns true when source
/// a's head must be emitted before source b's; it is re-evaluated on every
/// replay, so it must read the sources' *current* heads.
template <typename Less>
class LoserTree {
 public:
  LoserTree(std::size_t k, Less less) : k_(k), less_(std::move(less)) {
    rebuild();
  }

  [[nodiscard]] std::size_t size() const noexcept { return k_; }

  /// Source holding the globally smallest head (undefined when k == 0;
  /// when every source is exhausted it names an exhausted one — the caller
  /// tracks the remaining element count).
  [[nodiscard]] std::size_t winner() const noexcept { return winner_; }

  /// Call after consuming the winner's head (advancing or exhausting that
  /// source): replays the winner's leaf-to-root path in O(log k).
  void replayed() {
    if (k_ < 2) return;
    std::size_t cand = winner_;
    for (std::size_t node = (k_ + winner_) / 2; node >= 1; node /= 2) {
      if (less_(tree_[node], cand)) std::swap(tree_[node], cand);
    }
    winner_ = cand;
  }

  /// Full O(k) rebuild — used at construction and whenever the caller
  /// swaps out the underlying sources wholesale (e.g. a new merge window).
  void rebuild() {
    winner_ = 0;
    if (k_ < 2) return;
    // win[] is the match winner at each node; leaves k..2k-1 hold the
    // sources, internal node j plays win[2j] vs win[2j+1] and stores the
    // loser in tree_[j]. Heap indexing works for any k, not just powers of
    // two: every index in 2..2k-1 is either internal (< k) or a leaf.
    std::vector<std::size_t> win(2 * k_);
    for (std::size_t s = 0; s < k_; ++s) win[k_ + s] = s;
    tree_.assign(k_, 0);
    for (std::size_t node = k_ - 1; node >= 1; --node) {
      const std::size_t a = win[2 * node];
      const std::size_t b = win[2 * node + 1];
      const bool a_wins = !less_(b, a);
      win[node] = a_wins ? a : b;
      tree_[node] = a_wins ? b : a;
    }
    winner_ = win[1];
  }

 private:
  std::size_t k_;
  Less less_;
  std::size_t winner_ = 0;
  std::vector<std::size_t> tree_;  // loser stored at each internal node
};

}  // namespace starcdn::util
