// Minimal CSV writer/reader for bench outputs and trace interchange.
//
// The bench harness writes each regenerated table/figure both to stdout and
// to a CSV so results can be re-plotted; the trace module uses the reader in
// tests to round-trip generated traces.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace starcdn::util {

/// Streaming CSV writer. Quotes fields containing separators/quotes.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Write one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
};

/// Parse a single CSV line into fields (RFC-4180 quoting).
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Read an entire CSV file; returns rows of fields. Throws on open failure.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(
    const std::string& path);

}  // namespace starcdn::util
