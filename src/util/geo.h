// Geodetic coordinates and great-circle math.
//
// Cities, ground stations and user terminals are specified as (lat, lon);
// the orbital module converts them to ECEF for visibility computation, and
// the workload model uses great-circle distances to drive the
// distance-decaying content overlap (Fig. 2).
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace starcdn::util {

/// A point on the WGS-84-ish sphere (we use a spherical Earth; the paper's
/// results are insensitive to oblateness at CDN-latency granularity).
/// Fields are intentionally raw doubles — this struct is the scenario I/O
/// boundary (CSV city lists, TLE-free configs, literal tables); the `_deg`
/// suffix carries the unit and everything downstream converts through
/// util::to_radians (units.h), which is the only deg->rad path in the tree.
struct GeoCoord {
  double lat_deg = 0.0;  // [-90, 90]
  double lon_deg = 0.0;  // [-180, 180]
};

/// Great-circle distance (haversine formula).
[[nodiscard]] Km haversine(const GeoCoord& a, const GeoCoord& b) noexcept;

/// Normalize longitude to [-180, 180).
[[nodiscard]] double wrap_lon_deg(double lon) noexcept;

/// A named city with population-derived traffic weight; the nine cities of
/// the paper's Akamai trace collection plus extras for global coverage.
struct City {
  std::string name;
  GeoCoord coord;
  double traffic_weight = 1.0;  // relative request volume
  /// Coarse language/content-region tag driving cross-city object overlap
  /// (Table 2: Britain/Germany/Turkey share little content).
  std::string region;
};

/// The paper's nine trace-collection cities (§3.1.1) with approximate
/// coordinates and relative demand weights.
[[nodiscard]] const std::vector<City>& paper_cities();

/// A wider 24-city set for global simulations (paper cities + major Starlink
/// markets), used when a satellite must see traffic on most of its orbit.
[[nodiscard]] const std::vector<City>& global_cities();

}  // namespace starcdn::util
