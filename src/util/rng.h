// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in StarCDN (workload synthesis, SpaceGEN
// sampling, scheduler tie-breaks, failure injection) takes an explicit
// `Rng&` so that a single seed fully determines a run. The generator is
// xoshiro256**, which is faster than std::mt19937_64 and has no observable
// bias for our use; distributions are implemented inline so results are
// identical across standard libraries (libstdc++/libc++ differ in their
// std::*_distribution implementations).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/hash.h"

namespace starcdn::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64 expansion.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedc0ffee123456ULL) noexcept {
    // Expand the 64-bit seed into 256 bits of state; splitmix64 guarantees
    // distinct, well-mixed words even for adjacent seeds.
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      w = splitmix64(s);
    }
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of randomness.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Lemire's multiply-shift rejection method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    if (n <= 1) return 0;
    // Simple modulo with rejection of the biased tail.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value omitted to stay
  /// stateless; cost is acceptable at simulation scale).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    const double u1 = 1.0 - uniform();  // (0, 1], avoids log(0)
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  [[nodiscard]] double exponential(double rate) noexcept {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Geometric-ish Pareto sample with shape `alpha` and scale `xmin`.
  [[nodiscard]] double pareto(double xmin, double alpha) noexcept {
    return xmin / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Derive an independent stream, e.g. one per satellite or per city.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(hash_combine((*this)(), splitmix64(stream_id)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace starcdn::util
