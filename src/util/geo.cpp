#include "util/geo.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace starcdn::util {

Km haversine(const GeoCoord& a, const GeoCoord& b) noexcept {
  const double lat1 = to_radians(Degrees{a.lat_deg}).value();
  const double lat2 = to_radians(Degrees{b.lat_deg}).value();
  const double dlat = lat2 - lat1;
  const double dlon = to_radians(Degrees{b.lon_deg - a.lon_deg}).value();
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return Km{2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)))};
}

double wrap_lon_deg(double lon) noexcept {
  while (lon >= 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return lon;
}

const std::vector<City>& paper_cities() {
  // Weights approximate relative demand: US cities weighted higher, matching
  // the paper's note that the US has the most Starlink users today.
  static const std::vector<City> cities = {
      {"MexicoCity", {19.43, -99.13}, 1.0, "es"},
      {"Dallas", {32.78, -96.80}, 1.3, "en-us"},
      {"Atlanta", {33.75, -84.39}, 1.2, "en-us"},
      {"WashingtonDC", {38.91, -77.04}, 1.3, "en-us"},
      {"NewYork", {40.71, -74.01}, 1.8, "en-us"},
      {"London", {51.51, -0.13}, 1.5, "en-gb"},
      {"Frankfurt", {50.11, 8.68}, 1.2, "de"},
      {"Vienna", {48.21, 16.37}, 0.8, "de"},
      {"Istanbul", {41.01, 28.98}, 1.1, "tr"},
  };
  return cities;
}

const std::vector<City>& global_cities() {
  static const std::vector<City> cities = [] {
    std::vector<City> c = paper_cities();
    const std::vector<City> extra = {
        {"LosAngeles", {34.05, -118.24}, 1.5, "en-us"},
        {"Seattle", {47.61, -122.33}, 1.0, "en-us"},
        {"Chicago", {41.88, -87.63}, 1.2, "en-us"},
        {"Toronto", {43.65, -79.38}, 0.9, "en-us"},
        {"SaoPaulo", {-23.55, -46.63}, 1.3, "pt"},
        {"BuenosAires", {-34.60, -58.38}, 0.8, "es"},
        {"Paris", {48.86, 2.35}, 1.2, "fr"},
        {"Madrid", {40.42, -3.70}, 0.9, "es"},
        {"Rome", {41.90, 12.50}, 0.8, "it"},
        {"Warsaw", {52.23, 21.01}, 0.7, "pl"},
        {"Lagos", {6.52, 3.38}, 0.8, "en-ng"},
        {"Nairobi", {-1.29, 36.82}, 0.6, "en-ke"},
        {"Dubai", {25.20, 55.27}, 0.7, "ar"},
        {"Mumbai", {19.08, 72.88}, 1.2, "hi"},
        {"Singapore", {1.35, 103.82}, 0.9, "en-sg"},
        {"Tokyo", {35.68, 139.69}, 1.4, "ja"},
        {"Sydney", {-33.87, 151.21}, 1.0, "en-au"},
        {"Auckland", {-36.85, 174.76}, 0.5, "en-nz"},
    };
    c.insert(c.end(), extra.begin(), extra.end());
    return c;
  }();
  return cities;
}

}  // namespace starcdn::util
