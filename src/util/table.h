// Console table printer: every bench binary prints its regenerated paper
// table/figure as an aligned text table plus a CSV dump.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace starcdn::util {

/// Accumulates rows of string cells and pretty-prints with column alignment.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a title banner, column separators and a header rule.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Also dump rows (header first) to a CSV file; ignores IO errors so a
  /// read-only working dir never fails a bench.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

}  // namespace starcdn::util
