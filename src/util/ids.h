// Strong index/ID types: a satellite index can never subscript a city
// table, a bucket id can never be confused with an epoch, and the compiler
// enforces it (see strong.h for the mechanics).
//
// Conventions:
//   * `SatId`     — linear satellite index into the constellation
//                   (plane * slots_per_plane + slot). Negative = "none"
//                   (the scheduler's empty-cell sentinel, kNoSat).
//   * `PlaneIdx`  — orbital-plane coordinate (RAAN order).
//   * `SlotIdx`   — in-plane slot coordinate (argument-of-latitude order).
//   * `CityId`    — index into a scenario's city list.
//   * `BucketId`  — consistent-hashing bucket in [0, L).
//   * `EpochIdx`  — scheduler epoch number (15 s granularity).
//
// Raw escapes (`.value()`) are expected exactly where an id meets a plain
// container subscript or modular grid math; everywhere else the id travels
// strongly typed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/strong.h"

namespace starcdn::util {

struct SatIdTag : IndexTag {};
struct PlaneIdxTag : IndexTag {};
struct SlotIdxTag : IndexTag {};
struct CityIdTag : IndexTag {};
struct BucketIdTag : IndexTag {};
struct EpochIdxTag : IndexTag {};

using SatId = Strong<SatIdTag, std::int32_t>;
using PlaneIdx = Strong<PlaneIdxTag, std::int32_t>;
using SlotIdx = Strong<SlotIdxTag, std::int32_t>;
using CityId = Strong<CityIdTag, std::uint32_t>;
using BucketId = Strong<BucketIdTag, std::int32_t>;
using EpochIdx = Strong<EpochIdxTag, std::size_t>;

/// "No satellite in view": the scheduler's empty-candidate sentinel.
inline constexpr SatId kNoSat{-1};

/// Subscript helper: the unsigned form of an id for container indexing.
template <class Tag, class Rep>
[[nodiscard]] constexpr std::size_t as_index(Strong<Tag, Rep> id) noexcept {
  return static_cast<std::size_t>(id.value());
}

}  // namespace starcdn::util
