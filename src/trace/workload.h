// Synthetic *production* workload generator — the substitution for the
// Akamai traces the paper collected (see DESIGN.md §3).
//
// The paper's nine-city video trace exhibits three structural properties
// its results depend on:
//   1. heavy-tailed (Zipf-like) per-city object popularity,
//   2. cross-city content overlap that decays with geographic distance and
//      language region (Table 2, Fig. 2): nearby same-language cities share
//      ~55% of objects and ~90% of traffic, distant ones ~10-25%,
//   3. per-traffic-class size distributions (video ~MB objects dominating
//      bytes; web small and numerous; downloads few but large).
//
// The model realizes these with an object universe in which every object
// has a home city, a heavy-tailed base popularity, and a popularity-
// correlated geographic reach; its weight in city c decays exponentially
// with distance(home, c)/reach and is scaled by a region-affinity factor.
// Requests are drawn i.i.d. from the per-city weight tables with Poisson
// arrivals modulated by a diurnal profile in the city's local time.
#pragma once

#include <memory>
#include <vector>

#include "trace/record.h"
#include "trace/stream.h"
#include "trace/zipf.h"
#include "util/geo.h"
#include "util/rng.h"

namespace starcdn::trace {

struct WorkloadParams {
  TrafficClass traffic_class = TrafficClass::kVideo;
  std::size_t object_count = 200'000;
  /// Requests generated per unit of city traffic weight.
  std::size_t requests_per_weight = 40'000;
  double duration_s = 1.0 * util::kDay.value();
  /// Zipf exponent of base popularity. Video popularity is strongly
  /// skewed; 1.2 reproduces the paper's hit-rate levels (§5.2).
  double zipf_alpha = 1.2;
  /// Log-normal object size parameters (per class defaults via
  /// default_params()).
  double size_mu = 13.5;     // exp(13.5) ≈ 730 KB
  double size_sigma = 1.2;
  /// Geographic reach: reach_km ~ pareto(reach_min_km, reach_shape);
  /// an object's weight decays as exp(-distance/reach) from its home city.
  double reach_min_km = 400.0;
  double reach_shape = 0.7;
  /// Optional popularity boost of reach (0 = popularity-independent; kept
  /// as an ablation knob).
  double reach_pop_boost = 0.0;
  /// Fraction of objects that are globally popular regardless of distance
  /// (world-cup finals, OS updates, ...).
  double global_fraction = 0.02;
  /// Region crossing gates: the probability that a given object is consumed
  /// in a foreign region *at all* (Table 2's language effect). Calibrated
  /// so cross-language European pairs share ~20-50% of traffic and
  /// NY->London about a quarter (Fig. 2).
  double same_language_family = 0.35;
  double cross_region = 0.30;
  /// Diurnal modulation depth in [0, 1): rate(t) = base * (1 + depth *
  /// sin(...)), peaking at ~20:00 local time.
  double diurnal_depth = 0.45;
  std::uint64_t seed = 42;
};

/// Per-class defaults calibrated to the paper's trace summary statistics
/// (§3.1.1 video: 423M reqs/512TB over 24M objects/24TB; §5.5 web: 2B reqs/
/// 642TB; downloads: 472M reqs/372TB).
[[nodiscard]] WorkloadParams default_params(TrafficClass c);

/// Tuning for WorkloadModel::generate_stream. Both knobs trade memory for
/// speed only — the emitted request sequence is identical for any values.
struct StreamParams {
  /// Requests per yielded RequestBlock.
  std::size_t chunk_requests = kDefaultChunkRequests;
  /// Target number of requests (summed over cities) materialized per
  /// emission window. Peak generator memory is O(window); generation cost
  /// grows with the window *count* (each window replays every city's RNG
  /// stream in skip mode), so bigger windows are faster and fatter. The
  /// default (~4M requests, ~100 MB of window buffers) keeps a paper-scale
  /// day under a dozen replay passes.
  std::size_t window_requests = 4u << 20;
};

/// A generated object universe plus per-city popularity tables.
class WorkloadModel {
 public:
  WorkloadModel(const std::vector<util::City>& cities,
                const WorkloadParams& params);

  [[nodiscard]] const std::vector<util::City>& cities() const noexcept {
    return *cities_;
  }
  [[nodiscard]] const WorkloadParams& params() const noexcept { return params_; }

  [[nodiscard]] std::size_t object_count() const noexcept {
    return sizes_.size();
  }
  [[nodiscard]] Bytes object_size(ObjectId id) const noexcept {
    return sizes_[static_cast<std::size_t>(id)];
  }

  /// Weight of an object in a city (0 when out of reach).
  [[nodiscard]] double weight(ObjectId id, std::size_t city) const;

  /// Generate the full multi-location production trace.
  [[nodiscard]] MultiTrace generate() const;

  /// Generate only one city's trace with `n` requests (tests/benches).
  [[nodiscard]] LocationTrace generate_city(std::size_t city,
                                            std::size_t n_requests,
                                            std::uint64_t salt = 0) const;

  /// Requests generate() draws for one city (requests_per_weight scaled by
  /// the city's traffic weight), and their sum — the analytic trace length,
  /// available without generating anything.
  [[nodiscard]] std::size_t city_request_count(std::size_t city) const;
  [[nodiscard]] std::uint64_t total_request_count() const;

  /// Bounded-memory, globally time-ordered generator: bitwise identical to
  /// merge_by_time(generate()) — same requests, same order — but with
  /// O(StreamParams::window_requests) peak memory instead of O(trace).
  ///
  /// How: per-city draws replay the exact per-city salted RNG stream of
  /// generate_city in two passes. A counting pass (parallel over cities on
  /// the PR-1 pool) consumes each draw without the object binary search and
  /// histograms requests per minute; minutes are then partitioned into
  /// windows of ~window_requests total. Each window re-replays every city's
  /// stream, paying the object lookup only for in-window draws, stable-sorts
  /// the per-city window buffers by timestamp (= generate_city's tie-break)
  /// and k-way merges them through a loser tree keyed (timestamp, city).
  /// The stream keeps a reference to this model; the model must outlive it.
  [[nodiscard]] std::unique_ptr<RequestStream> generate_stream(
      const StreamParams& sp = {}) const;

 private:
  friend class WorkloadStream;
  void build_universe();
  void build_city_tables();
  [[nodiscard]] std::vector<double> diurnal_minute_weights(
      std::size_t city) const;

  const std::vector<util::City>* cities_;
  WorkloadParams params_;

  // Object universe.
  std::vector<Bytes> sizes_;
  std::vector<float> base_weight_;
  std::vector<float> reach_km_;
  std::vector<std::uint16_t> home_city_;
  std::vector<bool> global_;

  // Per-city popularity tables: object ids with non-negligible weight and a
  // matching sampler.
  struct CityTable {
    std::vector<ObjectId> objects;
    std::vector<double> weights;
    std::unique_ptr<DiscreteSampler> sampler;
  };
  std::vector<CityTable> city_tables_;
};

/// Region affinity in [0,1]: 1 for identical region tags, an intermediate
/// value for the same language family (e.g. "en-us" vs "en-gb"), and a low
/// floor across regions — the Table 2 effect that different languages
/// seldom share content.
[[nodiscard]] double region_affinity(const std::string& a,
                                     const std::string& b,
                                     const WorkloadParams& params);

// --- Overlap analytics (Table 2 / Fig. 2) -----------------------------------

struct OverlapResult {
  double object_overlap = 0.0;   // fraction of A's objects also seen in B
  double traffic_overlap = 0.0;  // fraction of A's bytes to objects in B
};

/// Percent of objects (and traffic) accessed at `a` that were also accessed
/// at `b` — the paper's Table 2 / Fig. 2 metric.
[[nodiscard]] OverlapResult overlap(const LocationTrace& a,
                                    const LocationTrace& b);

}  // namespace starcdn::trace
