// Core trace record types shared by the workload generator, SpaceGEN and
// the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "util/units.h"

namespace starcdn::trace {

using cache::ObjectId;
using util::Bytes;

/// One content access: who (location), what (object, bytes), when.
struct Request {
  double timestamp_s = 0.0;
  ObjectId object = 0;
  Bytes size = 0;
  std::uint16_t location = 0;  // index into the city list of the scenario
};

/// A request stream for a single location, ordered by timestamp.
struct LocationTrace {
  std::uint16_t location = 0;
  std::string location_name;
  std::vector<Request> requests;

  [[nodiscard]] Bytes total_bytes() const noexcept {
    Bytes b = 0;
    for (const auto& r : requests) b += r.size;
    return b;
  }
};

/// Traces for all locations of a scenario (parallel to its city list).
using MultiTrace = std::vector<LocationTrace>;

/// Merge per-location traces into one globally time-ordered stream.
[[nodiscard]] std::vector<Request> merge_by_time(const MultiTrace& traces);

enum class TrafficClass : std::uint8_t { kVideo, kWeb, kDownload };

[[nodiscard]] const char* to_string(TrafficClass c) noexcept;

}  // namespace starcdn::trace
