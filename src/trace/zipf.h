// Zipf(ian) popularity sampling.
//
// CDN object popularity is famously Zipf-like; the workload model uses this
// sampler to assign base popularities and to draw i.i.d. requests from
// per-city popularity tables.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace starcdn::trace {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^alpha.
/// Precomputes the CDF (O(n) memory); suitable up to a few million ranks.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(util::Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Probability mass of a rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  double alpha_;
  std::vector<double> cdf_;
};

/// Weighted discrete sampler over arbitrary non-negative weights
/// (CDF + binary search). Used for per-city object popularity tables.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(util::Rng& rng) const;

  /// Index for a unit draw u in [0, 1): sample(rng) == index_of(
  /// rng.uniform()). Exposed so a replaying consumer can consume the RNG
  /// draw without paying the binary search — and run the search later only
  /// for the draws it actually needs (WorkloadModel::generate_stream's
  /// counting pass).
  [[nodiscard]] std::size_t index_of(double unit) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_; }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace starcdn::trace
