#include "trace/stream.h"

#include <algorithm>

#include "util/loser_tree.h"

namespace starcdn::trace {

namespace {

/// Orders live traces by (head timestamp, trace index) — identical to the
/// old concatenate-in-trace-order + stable_sort-by-timestamp contract of
/// merge_by_time — and ranks exhausted traces last (among themselves by
/// index, keeping the order strict and total).
struct TraceHeadLess {
  const MultiTrace* traces;
  const std::vector<std::size_t>* pos;
  bool operator()(std::size_t a, std::size_t b) const noexcept {
    const bool ea = (*pos)[a] >= (*traces)[a].requests.size();
    const bool eb = (*pos)[b] >= (*traces)[b].requests.size();
    if (ea || eb) return !ea && eb;
    const double ta = (*traces)[a].requests[(*pos)[a]].timestamp_s;
    const double tb = (*traces)[b].requests[(*pos)[b]].timestamp_s;
    if (ta != tb) return ta < tb;
    return a < b;
  }
};

}  // namespace

std::vector<Request> merge_by_time(const MultiTrace& traces) {
  std::size_t total = 0;
  for (const auto& t : traces) total += t.requests.size();
  std::vector<Request> all;
  all.reserve(total);
  std::vector<std::size_t> pos(traces.size(), 0);
  util::LoserTree<TraceHeadLess> tree(traces.size(),
                                      TraceHeadLess{&traces, &pos});
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t s = tree.winner();
    all.push_back(traces[s].requests[pos[s]]);
    ++pos[s];
    tree.replayed();
  }
  return all;
}

VectorStream::VectorStream(const std::vector<Request>& requests,
                           std::size_t chunk_requests)
    : requests_(&requests), chunk_(std::max<std::size_t>(1, chunk_requests)) {}

bool VectorStream::next(RequestBlock& out) {
  out.clear();
  if (pos_ >= requests_->size()) return false;
  const std::size_t n = std::min(chunk_, requests_->size() - pos_);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back((*requests_)[pos_ + i]);
  pos_ += n;
  return true;
}

struct MultiTraceStream::Merge {
  explicit Merge(const MultiTrace& traces)
      : pos(traces.size(), 0), tree(traces.size(), TraceHeadLess{&traces, &pos}) {}

  std::vector<std::size_t> pos;
  util::LoserTree<TraceHeadLess> tree;
};

MultiTraceStream::MultiTraceStream(const MultiTrace& traces,
                                   std::size_t chunk_requests)
    : traces_(&traces),
      chunk_(std::max<std::size_t>(1, chunk_requests)),
      merge_(std::make_unique<Merge>(traces)) {
  for (const auto& t : traces) total_ += t.requests.size();
  remaining_ = total_;
}

MultiTraceStream::~MultiTraceStream() = default;

bool MultiTraceStream::next(RequestBlock& out) {
  out.clear();
  if (remaining_ == 0) return false;
  const auto n =
      static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, remaining_));
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = merge_->tree.winner();
    out.push_back((*traces_)[s].requests[merge_->pos[s]]);
    ++merge_->pos[s];
    merge_->tree.replayed();
  }
  remaining_ -= n;
  return true;
}

std::vector<Request> collect(RequestStream& stream) {
  std::vector<Request> all;
  if (const auto hint = stream.size_hint()) {
    all.reserve(static_cast<std::size_t>(*hint));
  }
  RequestBlock block;
  while (stream.next(block)) {
    for (std::size_t i = 0; i < block.count(); ++i) {
      all.push_back(block.at(i));
    }
  }
  return all;
}

}  // namespace starcdn::trace
