#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace starcdn::trace {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'D', 'N', 'T', 'R', 'C', '1'};
constexpr char kStreamMagic[8] = {'S', 'C', 'D', 'N', 'S', 'T', 'R', '1'};

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace read: truncated file");
  return v;
}

}  // namespace

void write_binary(const LocationTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  put(out, trace.location);
  const auto name_len = static_cast<std::uint16_t>(trace.location_name.size());
  put(out, name_len);
  out.write(trace.location_name.data(), name_len);
  put(out, static_cast<std::uint64_t>(trace.requests.size()));
  for (const auto& r : trace.requests) {
    put(out, r.timestamp_s);
    put(out, r.object);
    put(out, r.size);
    put(out, r.location);
  }
  if (!out) throw std::runtime_error("write_binary: write failed " + path);
}

LocationTrace read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_binary: bad magic in " + path);
  }
  LocationTrace t;
  t.location = get<std::uint16_t>(in);
  const auto name_len = get<std::uint16_t>(in);
  t.location_name.resize(name_len);
  in.read(t.location_name.data(), name_len);
  const auto count = get<std::uint64_t>(in);
  t.requests.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Request r;
    r.timestamp_s = get<double>(in);
    r.object = get<ObjectId>(in);
    r.size = get<Bytes>(in);
    r.location = get<std::uint16_t>(in);
    t.requests.push_back(r);
  }
  return t;
}

namespace {

template <typename T>
void put_array(std::ofstream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void get_array(std::ifstream& in, std::vector<T>& v, std::size_t n) {
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("trace stream read: truncated file");
}

class FileRequestStream final : public RequestStream {
 public:
  explicit FileRequestStream(const std::string& path)
      : in_(path, std::ios::binary) {
    if (!in_) {
      throw std::runtime_error("open_binary_stream: cannot open " + path);
    }
    char magic[8];
    in_.read(magic, sizeof magic);
    if (!in_ || std::memcmp(magic, kStreamMagic, sizeof kStreamMagic) != 0) {
      throw std::runtime_error("open_binary_stream: bad magic in " + path);
    }
    total_ = get<std::uint64_t>(in_);
  }

  [[nodiscard]] bool next(RequestBlock& out) override {
    out.clear();
    const auto n = get<std::uint32_t>(in_);
    if (n == 0) return false;
    get_array(in_, out.timestamp_s, n);
    get_array(in_, out.object, n);
    get_array(in_, out.size, n);
    get_array(in_, out.location, n);
    return true;
  }

  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return total_;
  }

 private:
  std::ifstream in_;
  std::uint64_t total_ = 0;
};

}  // namespace

void write_binary_stream(RequestStream& stream, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_binary_stream: cannot open " + path);
  }
  out.write(kStreamMagic, sizeof kStreamMagic);
  // Total request count, patched in after the terminating zero block —
  // the actual drained count, not the stream's (optional) hint.
  const auto total_at = out.tellp();
  put(out, std::uint64_t{0});
  std::uint64_t total = 0;
  RequestBlock block;
  while (stream.next(block)) {
    if (block.empty()) continue;
    put(out, static_cast<std::uint32_t>(block.count()));
    put_array(out, block.timestamp_s);
    put_array(out, block.object);
    put_array(out, block.size);
    put_array(out, block.location);
    total += block.count();
  }
  put(out, std::uint32_t{0});
  out.seekp(total_at);
  put(out, total);
  if (!out) {
    throw std::runtime_error("write_binary_stream: write failed " + path);
  }
}

std::unique_ptr<RequestStream> open_binary_stream(const std::string& path) {
  return std::make_unique<FileRequestStream>(path);
}

void write_csv(const LocationTrace& trace, const std::string& path) {
  util::CsvWriter w(path);
  w.row({"timestamp_s", "object", "size", "location"});
  for (const auto& r : trace.requests) {
    w.row({std::to_string(r.timestamp_s), std::to_string(r.object),
           std::to_string(r.size), std::to_string(r.location)});
  }
}

LocationTrace read_csv_trace(const std::string& path) {
  const auto rows = util::read_csv(path);
  LocationTrace t;
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() < 4) continue;
    Request r;
    r.timestamp_s = std::stod(row[0]);
    r.object = std::stoull(row[1]);
    r.size = std::stoull(row[2]);
    r.location = static_cast<std::uint16_t>(std::stoul(row[3]));
    t.requests.push_back(r);
  }
  if (!t.requests.empty()) t.location = t.requests.front().location;
  return t;
}

}  // namespace starcdn::trace
