#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace starcdn::trace {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'D', 'N', 'T', 'R', 'C', '1'};

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("trace read: truncated file");
  return v;
}

}  // namespace

void write_binary(const LocationTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  put(out, trace.location);
  const auto name_len = static_cast<std::uint16_t>(trace.location_name.size());
  put(out, name_len);
  out.write(trace.location_name.data(), name_len);
  put(out, static_cast<std::uint64_t>(trace.requests.size()));
  for (const auto& r : trace.requests) {
    put(out, r.timestamp_s);
    put(out, r.object);
    put(out, r.size);
    put(out, r.location);
  }
  if (!out) throw std::runtime_error("write_binary: write failed " + path);
}

LocationTrace read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_binary: bad magic in " + path);
  }
  LocationTrace t;
  t.location = get<std::uint16_t>(in);
  const auto name_len = get<std::uint16_t>(in);
  t.location_name.resize(name_len);
  in.read(t.location_name.data(), name_len);
  const auto count = get<std::uint64_t>(in);
  t.requests.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Request r;
    r.timestamp_s = get<double>(in);
    r.object = get<ObjectId>(in);
    r.size = get<Bytes>(in);
    r.location = get<std::uint16_t>(in);
    t.requests.push_back(r);
  }
  return t;
}

void write_csv(const LocationTrace& trace, const std::string& path) {
  util::CsvWriter w(path);
  w.row({"timestamp_s", "object", "size", "location"});
  for (const auto& r : trace.requests) {
    w.row({std::to_string(r.timestamp_s), std::to_string(r.object),
           std::to_string(r.size), std::to_string(r.location)});
  }
}

LocationTrace read_csv_trace(const std::string& path) {
  const auto rows = util::read_csv(path);
  LocationTrace t;
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() < 4) continue;
    Request r;
    r.timestamp_s = std::stod(row[0]);
    r.object = std::stoull(row[1]);
    r.size = std::stoull(row[2]);
    r.location = static_cast<std::uint16_t>(std::stoul(row[3]));
    t.requests.push_back(r);
  }
  if (!t.requests.empty()) t.location = t.requests.front().location;
  return t;
}

}  // namespace starcdn::trace
