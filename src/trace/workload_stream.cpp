// WorkloadModel::generate_stream — the bounded-memory, parallel generator
// behind the streaming trace pipeline (DESIGN.md §12).
//
// The contract is bitwise identity with merge_by_time(generate()): same
// requests, same global order, for any chunk/window size and thread count.
// generate_city draws each request with exactly three RNG consumptions
// (object uniform, diurnal minute, intra-minute fraction) from a per-city
// salted stream, then stable-sorts by timestamp. Because minute buckets are
// disjoint ascending timestamp intervals (the end-of-day clamp stays inside
// the last minute), restricting that stable sort to a contiguous range of
// minutes equals stable-sorting only the draws of those minutes — so the
// trace can be produced window by window:
//
//   1. Counting pass (parallel over cities): replay each city's RNG stream
//      consuming draws *without* the object binary search, histogramming
//      requests per minute.
//   2. Partition minutes into windows of ~StreamParams::window_requests
//      total requests.
//   3. Per window (parallel over cities): re-replay each city's stream,
//      paying the object lookup (DiscreteSampler::index_of on the already-
//      consumed uniform) only for in-window draws; stable-sort the window
//      buffer by timestamp.
//   4. Merge the per-city buffers through a loser tree keyed (timestamp,
//      city) — merge_by_time's exact tie-break — into SoA chunks.
//
// Peak memory is O(window) and generation cost is (1 + windows) cheap
// replays of the RNG streams plus exactly one object lookup per request.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/stream.h"
#include "trace/workload.h"
#include "trace/zipf.h"
#include "util/hash.h"
#include "util/loser_tree.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/units.h"

namespace starcdn::trace {

class WorkloadStream final : public RequestStream {
 public:
  WorkloadStream(const WorkloadModel& model, StreamParams sp)
      : model_(&model),
        sp_(sp),
        cities_(model.cities().size()),
        buffers_(cities_),
        pos_(cities_, 0),
        tree_(cities_, Less{&buffers_, &pos_}) {
    sp_.chunk_requests = std::max<std::size_t>(1, sp_.chunk_requests);
    sp_.window_requests = std::max<std::size_t>(1, sp_.window_requests);
    const WorkloadParams& p = model.params();
    minutes_ = static_cast<std::size_t>(
        std::max(1.0, p.duration_s / util::kMinute.value()));

    city_n_.resize(cities_);
    minute_samplers_.resize(cities_);
    counts_.resize(cities_);
    for (std::size_t c = 0; c < cities_; ++c) {
      city_n_[c] = model.city_request_count(c);
      total_ += city_n_[c];
      minute_samplers_[c] =
          std::make_unique<DiscreteSampler>(model.diurnal_minute_weights(c));
    }

    // Counting pass: one cheap replay per city, independent slots.
    util::parallel_for(cities_, [&](std::size_t c) {
      auto& counts = counts_[c];
      counts.assign(minutes_, 0);
      util::Rng rng = city_rng(c);
      const DiscreteSampler& minute = *minute_samplers_[c];
      for (std::size_t i = 0; i < city_n_[c]; ++i) {
        (void)rng.uniform();  // object draw; lookup deferred to emission
        ++counts[minute.sample(rng)];
        (void)rng.uniform();  // intra-minute timestamp fraction
      }
    });

    // Partition minutes into emission windows of ~window_requests total.
    std::uint64_t acc = 0;
    std::size_t begin = 0;
    for (std::size_t m = 0; m < minutes_; ++m) {
      for (std::size_t c = 0; c < cities_; ++c) acc += counts_[c][m];
      if (acc >= sp_.window_requests) {
        windows_.push_back({begin, m + 1});
        begin = m + 1;
        acc = 0;
      }
    }
    if (begin < minutes_) windows_.push_back({begin, minutes_});
  }

  [[nodiscard]] bool next(RequestBlock& out) override {
    out.clear();
    if (emitted_ >= total_) return false;
    const auto want = static_cast<std::size_t>(std::min<std::uint64_t>(
        sp_.chunk_requests, total_ - emitted_));
    out.reserve(want);
    while (out.count() < want) {
      if (window_remaining_ == 0) {
        fill_window(windows_[window_idx_++]);
        continue;
      }
      const std::size_t c = tree_.winner();
      const Draw& d = buffers_[c][pos_[c]];
      out.timestamp_s.push_back(d.ts);
      out.object.push_back(d.obj);
      out.size.push_back(model_->object_size(d.obj));
      out.location.push_back(static_cast<std::uint16_t>(c));
      ++pos_[c];
      --window_remaining_;
      tree_.replayed();
    }
    emitted_ += want;
    return true;
  }

  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return total_;
  }

 private:
  struct Draw {
    double ts;
    ObjectId obj;
  };
  struct Window {
    std::size_t begin_minute;
    std::size_t end_minute;  // half-open
  };
  /// (head timestamp, city) over the window buffers; exhausted cities rank
  /// last, by index — a strict total order, so the merge is deterministic.
  struct Less {
    const std::vector<std::vector<Draw>>* buffers;
    const std::vector<std::size_t>* pos;
    bool operator()(std::size_t a, std::size_t b) const noexcept {
      const bool ea = (*pos)[a] >= (*buffers)[a].size();
      const bool eb = (*pos)[b] >= (*buffers)[b].size();
      if (ea || eb) return !ea && eb;
      const double ta = (*buffers)[a][(*pos)[a]].ts;
      const double tb = (*buffers)[b][(*pos)[b]].ts;
      if (ta != tb) return ta < tb;
      return a < b;
    }
  };

  [[nodiscard]] util::Rng city_rng(std::size_t city) const {
    // Exactly generate_city's seeding with the default salt of generate().
    return util::Rng(util::hash_combine(model_->params().seed,
                                        util::splitmix64(city * 7919 + 1)));
  }

  void fill_window(const Window& w) {
    const double clamp_s = model_->params().duration_s - 1e-3;
    util::parallel_for(cities_, [&](std::size_t c) {
      auto& buf = buffers_[c];
      buf.clear();
      std::size_t expect = 0;
      for (std::size_t m = w.begin_minute; m < w.end_minute; ++m) {
        expect += counts_[c][m];
      }
      if (expect == 0) return;  // counting pass proved nothing lands here
      buf.reserve(expect);
      const WorkloadModel::CityTable& t = model_->city_tables_[c];
      util::Rng rng = city_rng(c);
      const DiscreteSampler& minute = *minute_samplers_[c];
      for (std::size_t i = 0; i < city_n_[c]; ++i) {
        const double u_obj = rng.uniform();
        const std::size_t m = minute.sample(rng);
        const double u_ts = rng.uniform();
        if (m < w.begin_minute || m >= w.end_minute) continue;
        const ObjectId obj = t.objects[t.sampler->index_of(u_obj)];
        const double ts =
            std::min(clamp_s, (static_cast<double>(m) + u_ts) *
                                  util::kMinute.value());
        buf.push_back({ts, obj});
      }
      // Equal timestamps keep draw order — generate_city's stable_sort
      // restricted to this window's minutes.
      std::stable_sort(buf.begin(), buf.end(),
                       [](const Draw& a, const Draw& b) {
                         return a.ts < b.ts;
                       });
    });
    window_remaining_ = 0;
    for (std::size_t c = 0; c < cities_; ++c) {
      pos_[c] = 0;
      window_remaining_ += buffers_[c].size();
    }
    tree_.rebuild();
  }

  const WorkloadModel* model_;
  StreamParams sp_;
  std::size_t cities_;
  std::size_t minutes_ = 0;
  std::vector<std::size_t> city_n_;
  std::vector<std::unique_ptr<DiscreteSampler>> minute_samplers_;
  std::vector<std::vector<std::uint32_t>> counts_;  // [city][minute]
  std::vector<Window> windows_;
  std::uint64_t total_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t window_remaining_ = 0;
  std::size_t window_idx_ = 0;  // next window to fill
  std::vector<std::vector<Draw>> buffers_;  // current window, per city
  std::vector<std::size_t> pos_;
  util::LoserTree<Less> tree_;
};

std::unique_ptr<RequestStream> WorkloadModel::generate_stream(
    const StreamParams& sp) const {
  return std::make_unique<WorkloadStream>(*this, sp);
}

}  // namespace starcdn::trace
