// SpaceGEN: correlated multi-location synthetic trace generation
// (Algorithm 1 of the paper, §4.2).
//
// Inputs: one pFD per location plus the cross-location GPD, both extracted
// from (limited) production traces. Output: arbitrarily long synthetic
// traces, one per location, that reproduce the production traces' object
// spread, traffic spread, and hit-rate curves (§4.3 / Fig. 6) — the
// properties satellite-based CDN simulation depends on.
#pragma once

#include <string>
#include <vector>

#include "trace/fd.h"
#include "trace/gpd.h"
#include "trace/record.h"
#include "util/rng.h"

namespace starcdn::trace {

struct SpaceGenConfig {
  /// Stop once every location has emitted at least this many requests
  /// scaled by its relative request rate (rate_i / max_rate).
  std::size_t target_requests_per_location = 100'000;
  /// Seconds of synthetic time represented by one generation iteration.
  double tick_s = 1.0;
  std::uint64_t seed = 7;
};

class SpaceGen {
 public:
  SpaceGen(GlobalPopularityDistribution gpd,
           std::vector<FootprintDescriptor> pfds,
           std::vector<std::string> location_names = {});

  /// Convenience: extract both traffic models from a production trace.
  [[nodiscard]] static SpaceGen fit(const MultiTrace& production);

  /// Run Algorithm 1.
  [[nodiscard]] MultiTrace generate(const SpaceGenConfig& config) const;

  [[nodiscard]] const GlobalPopularityDistribution& gpd() const noexcept {
    return gpd_;
  }
  [[nodiscard]] const std::vector<FootprintDescriptor>& pfds() const noexcept {
    return pfds_;
  }
  [[nodiscard]] const std::vector<std::string>& location_names() const noexcept {
    return names_;
  }

 private:
  GlobalPopularityDistribution gpd_;
  std::vector<FootprintDescriptor> pfds_;
  std::vector<std::string> names_;
};

}  // namespace starcdn::trace
