#include "trace/model_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace starcdn::trace {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'D', 'N', 'M', 'D', 'L', '1'};

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("model load: truncated file");
  return v;
}

void put_cell(std::ofstream& out, const FootprintDescriptor::Cell& cell) {
  put(out, static_cast<std::uint32_t>(cell.distances.size()));
  for (const double d : cell.distances) put(out, d);
}

FootprintDescriptor::Cell get_cell(std::ifstream& in) {
  FootprintDescriptor::Cell cell;
  const auto n = get<std::uint32_t>(in);
  if (n > 1'000'000) throw std::runtime_error("model load: corrupt cell size");
  cell.distances.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) cell.distances.push_back(get<double>(in));
  return cell;
}

}  // namespace

void save_models(const SpaceGen& generator, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_models: cannot open " + path);
  out.write(kMagic, sizeof kMagic);

  const auto& names = generator.location_names();
  const auto& pfds = generator.pfds();
  put(out, static_cast<std::uint16_t>(pfds.size()));
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const std::string name = i < names.size() ? names[i] : "";
    put(out, static_cast<std::uint16_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }

  // GPD tuples.
  const auto& gpd = generator.gpd();
  put(out, static_cast<std::uint64_t>(gpd.tuples().size()));
  for (const auto& t : gpd.tuples()) {
    put(out, static_cast<std::uint64_t>(t.size));
    put(out, static_cast<std::uint16_t>(t.popularity.size()));
    for (const auto& [loc, pop] : t.popularity) {
      put(out, loc);
      put(out, pop);
    }
  }

  // pFDs.
  for (const auto& fd : pfds) {
    put(out, fd.request_rate_per_s());
    put(out, static_cast<std::uint64_t>(fd.max_finite_stack_distance()));
    put(out, static_cast<std::uint64_t>(fd.observed_reuses()));
    put(out, fd.mean_interarrival_s());
    put(out, static_cast<std::uint32_t>(fd.cells().size()));
    for (const auto& [key, cell] : fd.cells()) {
      put(out, static_cast<std::int32_t>(key.first));
      put(out, static_cast<std::int32_t>(key.second));
      put_cell(out, cell);
    }
    put(out, static_cast<std::uint32_t>(fd.pop_cells().size()));
    for (const auto& [pb, cell] : fd.pop_cells()) {
      put(out, static_cast<std::int32_t>(pb));
      put_cell(out, cell);
    }
    put_cell(out, fd.global_cell());
  }
  if (!out) throw std::runtime_error("save_models: write failed " + path);
}

SpaceGen load_models(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_models: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_models: bad magic in " + path);
  }

  const auto n_loc = get<std::uint16_t>(in);
  std::vector<std::string> names(n_loc);
  for (auto& name : names) {
    const auto len = get<std::uint16_t>(in);
    name.resize(len);
    in.read(name.data(), len);
    if (!in) throw std::runtime_error("load_models: truncated name");
  }

  const auto tuple_count = get<std::uint64_t>(in);
  std::vector<GlobalPopularityDistribution::Tuple> tuples;
  tuples.reserve(tuple_count);
  for (std::uint64_t i = 0; i < tuple_count; ++i) {
    GlobalPopularityDistribution::Tuple t;
    t.size = get<std::uint64_t>(in);
    const auto entries = get<std::uint16_t>(in);
    t.popularity.reserve(entries);
    for (std::uint16_t k = 0; k < entries; ++k) {
      const auto loc = get<std::uint16_t>(in);
      const auto pop = get<std::uint32_t>(in);
      t.popularity.emplace_back(loc, pop);
    }
    tuples.push_back(std::move(t));
  }

  std::vector<FootprintDescriptor> pfds;
  pfds.reserve(n_loc);
  for (std::uint16_t i = 0; i < n_loc; ++i) {
    const auto rate = get<double>(in);
    const auto max_distance = get<std::uint64_t>(in);
    const auto reuses = get<std::uint64_t>(in);
    const auto mean_interarrival = get<double>(in);
    std::map<std::pair<int, int>, FootprintDescriptor::Cell> cells;
    const auto cell_count = get<std::uint32_t>(in);
    for (std::uint32_t c = 0; c < cell_count; ++c) {
      const auto pb = get<std::int32_t>(in);
      const auto sb = get<std::int32_t>(in);
      cells.emplace(std::pair{pb, sb}, get_cell(in));
    }
    std::map<int, FootprintDescriptor::Cell> pop_cells;
    const auto pop_count = get<std::uint32_t>(in);
    for (std::uint32_t c = 0; c < pop_count; ++c) {
      const auto pb = get<std::int32_t>(in);
      pop_cells.emplace(pb, get_cell(in));
    }
    auto global = get_cell(in);
    pfds.push_back(FootprintDescriptor::from_parts(
        std::move(cells), std::move(pop_cells), std::move(global), rate,
        max_distance, reuses, mean_interarrival));
  }

  return SpaceGen(GlobalPopularityDistribution::from_tuples(std::move(tuples),
                                                            n_loc),
                  std::move(pfds), std::move(names));
}

}  // namespace starcdn::trace
