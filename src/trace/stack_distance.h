// Byte-weighted stack (reuse) distance computation.
//
// The pFD's `d` dimension is the number of *unique bytes* requested between
// consecutive accesses of an object (§4.1). Computing it naively is O(N^2);
// we use the classic Fenwick-tree formulation of Mattson's stack algorithm:
// each resident object contributes its size at its last-access position, and
// the stack distance of a re-access equals the suffix sum of contributions
// after the previous access.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "trace/record.h"

namespace starcdn::trace {

/// Sentinel distance for first-ever (cold) accesses.
inline constexpr double kInfiniteStackDistance =
    std::numeric_limits<double>::infinity();

class StackDistanceTracker {
 public:
  /// Process the next access; returns the byte stack distance since this
  /// object's previous access, or kInfiniteStackDistance on a cold access.
  double access(ObjectId id, Bytes size);

  [[nodiscard]] std::size_t unique_objects() const noexcept {
    return last_pos_.size();
  }

 private:
  void fenwick_add(std::size_t pos, double delta);
  [[nodiscard]] double fenwick_prefix(std::size_t pos) const;
  void rebuild(std::size_t capacity);
  void maybe_compact();

  struct ObjState {
    std::size_t pos;  // 1-based Fenwick position of last access
    Bytes size;
  };

  std::vector<double> tree_ = {0.0};  // 1-based Fenwick array
  std::size_t next_pos_ = 1;
  double total_resident_bytes_ = 0.0;
  std::unordered_map<ObjectId, ObjState> last_pos_;
};

}  // namespace starcdn::trace
