#include "trace/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace starcdn::trace {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    cdf_[i] = acc;
  }
  total_ = acc;
  if (acc <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: all weights zero");
  }
}

std::size_t DiscreteSampler::sample(util::Rng& rng) const {
  return index_of(rng.uniform());
}

std::size_t DiscreteSampler::index_of(double unit) const noexcept {
  const double u = unit * total_;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf_.begin()),
                  cdf_.size() - 1);
}

}  // namespace starcdn::trace
