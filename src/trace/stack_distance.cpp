#include "trace/stack_distance.h"

#include <algorithm>

namespace starcdn::trace {

void StackDistanceTracker::fenwick_add(std::size_t pos, double delta) {
  for (; pos < tree_.size(); pos += pos & (~pos + 1)) tree_[pos] += delta;
}

double StackDistanceTracker::fenwick_prefix(std::size_t pos) const {
  double s = 0.0;
  for (; pos > 0; pos -= pos & (~pos + 1)) s += tree_[pos];
  return s;
}

void StackDistanceTracker::rebuild(std::size_t capacity) {
  // A Fenwick array cannot simply grow: the new high-index nodes must
  // incorporate existing contributions. Rebuild from the live objects
  // (dead positions carry no weight). Amortized O(1) per access since the
  // capacity at least doubles each time.
  tree_.assign(std::max<std::size_t>(capacity, 2), 0.0);
  for (const auto& [id, st] : last_pos_) {
    (void)id;
    fenwick_add(st.pos, static_cast<double>(st.size));
  }
}

void StackDistanceTracker::maybe_compact() {
  // Positions grow monotonically; when the index space is mostly dead
  // weight, renumber live objects by recency order and rebuild densely.
  if (next_pos_ < (1u << 20) || last_pos_.size() * 4 > next_pos_) return;
  std::vector<std::pair<std::size_t, ObjectId>> order;
  order.reserve(last_pos_.size());
  for (const auto& [id, st] : last_pos_) order.emplace_back(st.pos, id);
  std::sort(order.begin(), order.end());
  next_pos_ = 1;
  for (const auto& [old_pos, id] : order) {
    (void)old_pos;
    last_pos_[id].pos = next_pos_++;
  }
  rebuild(next_pos_ + 1);
}

double StackDistanceTracker::access(ObjectId id, Bytes size) {
  const auto it = last_pos_.find(id);
  double dist = kInfiniteStackDistance;
  if (it != last_pos_.end()) {
    // Unique bytes after the previous access = total - prefix(last pos).
    dist = total_resident_bytes_ - fenwick_prefix(it->second.pos);
    fenwick_add(it->second.pos, -static_cast<double>(it->second.size));
    total_resident_bytes_ -= static_cast<double>(it->second.size);
  }
  const std::size_t pos = next_pos_++;
  last_pos_[id] = {pos, size};
  total_resident_bytes_ += static_cast<double>(size);
  if (pos >= tree_.size()) {
    rebuild(tree_.size() * 2 + pos + 1);
  } else {
    fenwick_add(pos, static_cast<double>(size));
  }
  maybe_compact();
  return dist;
}

}  // namespace starcdn::trace
