// Popularity-Size Footprint Descriptors (pFD) — §4.1.
//
// A pFD models a single location's access pattern as the joint distribution
// p(popularity, size, stack-distance, inter-arrival). We represent it the
// way TRAGEN/JEDI-style tools do in practice: log-binned (popularity, size)
// cells, each holding an empirical sample set of observed byte stack
// distances (so sampling d from p(d | p, s) is a bootstrap draw), plus the
// location's aggregate request rate for timestamp assignment.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"

namespace starcdn::trace {

class FootprintDescriptor {
 public:
  /// Extract a pFD from one location's production trace.
  [[nodiscard]] static FootprintDescriptor extract(const LocationTrace& trace);

  /// Sample a byte stack distance from p(d | popularity, size); falls back
  /// to coarser conditioning (popularity only, then global) for cells the
  /// production trace never populated.
  [[nodiscard]] Bytes sample_stack_distance(std::uint32_t popularity,
                                            Bytes size, util::Rng& rng) const;

  /// Aggregate request rate (requests/second) of the source trace.
  [[nodiscard]] double request_rate_per_s() const noexcept { return rate_; }

  /// Largest finite byte stack distance observed; Algorithm 1 fills each
  /// location's stack to at least this depth before generation starts.
  [[nodiscard]] Bytes max_finite_stack_distance() const noexcept {
    return max_distance_;
  }

  [[nodiscard]] std::size_t observed_reuses() const noexcept {
    return total_reuses_;
  }
  [[nodiscard]] double mean_interarrival_s() const noexcept {
    return mean_interarrival_;
  }

  // Binning shared with the tests.
  [[nodiscard]] static int pop_bin(std::uint32_t popularity) noexcept;
  [[nodiscard]] static int size_bin(Bytes size) noexcept;

  struct Cell {
    std::vector<double> distances;  // reservoir of observed d values
  };

  // --- Serialization access (model_io.h): the paper publishes its fitted
  // traffic models for download; these accessors let the IO layer
  // round-trip a descriptor without friending it into the format code.
  [[nodiscard]] const std::map<std::pair<int, int>, Cell>& cells()
      const noexcept {
    return cells_;
  }
  [[nodiscard]] const std::map<int, Cell>& pop_cells() const noexcept {
    return pop_cells_;
  }
  [[nodiscard]] const Cell& global_cell() const noexcept { return global_; }

  /// Rebuild a descriptor from serialized state.
  [[nodiscard]] static FootprintDescriptor from_parts(
      std::map<std::pair<int, int>, Cell> cells, std::map<int, Cell> pop_cells,
      Cell global, double rate, Bytes max_distance, std::size_t reuses,
      double mean_interarrival);

 private:

  static constexpr std::size_t kReservoir = 512;

  void add_distance(int pb, int sb, double d, std::uint64_t& reservoir_seen);

  std::map<std::pair<int, int>, Cell> cells_;
  std::map<int, Cell> pop_cells_;  // marginal over size
  Cell global_;
  double rate_ = 1.0;
  Bytes max_distance_ = 0;
  std::size_t total_reuses_ = 0;
  double mean_interarrival_ = 0.0;
};

}  // namespace starcdn::trace
