// Byte-indexed ordered stack — the data structure behind SpaceGEN's
// Algorithm 1.
//
// Algorithm 1 maintains, per location, an ordered list of objects. Each
// iteration pops the top object and reinserts it at the first position
// whose byte prefix sum reaches a sampled stack distance d. A vector would
// make each insert O(n); we use an implicit treap with subtree byte sums so
// pop-front and insert-at-byte-offset are O(log n) — this is what makes
// multi-billion-request generation tractable in the paper's tool and
// multi-million-request generation instant here.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/record.h"

namespace starcdn::trace {

/// Entry carried through the stack: the synthetic object's identity plus
/// its popularity budget (total requests it must receive).
struct StackItem {
  ObjectId object = 0;
  Bytes size = 0;
  std::uint32_t popularity = 0;   // target request count at this location
  std::uint32_t emitted = 0;      // requests emitted so far
};

class ByteStack {
 public:
  ByteStack() = default;
  ~ByteStack();
  ByteStack(ByteStack&&) noexcept;
  ByteStack& operator=(ByteStack&&) noexcept;
  ByteStack(const ByteStack&) = delete;
  ByteStack& operator=(const ByteStack&) = delete;

  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] Bytes total_bytes() const noexcept;

  /// Push onto the top of the stack.
  void push_front(const StackItem& item);
  /// Append to the bottom of the stack.
  void push_back(const StackItem& item);

  /// Remove and return the top item; stack must be non-empty.
  StackItem pop_front();

  /// Insert such that the byte sum of items strictly above it is the
  /// smallest value >= `depth_bytes` achievable (i.e. at the first position
  /// where the prefix byte sum reaches the sampled stack distance). Depths
  /// beyond the total insert at the bottom.
  void insert_at_depth(Bytes depth_bytes, const StackItem& item);

  /// Opaque treap node; public only so file-local helpers can name it.
  struct Node;

 private:
  Node* root_ = nullptr;
  std::uint64_t rng_state_ = 0x853c49e6748fea9bULL;

  std::uint64_t next_priority() noexcept;
  static void destroy(Node* n) noexcept;
};

}  // namespace starcdn::trace
