// Global Popularity Distribution (GPD) — §4.1.
//
// The GPD is the joint distribution P(p_1, ..., p_n, s): for an object, its
// popularity at each of the n locations together with its size. We keep the
// empirical joint — one tuple per production object — and sample tuples by
// bootstrap, which preserves all cross-location popularity correlations
// (the property SpaceGEN exists to reproduce; TRAGEN/JEDI only model one
// location at a time).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"

namespace starcdn::trace {

class GlobalPopularityDistribution {
 public:
  /// Sparse popularity vector: (location, request count) pairs, plus size.
  struct Tuple {
    Bytes size = 0;
    std::vector<std::pair<std::uint16_t, std::uint32_t>> popularity;

    [[nodiscard]] std::uint32_t popularity_at(std::uint16_t loc) const noexcept {
      for (const auto& [l, p] : popularity) {
        if (l == loc) return p;
      }
      return 0;
    }
    /// Number of locations with non-zero popularity (the "object spread"
    /// statistic of Fig. 6a).
    [[nodiscard]] std::size_t spread() const noexcept {
      return popularity.size();
    }
  };

  /// Extract from a multi-location production trace.
  [[nodiscard]] static GlobalPopularityDistribution extract(
      const MultiTrace& traces);

  /// Rebuild from serialized tuples (model_io.h).
  [[nodiscard]] static GlobalPopularityDistribution from_tuples(
      std::vector<Tuple> tuples, std::size_t locations) {
    GlobalPopularityDistribution gpd;
    gpd.tuples_ = std::move(tuples);
    gpd.locations_ = locations;
    return gpd;
  }

  /// Bootstrap-sample one object tuple.
  [[nodiscard]] const Tuple& sample(util::Rng& rng) const {
    return tuples_[rng.below(tuples_.size())];
  }

  [[nodiscard]] std::size_t object_count() const noexcept {
    return tuples_.size();
  }
  [[nodiscard]] std::size_t locations() const noexcept { return locations_; }
  [[nodiscard]] const std::vector<Tuple>& tuples() const noexcept {
    return tuples_;
  }

 private:
  std::vector<Tuple> tuples_;
  std::size_t locations_ = 0;
};

}  // namespace starcdn::trace
