// Traffic-model persistence: save and load fitted SpaceGEN models.
//
// The paper publishes its Akamai-derived traffic models (GPD + per-location
// pFDs) for public download so others can generate traces without the raw
// logs (§4.1). This module provides the equivalent artifact path: fit once,
// `save_models`, ship the file, `load_models`, generate anywhere.
//
// Binary layout (little-endian):
//   magic "SCDNMDL1"
//   u16 location_count
//   per location: u16 name_len, name bytes
//   --- GPD ---
//   u64 tuple_count
//   per tuple: u64 size, u16 entries, entries x { u16 loc, u32 popularity }
//   --- pFDs (location_count of them) ---
//   f64 rate, u64 max_distance, u64 reuses, f64 mean_interarrival
//   u32 cell_count,     cells x { i32 pb, i32 sb, u32 n, n x f64 }
//   u32 pop_cell_count, cells x { i32 pb, u32 n, n x f64 }
//   u32 global_n, global_n x f64
#pragma once

#include <string>

#include "trace/spacegen.h"

namespace starcdn::trace {

/// Persist a fitted generator's models; throws std::runtime_error on IO
/// failure.
void save_models(const SpaceGen& generator, const std::string& path);

/// Load models previously written by save_models; throws
/// std::runtime_error on IO or format errors.
[[nodiscard]] SpaceGen load_models(const std::string& path);

}  // namespace starcdn::trace
