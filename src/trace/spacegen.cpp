#include "trace/spacegen.h"

#include <algorithm>
#include <stdexcept>

#include "trace/bytestack.h"

namespace starcdn::trace {

SpaceGen::SpaceGen(GlobalPopularityDistribution gpd,
                   std::vector<FootprintDescriptor> pfds,
                   std::vector<std::string> location_names)
    : gpd_(std::move(gpd)), pfds_(std::move(pfds)), names_(std::move(location_names)) {
  if (pfds_.size() != gpd_.locations()) {
    throw std::invalid_argument("SpaceGen: pFD count must match GPD locations");
  }
}

SpaceGen SpaceGen::fit(const MultiTrace& production) {
  std::vector<FootprintDescriptor> pfds;
  std::vector<std::string> names;
  pfds.reserve(production.size());
  for (const auto& t : production) {
    pfds.push_back(FootprintDescriptor::extract(t));
    names.push_back(t.location_name);
  }
  return SpaceGen(GlobalPopularityDistribution::extract(production),
                  std::move(pfds), std::move(names));
}

MultiTrace SpaceGen::generate(const SpaceGenConfig& config) const {
  const std::size_t n_loc = pfds_.size();
  util::Rng rng(config.seed);

  // --- Phase 1: initialization (Algorithm 1 lines 3-15) -------------------
  // Per-location stacks; objects drawn from the GPD enter the stack of
  // every location where their sampled popularity is non-zero.
  std::vector<ByteStack> stacks(n_loc);
  ObjectId next_object = 1;

  const auto sample_new_object = [&](std::size_t only_if_involves =
                                         static_cast<std::size_t>(-1)) {
    // Draw a GPD tuple, mint a fresh synthetic object id, and push it to
    // the bottom of each involved location's stack (bottom: a brand-new
    // object has not been accessed recently anywhere).
    for (;;) {
      const auto& tup = gpd_.sample(rng);
      if (only_if_involves != static_cast<std::size_t>(-1)) {
        if (tup.popularity_at(static_cast<std::uint16_t>(only_if_involves)) ==
            0) {
          continue;  // retry until the depleted location gains an object
        }
      }
      const ObjectId id = next_object++;
      for (const auto& [loc, pop] : tup.popularity) {
        StackItem item;
        item.object = id;
        item.size = tup.size;
        item.popularity = pop;
        // Algorithm 1 line 11/25: new objects append to the stack bottom
        // (a brand-new object has not been accessed recently anywhere).
        stacks[loc].push_back(item);
      }
      return;
    }
  };

  for (std::size_t i = 0; i < n_loc; ++i) {
    const Bytes need = std::max<Bytes>(pfds_[i].max_finite_stack_distance(), 1);
    // Guard against degenerate GPDs that never touch location i.
    bool reachable = false;
    for (const auto& t : gpd_.tuples()) {
      if (t.popularity_at(static_cast<std::uint16_t>(i)) > 0) {
        reachable = true;
        break;
      }
    }
    if (!reachable) continue;
    while (stacks[i].total_bytes() < need) sample_new_object(i);
  }

  // --- Phase 2: generation (Algorithm 1 lines 16-35) ----------------------
  MultiTrace out(n_loc);
  double max_rate = 0.0;
  for (const auto& fd : pfds_) max_rate = std::max(max_rate, fd.request_rate_per_s());
  if (max_rate <= 0.0) max_rate = 1.0;

  std::vector<double> req_rate(n_loc), counter(n_loc, 0.0);
  std::vector<double> last_ts(n_loc, -1.0);
  std::vector<std::size_t> target(n_loc);
  for (std::size_t i = 0; i < n_loc; ++i) {
    req_rate[i] = pfds_[i].request_rate_per_s() * config.tick_s;
    target[i] = static_cast<std::size_t>(
        static_cast<double>(config.target_requests_per_location) *
        pfds_[i].request_rate_per_s() / max_rate);
    out[i].location = static_cast<std::uint16_t>(i);
    out[i].location_name = i < names_.size() ? names_[i] : "loc" + std::to_string(i);
    out[i].requests.reserve(target[i]);
  }

  const auto done = [&] {
    for (std::size_t i = 0; i < n_loc; ++i) {
      if (out[i].requests.size() < target[i]) return false;
    }
    return true;
  };

  for (std::uint64_t tick = 0; !done(); ++tick) {
    for (std::size_t i = 0; i < n_loc; ++i) {
      counter[i] += req_rate[i];
      while (counter[i] >= 1.0 && out[i].requests.size() < target[i]) {
        counter[i] -= 1.0;
        if (stacks[i].empty()) sample_new_object(i);
        StackItem item = stacks[i].pop_front();

        Request r;
        r.object = item.object;
        r.size = item.size;
        r.location = static_cast<std::uint16_t>(i);
        // Jittered within the tick but clamped monotone per location.
        r.timestamp_s = std::max(
            (static_cast<double>(tick) + rng.uniform()) * config.tick_s,
            last_ts[i] + 1e-6);
        last_ts[i] = r.timestamp_s;
        out[i].requests.push_back(r);

        ++item.emitted;
        if (item.emitted >= item.popularity) {
          // Popularity budget exhausted at this location: the object
          // retires and a fresh one enters the system (line 25).
          sample_new_object(i);
        } else {
          const Bytes d = pfds_[i].sample_stack_distance(item.popularity,
                                                         item.size, rng);
          stacks[i].insert_at_depth(d, item);
        }
      }
    }
  }
  return out;
}

}  // namespace starcdn::trace
