// Trace persistence: a compact binary format for generated traces plus CSV
// export for interoperability with external cache simulators.
//
// Binary layout (little-endian):
//   magic "SCDNTRC1" (8 bytes)
//   u16 location    u16 name_len    bytes name
//   u64 request_count
//   request_count x { f64 timestamp_s, u64 object, u64 size, u16 location }
#pragma once

#include <string>

#include "trace/record.h"

namespace starcdn::trace {

/// Write one location trace; throws std::runtime_error on IO failure.
void write_binary(const LocationTrace& trace, const std::string& path);

/// Read one location trace; throws std::runtime_error on IO/format errors.
[[nodiscard]] LocationTrace read_binary(const std::string& path);

/// CSV with header "timestamp_s,object,size,location".
void write_csv(const LocationTrace& trace, const std::string& path);
[[nodiscard]] LocationTrace read_csv_trace(const std::string& path);

}  // namespace starcdn::trace
