// Trace persistence: a compact binary format for generated traces plus CSV
// export for interoperability with external cache simulators.
//
// Binary layout (little-endian):
//   magic "SCDNTRC1" (8 bytes)
//   u16 location    u16 name_len    bytes name
//   u64 request_count
//   request_count x { f64 timestamp_s, u64 object, u64 size, u16 location }
// Streamed layout (magic "SCDNSTR1"): u64 total request count, then blocks
// of u32 count followed by the block's SoA columns as packed arrays
// (f64 timestamp_s[], u64 object[], u64 size[], u16 location[]); a zero
// count terminates. Chunked both ways, so neither writing nor reading ever
// materializes the trace.
#pragma once

#include <memory>
#include <string>

#include "trace/record.h"
#include "trace/stream.h"

namespace starcdn::trace {

/// Write one location trace; throws std::runtime_error on IO failure.
void write_binary(const LocationTrace& trace, const std::string& path);

/// Read one location trace; throws std::runtime_error on IO/format errors.
[[nodiscard]] LocationTrace read_binary(const std::string& path);

/// Drain `stream` to the streamed binary format, one block per next();
/// throws std::runtime_error on IO failure.
void write_binary_stream(RequestStream& stream, const std::string& path);

/// Open a streamed binary trace for chunked reading; blocks come back with
/// the sizes they were written with. Throws std::runtime_error on IO/format
/// errors (including, lazily, from next() on truncation).
[[nodiscard]] std::unique_ptr<RequestStream> open_binary_stream(
    const std::string& path);

/// CSV with header "timestamp_s,object,size,location".
void write_csv(const LocationTrace& trace, const std::string& path);
[[nodiscard]] LocationTrace read_csv_trace(const std::string& path);

}  // namespace starcdn::trace
