#include "trace/fd.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "trace/stack_distance.h"
#include "util/hash.h"

namespace starcdn::trace {

int FootprintDescriptor::pop_bin(std::uint32_t popularity) noexcept {
  // log2 bins: 1, 2, 3-4, 5-8, ...
  return popularity <= 1
             ? 0
             : 1 + static_cast<int>(std::log2(static_cast<double>(popularity - 1)));
}

int FootprintDescriptor::size_bin(Bytes size) noexcept {
  // log2 bins anchored at 1 KiB.
  const double kb = std::max(1.0, static_cast<double>(size) / 1024.0);
  return static_cast<int>(std::log2(kb));
}

void FootprintDescriptor::add_distance(int pb, int sb, double d,
                                       std::uint64_t& reservoir_seen) {
  ++reservoir_seen;
  const auto put = [&](Cell& cell) {
    if (cell.distances.size() < kReservoir) {
      cell.distances.push_back(d);
    } else {
      const auto slot =
          util::splitmix64(reservoir_seen * 0x9e37u + cell.distances.size()) %
          reservoir_seen;
      if (slot < kReservoir) cell.distances[slot] = d;
    }
  };
  put(cells_[{pb, sb}]);
  put(pop_cells_[pb]);
  put(global_);
}

FootprintDescriptor FootprintDescriptor::extract(const LocationTrace& trace) {
  FootprintDescriptor fd;
  if (trace.requests.empty()) return fd;

  // Pass 1: per-object popularity (the pFD conditions d on it).
  std::unordered_map<ObjectId, std::uint32_t> popularity;
  for (const auto& r : trace.requests) ++popularity[r.object];

  // Pass 2: byte stack distances and inter-arrival times.
  StackDistanceTracker tracker;
  std::unordered_map<ObjectId, double> last_ts;
  double interarrival_sum = 0.0;
  std::size_t interarrival_n = 0;
  std::uint64_t reservoir_seen = 0;
  for (const auto& r : trace.requests) {
    const double d = tracker.access(r.object, r.size);
    if (d != kInfiniteStackDistance) {
      fd.add_distance(pop_bin(popularity[r.object]), size_bin(r.size), d,
                      reservoir_seen);
      fd.max_distance_ = std::max(fd.max_distance_, static_cast<Bytes>(d));
      ++fd.total_reuses_;
    }
    if (const auto it = last_ts.find(r.object); it != last_ts.end()) {
      interarrival_sum += r.timestamp_s - it->second;
      ++interarrival_n;
    }
    last_ts[r.object] = r.timestamp_s;
  }
  if (interarrival_n > 0) {
    fd.mean_interarrival_ = interarrival_sum / static_cast<double>(interarrival_n);
  }
  const double span = trace.requests.back().timestamp_s -
                      trace.requests.front().timestamp_s;
  fd.rate_ = span > 0.0
                 ? static_cast<double>(trace.requests.size()) / span
                 : static_cast<double>(trace.requests.size());
  return fd;
}

FootprintDescriptor FootprintDescriptor::from_parts(
    std::map<std::pair<int, int>, Cell> cells, std::map<int, Cell> pop_cells,
    Cell global, double rate, Bytes max_distance, std::size_t reuses,
    double mean_interarrival) {
  FootprintDescriptor fd;
  fd.cells_ = std::move(cells);
  fd.pop_cells_ = std::move(pop_cells);
  fd.global_ = std::move(global);
  fd.rate_ = rate;
  fd.max_distance_ = max_distance;
  fd.total_reuses_ = reuses;
  fd.mean_interarrival_ = mean_interarrival;
  return fd;
}

Bytes FootprintDescriptor::sample_stack_distance(std::uint32_t popularity,
                                                 Bytes size,
                                                 util::Rng& rng) const {
  const int pb = pop_bin(popularity);
  const int sb = size_bin(size);
  const Cell* cell = nullptr;
  if (const auto it = cells_.find({pb, sb});
      it != cells_.end() && !it->second.distances.empty()) {
    cell = &it->second;
  } else if (const auto pit = pop_cells_.find(pb);
             pit != pop_cells_.end() && !pit->second.distances.empty()) {
    cell = &pit->second;
  } else if (!global_.distances.empty()) {
    cell = &global_;
  }
  if (!cell) return 0;
  const auto& d = cell->distances;
  return static_cast<Bytes>(d[rng.below(d.size())]);
}

}  // namespace starcdn::trace
