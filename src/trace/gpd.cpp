#include "trace/gpd.h"

#include <unordered_map>

namespace starcdn::trace {

GlobalPopularityDistribution GlobalPopularityDistribution::extract(
    const MultiTrace& traces) {
  GlobalPopularityDistribution gpd;
  gpd.locations_ = traces.size();

  struct Acc {
    Bytes size = 0;
    std::unordered_map<std::uint16_t, std::uint32_t> pops;
  };
  std::unordered_map<ObjectId, Acc> acc;
  for (const auto& t : traces) {
    for (const auto& r : t.requests) {
      Acc& a = acc[r.object];
      a.size = r.size;
      ++a.pops[t.location];
    }
  }
  gpd.tuples_.reserve(acc.size());
  for (auto& [id, a] : acc) {
    (void)id;
    Tuple tup;
    tup.size = a.size;
    tup.popularity.assign(a.pops.begin(), a.pops.end());
    gpd.tuples_.push_back(std::move(tup));
  }
  return gpd;
}

}  // namespace starcdn::trace
