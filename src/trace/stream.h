// Chunked, pull-based request streaming — the O(chunk)-memory alternative
// to materializing a whole trace as std::vector<Request> (32 bytes per
// request puts the paper's 423M-request video day at ~13.5 GB; a 64K-request
// chunk is ~2 MB).
//
// RequestBlock is a structure-of-arrays chunk: the simulator's stage-1
// context fan-out walks timestamps and locations only, and SoA keeps those
// scans dense instead of striding 32-byte AoS records. RequestStream is the
// producer interface; adapters bridge the legacy vector/MultiTrace paths in
// both directions. DESIGN.md §12 documents the pipeline contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "trace/record.h"

namespace starcdn::trace {

/// Default requests per chunk (~2 MB of SoA payload): big enough to
/// amortize per-chunk overhead, small enough to stay cache- and
/// memory-friendly.
inline constexpr std::size_t kDefaultChunkRequests = 64 * 1024;

/// A structure-of-arrays chunk of requests. Column i of every array
/// describes one request; the arrays always have equal length.
class RequestBlock {
 public:
  std::vector<double> timestamp_s;
  std::vector<ObjectId> object;
  std::vector<Bytes> size;
  std::vector<std::uint16_t> location;

  [[nodiscard]] std::size_t count() const noexcept { return object.size(); }
  [[nodiscard]] bool empty() const noexcept { return object.empty(); }

  void clear() noexcept {
    timestamp_s.clear();
    object.clear();
    size.clear();
    location.clear();
  }

  void reserve(std::size_t n) {
    timestamp_s.reserve(n);
    object.reserve(n);
    size.reserve(n);
    location.reserve(n);
  }

  void push_back(const Request& r) {
    timestamp_s.push_back(r.timestamp_s);
    object.push_back(r.object);
    size.push_back(r.size);
    location.push_back(r.location);
  }

  [[nodiscard]] Request at(std::size_t i) const noexcept {
    return Request{timestamp_s[i], object[i], size[i], location[i]};
  }

  [[nodiscard]] Bytes total_bytes() const noexcept {
    Bytes b = 0;
    for (const Bytes s : size) b += s;
    return b;
  }
};

/// Non-owning view over one chunk of requests in either layout (raw AoS
/// span or SoA block), so the simulator's replay helpers run unchanged —
/// and without copying — on both the legacy vector path and the stream
/// path.
class RequestView {
 public:
  RequestView(const Request* aos, std::size_t n) noexcept
      : aos_(aos), n_(n) {}
  explicit RequestView(const RequestBlock& block) noexcept
      : block_(&block), n_(block.count()) {}

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] Request operator[](std::size_t i) const noexcept {
    return aos_ != nullptr ? aos_[i] : block_->at(i);
  }
  [[nodiscard]] double timestamp_s(std::size_t i) const noexcept {
    return aos_ != nullptr ? aos_[i].timestamp_s : block_->timestamp_s[i];
  }
  [[nodiscard]] std::uint16_t location(std::size_t i) const noexcept {
    return aos_ != nullptr ? aos_[i].location : block_->location[i];
  }

 private:
  const Request* aos_ = nullptr;
  const RequestBlock* block_ = nullptr;
  std::size_t n_;
};

/// Pull-based producer of globally time-ordered request chunks.
///
/// Contract: next() clears `out`, fills it with the next chunk and returns
/// true, or returns false at end of stream (leaving `out` empty). A stream
/// never yields an empty block, and concatenating all yielded blocks is the
/// complete time-ordered trace. Chunk sizes may vary between calls; only
/// the concatenation is specified.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  [[nodiscard]] virtual bool next(RequestBlock& out) = 0;

  /// Total number of requests this stream will yield, when known up front
  /// (generators know, arbitrary sources may not).
  [[nodiscard]] virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }
};

/// Adapter: chunked stream over an already-materialized vector. Does not
/// own the vector; it must outlive the stream.
class VectorStream final : public RequestStream {
 public:
  explicit VectorStream(const std::vector<Request>& requests,
                        std::size_t chunk_requests = kDefaultChunkRequests);

  [[nodiscard]] bool next(RequestBlock& out) override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return requests_->size();
  }

 private:
  const std::vector<Request>* requests_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

/// Adapter: globally time-ordered stream over per-location traces without
/// building the merged O(trace) copy — a k-way loser-tree merge with
/// merge_by_time's tie-break (timestamp, then trace index, then position).
/// Does not own the traces; they must outlive the stream.
class MultiTraceStream final : public RequestStream {
 public:
  explicit MultiTraceStream(const MultiTrace& traces,
                            std::size_t chunk_requests = kDefaultChunkRequests);
  ~MultiTraceStream() override;
  MultiTraceStream(MultiTraceStream&&) = delete;

  [[nodiscard]] bool next(RequestBlock& out) override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return total_;
  }

 private:
  struct Merge;  // loser tree + per-trace cursors
  const MultiTrace* traces_;
  std::size_t chunk_;
  std::uint64_t total_ = 0;
  std::uint64_t remaining_ = 0;
  std::unique_ptr<Merge> merge_;
};

/// Drain a stream into a materialized vector (tests and small scales; at
/// paper scale this is exactly the allocation streaming exists to avoid).
[[nodiscard]] std::vector<Request> collect(RequestStream& stream);

}  // namespace starcdn::trace
