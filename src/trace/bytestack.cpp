#include "trace/bytestack.h"

#include <utility>

#include "util/hash.h"

namespace starcdn::trace {

struct ByteStack::Node {
  StackItem item;
  std::uint64_t priority;
  Bytes subtree_bytes;
  std::size_t subtree_count;
  Node* left = nullptr;
  Node* right = nullptr;

  Node(const StackItem& it, std::uint64_t prio)
      : item(it), priority(prio), subtree_bytes(it.size), subtree_count(1) {}
};

namespace {

using Node = ByteStack::Node;

}  // namespace

// Static helpers operating on the node type; defined as members' friends via
// file-local functions taking Node*.
namespace {

Bytes bytes_of(const Node* n) noexcept { return n ? n->subtree_bytes : 0; }
std::size_t count_of(const Node* n) noexcept { return n ? n->subtree_count : 0; }

void update(Node* n) noexcept {
  n->subtree_bytes = n->item.size + bytes_of(n->left) + bytes_of(n->right);
  n->subtree_count = 1 + count_of(n->left) + count_of(n->right);
}

/// Split so that `left` is the *minimal* prefix whose byte sum reaches
/// `depth` — Algorithm 1 inserts at the first position j where
/// sum_{k<j} size_k >= d.
void split_by_bytes(Node* n, Bytes depth, Node*& left, Node*& right) {
  if (!n) {
    left = right = nullptr;
    return;
  }
  if (depth == 0) {  // an empty prefix already satisfies the bound
    left = nullptr;
    right = n;
    return;
  }
  const Bytes left_bytes = bytes_of(n->left);
  if (left_bytes >= depth) {
    // The bound is reached inside the left subtree.
    split_by_bytes(n->left, depth, left, n->left);
    right = n;
    update(right);
  } else {
    // This node is needed in the prefix; whatever depth it does not cover
    // continues into the right subtree (saturating at zero).
    const Bytes covered = left_bytes + n->item.size;
    const Bytes rem = depth > covered ? depth - covered : 0;
    split_by_bytes(n->right, rem, n->right, right);
    left = n;
    update(left);
  }
}

/// Split off the first `k` nodes into `left`.
void split_by_count(Node* n, std::size_t k, Node*& left, Node*& right) {
  if (!n) {
    left = right = nullptr;
    return;
  }
  if (count_of(n->left) + 1 <= k) {
    split_by_count(n->right, k - count_of(n->left) - 1, n->right, right);
    left = n;
    update(left);
  } else {
    split_by_count(n->left, k, left, n->left);
    right = n;
    update(right);
  }
}

Node* merge(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->priority > b->priority) {
    a->right = merge(a->right, b);
    update(a);
    return a;
  }
  b->left = merge(a, b->left);
  update(b);
  return b;
}

}  // namespace

ByteStack::~ByteStack() { destroy(root_); }

ByteStack::ByteStack(ByteStack&& o) noexcept
    : root_(std::exchange(o.root_, nullptr)), rng_state_(o.rng_state_) {}

ByteStack& ByteStack::operator=(ByteStack&& o) noexcept {
  if (this != &o) {
    destroy(root_);
    root_ = std::exchange(o.root_, nullptr);
    rng_state_ = o.rng_state_;
  }
  return *this;
}

void ByteStack::destroy(Node* n) noexcept {
  if (!n) return;
  destroy(n->left);
  destroy(n->right);
  delete n;
}

std::uint64_t ByteStack::next_priority() noexcept {
  rng_state_ = util::splitmix64(rng_state_);
  return rng_state_;
}

std::size_t ByteStack::size() const noexcept { return count_of(root_); }
Bytes ByteStack::total_bytes() const noexcept { return bytes_of(root_); }

void ByteStack::push_front(const StackItem& item) {
  root_ = merge(new Node(item, next_priority()), root_);
}

void ByteStack::push_back(const StackItem& item) {
  root_ = merge(root_, new Node(item, next_priority()));
}

StackItem ByteStack::pop_front() {
  Node* first = nullptr;
  Node* rest = nullptr;
  split_by_count(root_, 1, first, rest);
  const StackItem item = first->item;
  delete first;
  root_ = rest;
  return item;
}

void ByteStack::insert_at_depth(Bytes depth_bytes, const StackItem& item) {
  Node* left = nullptr;
  Node* right = nullptr;
  split_by_bytes(root_, depth_bytes, left, right);
  root_ = merge(merge(left, new Node(item, next_priority())), right);
}

}  // namespace starcdn::trace
