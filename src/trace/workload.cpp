#include "trace/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

#include "util/hash.h"

namespace starcdn::trace {

const char* to_string(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kVideo: return "video";
    case TrafficClass::kWeb: return "web";
    case TrafficClass::kDownload: return "download";
  }
  return "?";
}

WorkloadParams default_params(TrafficClass c) {
  WorkloadParams p;
  p.traffic_class = c;
  switch (c) {
    case TrafficClass::kVideo:
      // Video: multi-MB segments dominating bytes, heavy request volume,
      // strong reuse (512 TB served from a 24 TB footprint, §3.1.1).
      p.object_count = 300'000;
      p.requests_per_weight = 150'000;
      p.zipf_alpha = 1.2;
      p.size_mu = 15.9;  // median ≈ 8 MB
      p.size_sigma = 1.1;
      break;
    case TrafficClass::kWeb:
      // Web: many small objects, flatter popularity, broader geographic
      // reach of popular pages.
      p.object_count = 400'000;
      p.requests_per_weight = 50'000;
      p.zipf_alpha = 1.0;
      p.size_mu = 12.2;  // median ≈ 200 KB
      p.size_sigma = 1.4;
      p.global_fraction = 0.05;
      p.same_language_family = 0.45;
      p.cross_region = 0.35;
      break;
    case TrafficClass::kDownload:
      // Downloads: fewer, large objects (software images), very wide reach
      // (the same update ships worldwide), moderate request volume.
      p.object_count = 60'000;
      p.requests_per_weight = 12'000;
      p.zipf_alpha = 0.95;
      p.size_mu = 16.3;  // median ≈ 12 MB
      p.size_sigma = 1.3;
      p.global_fraction = 0.20;
      p.same_language_family = 0.7;
      p.cross_region = 0.6;
      break;
  }
  return p;
}

double region_affinity(const std::string& a, const std::string& b,
                       const WorkloadParams& params) {
  if (a == b) return 1.0;
  const auto family = [](const std::string& r) {
    const auto dash = r.find('-');
    return dash == std::string::npos ? r : r.substr(0, dash);
  };
  if (family(a) == family(b)) return params.same_language_family;
  return params.cross_region;
}

namespace {

/// Per-(object, region) crossing gate. Affinity acts as the *probability*
/// that a piece of content is consumed in a foreign region at all, not as a
/// popularity dampener: a German user either watches a British show or —
/// far more often (Table 2) — never touches it. The gate is a deterministic
/// hash so every city of the same region agrees.
bool crosses_region(ObjectId id, const std::string& target_region,
                    double gate_probability) {
  if (gate_probability >= 1.0) return true;
  const std::uint64_t h = util::hash_combine(util::splitmix64(id + 0x9e37),
                                             util::fnv1a(target_region));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < gate_probability;
}

}  // namespace

WorkloadModel::WorkloadModel(const std::vector<util::City>& cities,
                             const WorkloadParams& params)
    : cities_(&cities), params_(params) {
  if (cities.empty()) throw std::invalid_argument("WorkloadModel: no cities");
  build_universe();
  build_city_tables();
}

void WorkloadModel::build_universe() {
  const std::size_t n = params_.object_count;
  sizes_.resize(n);
  base_weight_.resize(n);
  reach_km_.resize(n);
  home_city_.resize(n);
  global_.assign(n, false);

  util::Rng rng(params_.seed);
  // Home city sampled by traffic weight.
  std::vector<double> city_w;
  city_w.reserve(cities_->size());
  for (const auto& c : *cities_) city_w.push_back(c.traffic_weight);
  const DiscreteSampler home_sampler(city_w);
  const ZipfSampler pop_rank(n, params_.zipf_alpha);

  // Assign Zipf popularity by giving object i the weight of a random rank;
  // shuffling ranks keeps object ids uncorrelated with popularity.
  std::vector<std::size_t> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng.below(i)]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    sizes_[i] = static_cast<Bytes>(
        std::max(1.0, rng.lognormal(params_.size_mu, params_.size_sigma)));
    const double w =
        std::pow(static_cast<double>(ranks[i] + 1), -params_.zipf_alpha);
    base_weight_[i] = static_cast<float>(w);
    home_city_[i] = static_cast<std::uint16_t>(home_sampler.sample(rng));
    global_[i] = rng.bernoulli(params_.global_fraction);
    const double reach =
        rng.pareto(params_.reach_min_km, params_.reach_shape) *
        (1.0 + params_.reach_pop_boost *
                   std::log1p(w * static_cast<double>(n)));
    reach_km_[i] = static_cast<float>(std::min(reach, 40'000.0));
  }
}

double WorkloadModel::weight(ObjectId id, std::size_t city) const {
  const auto i = static_cast<std::size_t>(id);
  const auto& cities = *cities_;
  const double base = base_weight_[i];
  if (global_[i]) return base;  // uniform worldwide popularity
  const std::size_t home = home_city_[i];
  if (home == city) return base;
  const double gate =
      region_affinity(cities[home].region, cities[city].region, params_);
  if (!crosses_region(id, cities[city].region, gate)) return 0.0;
  const double dist =
      util::haversine(cities[home].coord, cities[city].coord).value();
  return base * std::exp(-dist / static_cast<double>(reach_km_[i]));
}

void WorkloadModel::build_city_tables() {
  city_tables_.resize(cities_->size());
  // Weights below this fraction of the object's base weight are treated as
  // out of reach; keeps tables compact and models "content not offered".
  constexpr double kCutoff = 1e-3;
  for (std::size_t c = 0; c < cities_->size(); ++c) {
    CityTable& t = city_tables_[c];
    for (std::size_t i = 0; i < sizes_.size(); ++i) {
      const double w = weight(static_cast<ObjectId>(i), c);
      if (w > kCutoff * static_cast<double>(base_weight_[i])) {
        t.objects.push_back(static_cast<ObjectId>(i));
        t.weights.push_back(w);
      }
    }
    t.sampler = std::make_unique<DiscreteSampler>(t.weights);
  }
}

std::vector<double> WorkloadModel::diurnal_minute_weights(
    std::size_t city) const {
  // Local solar time from longitude; demand peaks around 20:00 local.
  const double lon = (*cities_)[city].coord.lon_deg;
  const double tz_offset_h = lon / 15.0;
  const std::size_t minutes = static_cast<std::size_t>(
      std::max(1.0, params_.duration_s / util::kMinute.value()));
  std::vector<double> w(minutes);
  for (std::size_t m = 0; m < minutes; ++m) {
    const double t_utc_h = static_cast<double>(m) / 60.0;
    const double local_h = std::fmod(t_utc_h + tz_offset_h + 48.0, 24.0);
    w[m] = 1.0 + params_.diurnal_depth *
                     std::sin(2.0 * std::numbers::pi * (local_h - 14.0) / 24.0);
  }
  return w;
}

LocationTrace WorkloadModel::generate_city(std::size_t city,
                                           std::size_t n_requests,
                                           std::uint64_t salt) const {
  const CityTable& t = city_tables_[city];
  util::Rng rng(util::hash_combine(params_.seed,
                                   util::splitmix64(city * 7919 + salt + 1)));
  const DiscreteSampler minute_sampler(diurnal_minute_weights(city));

  LocationTrace out;
  out.location = static_cast<std::uint16_t>(city);
  out.location_name = (*cities_)[city].name;
  out.requests.reserve(n_requests);
  for (std::size_t k = 0; k < n_requests; ++k) {
    const std::size_t idx = t.sampler->sample(rng);
    const ObjectId obj = t.objects[idx];
    Request r;
    r.object = obj;
    r.size = sizes_[static_cast<std::size_t>(obj)];
    r.location = static_cast<std::uint16_t>(city);
    const double minute = static_cast<double>(minute_sampler.sample(rng));
    r.timestamp_s = std::min(params_.duration_s - 1e-3,
                             (minute + rng.uniform()) * util::kMinute.value());
    out.requests.push_back(r);
  }
  // Stable: requests with equal timestamps (the end-of-day clamp can
  // collide) keep draw order. This is the tie-break contract the streaming
  // generator (generate_stream) reproduces per time window, so the two
  // paths stay bitwise identical.
  std::stable_sort(out.requests.begin(), out.requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return out;
}

std::size_t WorkloadModel::city_request_count(std::size_t city) const {
  return static_cast<std::size_t>(
      static_cast<double>(params_.requests_per_weight) *
      (*cities_)[city].traffic_weight);
}

std::uint64_t WorkloadModel::total_request_count() const {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cities_->size(); ++c) {
    total += city_request_count(c);
  }
  return total;
}

MultiTrace WorkloadModel::generate() const {
  MultiTrace out;
  out.reserve(cities_->size());
  for (std::size_t c = 0; c < cities_->size(); ++c) {
    out.push_back(generate_city(c, city_request_count(c)));
  }
  return out;
}

OverlapResult overlap(const LocationTrace& a, const LocationTrace& b) {
  std::unordered_set<ObjectId> in_b;
  for (const auto& r : b.requests) in_b.insert(r.object);

  std::unordered_set<ObjectId> seen_a;
  std::size_t shared_objects = 0;
  Bytes bytes_total = 0, bytes_shared = 0;
  for (const auto& r : a.requests) {
    bytes_total += r.size;
    const bool shared = in_b.contains(r.object);
    if (shared) bytes_shared += r.size;
    if (seen_a.insert(r.object).second && shared) ++shared_objects;
  }
  OverlapResult res;
  if (!seen_a.empty()) {
    res.object_overlap = static_cast<double>(shared_objects) /
                         static_cast<double>(seen_a.size());
  }
  if (bytes_total > 0) {
    res.traffic_overlap =
        static_cast<double>(bytes_shared) / static_cast<double>(bytes_total);
  }
  return res;
}

}  // namespace starcdn::trace
