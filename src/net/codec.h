// Wire format for the cluster replayer (§5.1: the paper's cache replayer
// runs one process per satellite and mimics ISLs with TCP).
//
// Frames are length-prefixed with fixed-width big-endian integers so the
// format is self-describing and platform independent:
//
//   u32 frame_length (bytes after this field)
//   u16 version (=1)   u16 type
//   u32 src            u32 dst
//   u64 object_id      u64 size_bytes
//   u64 request_id     u32 flags
//   u32 payload_length  bytes payload
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace starcdn::net {

enum class MessageType : std::uint16_t {
  kRequest = 1,        // first contact -> bucket owner: please serve object
  kResponse = 2,       // owner -> first contact: object bytes (hit)
  kRelayProbe = 3,     // owner -> neighbour replica: do you have it?
  kRelayReply = 4,     // neighbour replica -> owner: hit/miss (+bytes)
  kGroundFetch = 5,    // owner -> ground station: origin fetch
  kGroundReply = 6,    // ground station -> owner
  kControl = 7,        // replayer orchestration (start/stop/barrier)
};

struct Message {
  MessageType type = MessageType::kRequest;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t object_id = 0;
  std::uint64_t size_bytes = 0;
  std::uint64_t request_id = 0;
  std::uint32_t flags = 0;
  std::string payload;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Flag bit set on kRelayReply / kGroundReply when the probe was a hit.
inline constexpr std::uint32_t kFlagHit = 1u << 0;

/// Serialize one message into a framed byte buffer.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& m);

/// Incremental decoder: feed arbitrary byte chunks, pop complete messages.
/// Malformed input (bad version, oversized frame) raises std::runtime_error;
/// a transport must drop the connection at that point.
class FrameDecoder {
 public:
  /// Frames larger than this are rejected as corrupt/hostile input.
  static constexpr std::uint32_t kMaxFrameBytes = 16 * 1024 * 1024;

  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete message, if any.
  [[nodiscard]] std::optional<Message> next();

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buf_.size() - consumed_;
  }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
};

}  // namespace starcdn::net
