#include "net/isl_graph.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace starcdn::net {

using orbit::SatelliteId;

IslGraph::IslGraph(const orbit::Constellation& constellation)
    : constellation_(&constellation) {
  for (int i = 0; i < constellation.size(); ++i) {
    const SatelliteId id = constellation.id_of(i);
    const auto consider = [&](SatelliteId nbr, bool intra) {
      const int j = constellation.index_of(nbr);
      if (j <= i) return;  // count each undirected grid edge once
      const bool a_ok = constellation.active(i);
      const bool b_ok = constellation.active(j);
      if (a_ok && b_ok) {
        edges_.push_back({i, j, intra});
      } else if (a_ok != b_ok) {
        ++broken_;  // exactly one live endpoint: a usable laser is dark
      }
    };
    consider(constellation.intra_next(id), true);
    consider(constellation.intra_prev(id), true);
    consider(constellation.inter_east(id), false);
    consider(constellation.inter_west(id), false);
  }
}

std::vector<int> IslGraph::neighbors(int sat_index) const {
  const auto& c = *constellation_;
  std::vector<int> out;
  if (!c.active(sat_index)) return out;
  const SatelliteId id = c.id_of(sat_index);
  for (const SatelliteId nbr :
       {c.intra_next(id), c.intra_prev(id), c.inter_east(id), c.inter_west(id)}) {
    const int j = c.index_of(nbr);
    if (c.active(j)) out.push_back(j);
  }
  return out;
}

bool IslGraph::l_path_clear(SatelliteId a, SatelliteId b) const {
  const auto p = l_path(a, b);
  return p.has_value();
}

std::optional<std::vector<int>> IslGraph::l_path(SatelliteId a,
                                                 SatelliteId b) const {
  // Walk planes first (shorter toroidal direction), then slots; every
  // intermediate satellite must be active. This is the canonical grid route
  // used by StarCDN's bucket routing.
  const auto& c = *constellation_;
  const int P = c.planes();
  const int S = c.slots_per_plane();
  auto signed_wrap = [](int d, int n) {
    d %= n;
    if (d > n / 2) d -= n;
    if (d < -(n - 1) / 2) d += n;
    return d;
  };
  const int dp = signed_wrap(b.plane - a.plane, P);
  const int ds = signed_wrap(b.slot - a.slot, S);
  std::vector<int> path{c.index_of(a)};
  SatelliteId cur = a;
  if (!c.active(c.index_of(cur))) return std::nullopt;
  for (int step = 0; step < std::abs(dp); ++step) {
    cur = c.plane_offset(cur, dp > 0 ? 1 : -1);
    if (!c.active(c.index_of(cur))) return std::nullopt;
    path.push_back(c.index_of(cur));
  }
  for (int step = 0; step < std::abs(ds); ++step) {
    cur = c.slot_offset(cur, ds > 0 ? 1 : -1);
    if (!c.active(c.index_of(cur))) return std::nullopt;
    path.push_back(c.index_of(cur));
  }
  return path;
}

std::optional<std::vector<int>> IslGraph::bfs_path(int from, int to) const {
  const auto& c = *constellation_;
  std::vector<int> parent(static_cast<std::size_t>(c.size()), -2);
  std::deque<int> queue;
  parent[static_cast<std::size_t>(from)] = -1;
  queue.push_back(from);
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    if (cur == to) break;
    for (const int nbr : neighbors(cur)) {
      if (parent[static_cast<std::size_t>(nbr)] == -2) {
        parent[static_cast<std::size_t>(nbr)] = cur;
        queue.push_back(nbr);
      }
    }
  }
  if (parent[static_cast<std::size_t>(to)] == -2) return std::nullopt;
  std::vector<int> path;
  for (int v = to; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<int>> IslGraph::shortest_path(int from,
                                                        int to) const {
  const auto& c = *constellation_;
  if (!c.active(from) || !c.active(to)) return std::nullopt;
  if (from == to) return std::vector<int>{from};
  if (auto p = l_path(c.id_of(from), c.id_of(to))) return p;
  return bfs_path(from, to);
}

std::optional<int> IslGraph::shortest_hops(int from, int to) const {
  const auto p = shortest_path(from, to);
  if (!p) return std::nullopt;
  return static_cast<int>(p->size()) - 1;
}

std::optional<util::Millis> IslGraph::path_delay_ms(int from, int to,
                                                    double t_s) const {
  const auto p = shortest_path(from, to);
  if (!p) return std::nullopt;
  const auto& c = *constellation_;
  util::Millis total = 0.0;
  for (std::size_t i = 0; i + 1 < p->size(); ++i) {
    const orbit::Vec3 a = c.position_ecef(c.id_of((*p)[i]), t_s);
    const orbit::Vec3 b = c.position_ecef(c.id_of((*p)[i + 1]), t_s);
    total += util::propagation_delay_ms(orbit::distance(a, b));
  }
  return total;
}

}  // namespace starcdn::net
