#include "net/isl_graph.h"

#include <algorithm>
#include <cmath>

namespace starcdn::net {

using orbit::SatelliteId;
using util::SatId;

IslGraph::IslGraph(const orbit::Constellation& constellation)
    : constellation_(&constellation) {
  for (int i = 0; i < constellation.size(); ++i) {
    const SatId sat{i};
    const SatelliteId id = constellation.id_of(sat);
    const auto consider = [&](SatelliteId nbr, bool intra) {
      const SatId j = constellation.index_of(nbr);
      if (j <= sat) return;  // count each undirected grid edge once
      const bool a_ok = constellation.active(sat);
      const bool b_ok = constellation.active(j);
      if (a_ok && b_ok) {
        edges_.push_back({sat, j, intra});
      } else if (a_ok != b_ok) {
        ++broken_;  // exactly one live endpoint: a usable laser is dark
      }
    };
    consider(constellation.intra_next(id), true);
    consider(constellation.intra_prev(id), true);
    consider(constellation.inter_east(id), false);
    consider(constellation.inter_west(id), false);
  }
}

std::vector<SatId> IslGraph::neighbors(SatId sat) const {
  const auto& c = *constellation_;
  std::vector<SatId> out;
  if (!c.active(sat)) return out;
  const SatelliteId id = c.id_of(sat);
  for (const SatelliteId nbr :
       {c.intra_next(id), c.intra_prev(id), c.inter_east(id), c.inter_west(id)}) {
    const SatId j = c.index_of(nbr);
    if (c.active(j)) out.push_back(j);
  }
  return out;
}

bool IslGraph::l_path_clear(SatelliteId a, SatelliteId b) const {
  const auto p = l_path(a, b);
  return p.has_value();
}

std::optional<std::vector<SatId>> IslGraph::l_path(SatelliteId a,
                                                   SatelliteId b) const {
  // Walk planes first (shorter toroidal direction), then slots; every
  // intermediate satellite must be active. This is the canonical grid route
  // used by StarCDN's bucket routing.
  const auto& c = *constellation_;
  const int P = c.planes();
  const int S = c.slots_per_plane();
  auto signed_wrap = [](int d, int n) {
    d %= n;
    if (d > n / 2) d -= n;
    if (d < -(n - 1) / 2) d += n;
    return d;
  };
  const int dp = signed_wrap(b.plane.value() - a.plane.value(), P);
  const int ds = signed_wrap(b.slot.value() - a.slot.value(), S);
  std::vector<SatId> path;
  path.reserve(static_cast<std::size_t>(std::abs(dp) + std::abs(ds)) + 1);
  path.push_back(c.index_of(a));
  SatelliteId cur = a;
  if (!c.active(c.index_of(cur))) return std::nullopt;
  for (int step = 0; step < std::abs(dp); ++step) {
    cur = c.plane_offset(cur, dp > 0 ? 1 : -1);
    if (!c.active(c.index_of(cur))) return std::nullopt;
    path.push_back(c.index_of(cur));
  }
  for (int step = 0; step < std::abs(ds); ++step) {
    cur = c.slot_offset(cur, ds > 0 ? 1 : -1);
    if (!c.active(c.index_of(cur))) return std::nullopt;
    path.push_back(c.index_of(cur));
  }
  return path;
}

std::optional<std::vector<SatId>> IslGraph::bfs_path(SatId from,
                                                     SatId to) const {
  const auto& c = *constellation_;
  // Parent table over linear indices: -2 unvisited, -1 the BFS root.
  std::vector<int> parent(static_cast<std::size_t>(c.size()), -2);
  // Flat frontier: each satellite enters at most once, so a monotonic
  // vector with a head cursor replaces the deque (no per-pop bookkeeping,
  // one allocation). Neighbor candidates are inlined to avoid the vector
  // `neighbors()` would build per visited node.
  std::vector<SatId> queue;
  queue.reserve(static_cast<std::size_t>(c.size()));
  parent[util::as_index(from)] = -1;
  queue.push_back(from);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const SatId cur = queue[head];
    if (cur == to) break;
    if (!c.active(cur)) continue;
    const SatelliteId id = c.id_of(cur);
    for (const SatelliteId nbr_id : {c.intra_next(id), c.intra_prev(id),
                                     c.inter_east(id), c.inter_west(id)}) {
      const SatId nbr = c.index_of(nbr_id);
      if (c.active(nbr) && parent[util::as_index(nbr)] == -2) {
        parent[util::as_index(nbr)] = cur.value();
        queue.push_back(nbr);
      }
    }
  }
  if (parent[util::as_index(to)] == -2) return std::nullopt;
  std::vector<SatId> path;
  for (int v = to.value(); v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(SatId{v});
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<SatId>> IslGraph::shortest_path(SatId from,
                                                          SatId to) const {
  const auto& c = *constellation_;
  if (!c.active(from) || !c.active(to)) return std::nullopt;
  if (from == to) return std::vector<SatId>{from};
  if (auto p = l_path(c.id_of(from), c.id_of(to))) return p;
  return bfs_path(from, to);
}

std::optional<int> IslGraph::shortest_hops(SatId from, SatId to) const {
  const auto p = shortest_path(from, to);
  if (!p) return std::nullopt;
  return static_cast<int>(p->size()) - 1;
}

std::optional<util::Millis> IslGraph::path_delay(SatId from, SatId to,
                                                 util::Seconds t) const {
  const auto p = shortest_path(from, to);
  if (!p) return std::nullopt;
  const auto& c = *constellation_;
  util::Millis total{0.0};
  for (std::size_t i = 0; i + 1 < p->size(); ++i) {
    const orbit::Vec3 a = c.position_ecef(c.id_of((*p)[i]), t);
    const orbit::Vec3 b = c.position_ecef(c.id_of((*p)[i + 1]), t);
    total += util::propagation_delay(util::Km{orbit::distance(a, b)});
  }
  return total;
}

}  // namespace starcdn::net
