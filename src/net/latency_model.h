// End-to-end request latency composition (§5.3, Fig. 10).
//
// We model idle (propagation-dominated) latency, matching the paper's
// comparison against the Cloudflare AIM idle-latency dataset. A request's
// latency is assembled from:
//   * the user<->first-contact GSL (geometry-derived),
//   * ISL hops to the bucket owner and, on relay, to the neighbour replica,
//   * on a total miss, the satellite->ground-station GSL plus a terrestrial
//     leg to the origin,
// plus analytic baselines for terrestrial-CDN users and bent-pipe Starlink
// users served by a terrestrial CDN (the "regular Starlink" curve).
//
// Every latency is a strong util::Millis; the lognormal leg parameters are
// dimensionless (mu/sigma of the underlying normal) and stay raw.
#pragma once

#include "util/rng.h"
#include "util/units.h"

namespace starcdn::net {

struct LatencyModelParams {
  // Fallback GSL one-way delay when no geometric range is available; the
  // mean measured in Table 1.
  util::Millis default_gsl{2.94};
  // One-way ISL hop delays (Table 1 means) used when a caller reasons in
  // hop counts instead of geometric paths.
  util::Millis inter_orbit_hop{2.15};
  util::Millis intra_orbit_hop{8.03};
  // Terrestrial leg from a ground station through an IXP to the origin
  // (cache-miss penalty): lognormal, median ~ exp(mu) ms.
  double origin_leg_mu = 3.4;     // median ≈ 30 ms
  double origin_leg_sigma = 0.45;
  // Terrestrial CDN baseline: last mile + proximal edge server.
  double terrestrial_mu = 2.2;    // median ≈ 9 ms
  double terrestrial_sigma = 0.55;
  // Bent-pipe extra terrestrial leg (GS -> IXP -> far CDN edge); combined
  // with two GSL traversals this reproduces the ~55 ms Starlink median.
  double bentpipe_leg_mu = 3.9;   // median ≈ 49 ms
  double bentpipe_leg_sigma = 0.35;
};

class LatencyModel {
 public:
  explicit LatencyModel(const LatencyModelParams& p = {}) noexcept : p_(p) {}

  [[nodiscard]] const LatencyModelParams& params() const noexcept { return p_; }

  /// One-way delay of `h` bucket-routing hops along the grid; routing
  /// prefers inter-orbit hops (§3.2 maps buckets so the path is short).
  [[nodiscard]] util::Millis grid_hops_delay(int inter_hops,
                                             int intra_hops) const noexcept {
    return inter_hops * p_.inter_orbit_hop + intra_hops * p_.intra_orbit_hop;
  }

  /// Served from the first-contact satellite's cache.
  [[nodiscard]] util::Millis hit_local(util::Millis gsl) const noexcept {
    return 2.0 * gsl;
  }

  /// Served from the bucket owner `route` (one-way) away.
  [[nodiscard]] util::Millis hit_routed(util::Millis gsl,
                                        util::Millis route) const noexcept {
    return 2.0 * (gsl + route);
  }

  /// Served via relayed fetch: request travels user -> first contact ->
  /// owner -> replica and the object returns along the same path.
  [[nodiscard]] util::Millis hit_relayed(util::Millis gsl, util::Millis route,
                                         util::Millis relay) const noexcept {
    return 2.0 * (gsl + route + relay);
  }

  /// Total miss: object fetched from the ground through the owner's GSL and
  /// a sampled terrestrial origin leg, then forwarded to the user.
  [[nodiscard]] util::Millis miss(util::Millis gsl, util::Millis route,
                                  util::Millis gs_gsl,
                                  util::Rng& rng) const noexcept {
    return 2.0 * (gsl + route + gs_gsl) +
           util::Millis{rng.lognormal(p_.origin_leg_mu, p_.origin_leg_sigma)};
  }

  /// Baseline: terrestrial user hitting a proximal terrestrial CDN edge.
  [[nodiscard]] util::Millis terrestrial_cdn(util::Rng& rng) const noexcept {
    return util::Millis{rng.lognormal(p_.terrestrial_mu, p_.terrestrial_sigma)};
  }

  /// Baseline: Starlink bent pipe to a terrestrial CDN (no space cache);
  /// two GSL traversals (up, down) plus the far terrestrial leg.
  [[nodiscard]] util::Millis bentpipe_starlink(util::Millis gsl,
                                               util::Rng& rng) const noexcept {
    return 2.0 * gsl +
           util::Millis{rng.lognormal(p_.bentpipe_leg_mu, p_.bentpipe_leg_sigma)};
  }

 private:
  LatencyModelParams p_;
};

}  // namespace starcdn::net
