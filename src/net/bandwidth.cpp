#include "net/bandwidth.h"

#include "obs/prof.h"

namespace starcdn::net {

void UplinkMeter::add(util::SatId sat, util::EpochIdx epoch,
                      util::Bytes bytes) {
  if (epoch.value() != current_epoch_) {
    flush();
    current_epoch_ = epoch.value();
  }
  epoch_bytes_[sat] += bytes;
  total_ += bytes;
}

void UplinkMeter::flush() {
  STARCDN_PROF_SCOPE("UplinkMeter::flush");
  for (const auto& [sat, bytes] : epoch_bytes_) {
    (void)sat;
    const double cell_gbps =
        static_cast<double>(bytes) * 8.0 / 1e9 / epoch_s_;
    stats_.add(cell_gbps);
    if (cell_gbps > capacity_gbps_) ++overloads_;
  }
  epoch_bytes_.clear();
}

}  // namespace starcdn::net
