#include "net/bandwidth.h"

namespace starcdn::net {

void UplinkMeter::add(int sat_index, std::size_t epoch, util::Bytes bytes) {
  if (epoch != current_epoch_) {
    flush();
    current_epoch_ = epoch;
  }
  epoch_bytes_[sat_index] += bytes;
  total_ += bytes;
}

void UplinkMeter::flush() {
  for (const auto& [sat, bytes] : epoch_bytes_) {
    (void)sat;
    const double gbps =
        static_cast<double>(bytes) * 8.0 / 1e9 / epoch_s_;
    stats_.add(gbps);
    if (gbps > capacity_gbps_) ++overloads_;
  }
  epoch_bytes_.clear();
}

}  // namespace starcdn::net
