#include "net/codec.h"

#include <cstring>
#include <stdexcept>

namespace starcdn::net {

namespace {

constexpr std::uint16_t kVersion = 1;
// version+type + src+dst + object+size+request + flags + payload_len
constexpr std::size_t kFixedBody = 2 + 2 + 4 + 4 + 8 + 8 + 8 + 4 + 4;

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) b.push_back(static_cast<std::uint8_t>(v >> s));
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) b.push_back(static_cast<std::uint8_t>(v >> s));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | get_u32(p + 4);
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& m) {
  if (m.payload.size() > FrameDecoder::kMaxFrameBytes - kFixedBody) {
    throw std::runtime_error("encode: payload exceeds max frame size");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + kFixedBody + m.payload.size());
  put_u32(out, static_cast<std::uint32_t>(kFixedBody + m.payload.size()));
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(m.type));
  put_u32(out, m.src);
  put_u32(out, m.dst);
  put_u64(out, m.object_id);
  put_u64(out, m.size_bytes);
  put_u64(out, m.request_id);
  put_u32(out, m.flags);
  put_u32(out, static_cast<std::uint32_t>(m.payload.size()));
  out.insert(out.end(), m.payload.begin(), m.payload.end());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer to keep feed()
  // amortized O(1) without reallocating per message.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<Message> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const std::uint8_t* p = buf_.data() + consumed_;
  const std::uint32_t frame_len = get_u32(p);
  if (frame_len > kMaxFrameBytes || frame_len < kFixedBody) {
    throw std::runtime_error("FrameDecoder: corrupt frame length");
  }
  if (avail < 4 + static_cast<std::size_t>(frame_len)) return std::nullopt;
  p += 4;
  if (get_u16(p) != kVersion) {
    throw std::runtime_error("FrameDecoder: unsupported version");
  }
  Message m;
  m.type = static_cast<MessageType>(get_u16(p + 2));
  m.src = get_u32(p + 4);
  m.dst = get_u32(p + 8);
  m.object_id = get_u64(p + 12);
  m.size_bytes = get_u64(p + 20);
  m.request_id = get_u64(p + 28);
  m.flags = get_u32(p + 36);
  const std::uint32_t payload_len = get_u32(p + 40);
  if (payload_len != frame_len - kFixedBody) {
    throw std::runtime_error("FrameDecoder: payload length mismatch");
  }
  m.payload.assign(reinterpret_cast<const char*>(p + 44), payload_len);
  consumed_ += 4 + frame_len;
  compact();
  return m;
}

}  // namespace starcdn::net
