// Link types and geometric link-delay measurement.
//
// Table 1 of the paper gives per-link-type propagation delays and
// bandwidths for Starlink. Rather than hard-coding those numbers, we derive
// delays from the constellation geometry (distance / c); the Table 1 bench
// verifies the derived statistics match the published ones, which validates
// the orbital substrate.
#pragma once

#include <cstdint>

#include "orbit/constellation.h"
#include "util/stats.h"
#include "util/units.h"

namespace starcdn::net {

enum class LinkType : std::uint8_t {
  kIntraOrbitIsl,  // previous/next satellite in the same plane (optical)
  kInterOrbitIsl,  // left/right satellite in adjacent planes (optical)
  kGsl,            // ground-satellite radio link
};

[[nodiscard]] const char* to_string(LinkType t) noexcept;

/// Nominal capacities from Table 1. ISLs are optical (100 Gbps); GSLs are
/// the scarce resource (20 Gbps) StarCDN tries to offload. Render with
/// util::to_gbps for the paper's units.
[[nodiscard]] util::BytesPerSec nominal_bandwidth(LinkType t) noexcept;

/// Delay samples are accumulated in milliseconds (RunningStats is a raw
/// moment sink; the strong boundary is measure_link_delays' signature).
struct LinkDelayStats {
  util::RunningStats intra_orbit_isl;
  util::RunningStats inter_orbit_isl;
  util::RunningStats gsl;
};

/// Sample propagation delays of every grid ISL plus user->satellite GSLs
/// over `duration` at `step` resolution. GSL samples are taken from the
/// given ground points to their highest-elevation visible satellite, which
/// matches how Table 1's GSL row was measured (serving link, not all links).
[[nodiscard]] LinkDelayStats measure_link_delays(
    const orbit::Constellation& constellation,
    const std::vector<util::GeoCoord>& ground_points, util::Seconds duration,
    util::Seconds step,
    util::Degrees min_elevation = util::Degrees{25.0});

}  // namespace starcdn::net
