#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/prof.h"

namespace starcdn::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// One direction of an in-process channel: a bounded-ish mailbox.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  bool closed = false;

  void push(const Message& m) {
    {
      const std::lock_guard lock(mu);
      if (closed) throw std::runtime_error("inproc channel closed");
      queue.push_back(m);
    }
    cv.notify_one();
  }

  std::optional<Message> pop(bool blocking) {
    std::unique_lock lock(mu);
    if (blocking) cv.wait(lock, [&] { return !queue.empty() || closed; });
    if (queue.empty()) return std::nullopt;
    Message m = std::move(queue.front());
    queue.pop_front();
    return m;
  }

  void close() {
    {
      const std::lock_guard lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class InprocChannel final : public Channel {
 public:
  InprocChannel(std::shared_ptr<Mailbox> tx, std::shared_ptr<Mailbox> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  void send(const Message& m) override { tx_->push(m); }
  std::optional<Message> recv() override { return rx_->pop(true); }
  std::optional<Message> try_recv() override { return rx_->pop(false); }
  void close() override {
    tx_->close();
    rx_->close();
  }
  [[nodiscard]] bool closed() const override {
    const std::lock_guard lock(rx_->mu);
    return rx_->closed && rx_->queue.empty();
  }

 private:
  std::shared_ptr<Mailbox> tx_;
  std::shared_ptr<Mailbox> rx_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_inproc_pair() {
  auto a_to_b = std::make_shared<Mailbox>();
  auto b_to_a = std::make_shared<Mailbox>();
  return {std::make_unique<InprocChannel>(a_to_b, b_to_a),
          std::make_unique<InprocChannel>(b_to_a, a_to_b)};
}

// --- TcpChannel --------------------------------------------------------------

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  const int one = 1;
  // Latency matters more than throughput for small control frames.
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpChannel::~TcpChannel() { close(); }

void TcpChannel::send(const Message& m) {
  STARCDN_PROF_SCOPE("TcpChannel::send");
  const auto bytes = encode(m);
  const std::lock_guard lock(send_mu_);
  if (closed_) throw std::runtime_error("TcpChannel: send on closed channel");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("TcpChannel send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<Message> TcpChannel::recv_impl(bool blocking) {
  STARCDN_PROF_SCOPE("TcpChannel::recv");
  const std::lock_guard lock(recv_mu_);
  for (;;) {
    if (auto m = decoder_.next()) return m;
    if (closed_) return std::nullopt;
    std::uint8_t chunk[16384];
    const ssize_t n =
        ::recv(fd_, chunk, sizeof chunk, blocking ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      decoder_.feed({chunk, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {  // orderly shutdown by peer
      closed_ = true;
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return std::nullopt;
    }
    throw_errno("TcpChannel recv");
  }
}

std::optional<Message> TcpChannel::recv() { return recv_impl(true); }
std::optional<Message> TcpChannel::try_recv() { return recv_impl(false); }

void TcpChannel::close() {
  const std::lock_guard lock(send_mu_);
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  closed_ = true;
}

bool TcpChannel::closed() const { return closed_; }

std::unique_ptr<TcpChannel> TcpChannel::connect(const std::string& host,
                                                std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("TcpChannel::connect: bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  return std::make_unique<TcpChannel>(fd);
}

// --- TcpListener --------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, 64) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpChannel> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpChannel>(fd);
    if (errno != EINTR) throw_errno("accept");
  }
}

}  // namespace starcdn::net
