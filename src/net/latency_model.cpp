#include "net/latency_model.h"

// LatencyModel is header-only today; this TU anchors the library target and
// is the placement site for any future out-of-line additions (e.g. queueing
// extensions flagged as future work in §7 of the paper).
