// Ground-satellite uplink bandwidth accounting.
//
// Table 1 gives each GSL a 20 Gbps budget — the scarce resource StarCDN
// exists to protect. This meter tracks, per scheduler epoch, how many bytes
// each satellite pulled from the ground, and folds them into throughput
// statistics: mean/peak per-satellite uplink rate and the number of
// (satellite, epoch) cells that would have exceeded the link budget.
// Requests must be fed in non-decreasing epoch order (the simulator's
// natural replay order).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/ids.h"
#include "util/stats.h"
#include "util/units.h"

namespace starcdn::net {

class UplinkMeter {
 public:
  explicit UplinkMeter(
      util::Seconds epoch_duration = util::Seconds{15.0},
      util::BytesPerSec link_capacity = util::gbps(20.0)) noexcept
      : epoch_s_(epoch_duration.value()),
        capacity_gbps_(util::to_gbps(link_capacity)) {}

  /// Record an origin fetch of `bytes` through `sat`'s GSL.
  void add(util::SatId sat, util::EpochIdx epoch, util::Bytes bytes);

  /// Fold any still-buffered epoch into the statistics.
  void flush();

  /// Per-(satellite, epoch) uplink throughput in Gbps, over cells with any
  /// uplink traffic. Call flush() first. (RunningStats is a raw moment
  /// sink; its samples are Gbps to match the paper's tables.)
  [[nodiscard]] const util::RunningStats& throughput_gbps() const noexcept {
    return stats_;
  }

  /// Cells whose required throughput exceeded the GSL budget.
  [[nodiscard]] std::uint64_t overloaded_cells() const noexcept {
    return overloads_;
  }
  [[nodiscard]] util::Bytes total_bytes() const noexcept { return total_; }
  [[nodiscard]] util::BytesPerSec capacity() const noexcept {
    return util::gbps(capacity_gbps_);
  }

 private:
  double epoch_s_;
  double capacity_gbps_;
  std::size_t current_epoch_ = 0;
  std::unordered_map<util::SatId, util::Bytes> epoch_bytes_;
  util::RunningStats stats_;
  std::uint64_t overloads_ = 0;
  util::Bytes total_ = 0;
};

}  // namespace starcdn::net
