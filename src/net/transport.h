// Message transports for the cluster replayer.
//
// The paper's replayer spawns one process per satellite and mimics ISLs
// with TCP sockets. We provide the same wire behaviour behind a Channel
// interface with two implementations: an in-process queue pair (fast,
// deterministic unit tests and large constellations) and a real TCP
// loopback channel (faithful to the paper's setup; used by the replay
// module's socket mode and its integration test).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "net/codec.h"

namespace starcdn::net {

/// A bidirectional, ordered, reliable message channel (ISL abstraction).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Enqueue a message for the peer. Throws std::runtime_error on a broken
  /// channel.
  virtual void send(const Message& m) = 0;

  /// Blocking receive; std::nullopt means the peer closed the channel.
  virtual std::optional<Message> recv() = 0;

  /// Non-blocking receive; std::nullopt means "nothing available now"
  /// (distinguish closure via `closed()`).
  virtual std::optional<Message> try_recv() = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;
};

/// Create a connected pair of in-process channels.
[[nodiscard]] std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_inproc_pair();

/// TCP channel over a connected socket; frames via FrameCodec.
class TcpChannel final : public Channel {
 public:
  /// Wrap an already-connected socket fd (takes ownership).
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  void send(const Message& m) override;
  std::optional<Message> recv() override;
  std::optional<Message> try_recv() override;
  void close() override;
  [[nodiscard]] bool closed() const override;

  /// Connect to host:port; throws std::runtime_error on failure.
  [[nodiscard]] static std::unique_ptr<TcpChannel> connect(
      const std::string& host, std::uint16_t port);

 private:
  std::optional<Message> recv_impl(bool blocking);

  mutable std::mutex send_mu_;
  mutable std::mutex recv_mu_;
  int fd_ = -1;
  // Written under send_mu_ (close) and recv_mu_ (peer shutdown), read under
  // either — atomic so the cross-mutex accesses are race-free under TSan.
  std::atomic<bool> closed_{false};
  FrameDecoder decoder_;
};

/// Listening socket that accepts TcpChannels.
class TcpListener {
 public:
  /// Bind to 127.0.0.1:port; port 0 picks an ephemeral port (see `port()`).
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocking accept of the next connection.
  [[nodiscard]] std::unique_ptr<TcpChannel> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace starcdn::net
