// The +grid inter-satellite-link topology and routing over it.
//
// Starlink satellites carry four ISLs: intra-orbit previous/next and
// inter-orbit west/east (§2.1). Links to inactive (out-of-slot) satellites
// cannot be established (§5.1); the paper measured 438 such broken ISLs for
// 126 inactive slots. This module materializes that graph, reports broken
// links, and routes requests: fast O(1) toroidal-grid paths on the healthy
// grid with a BFS fallback when the path crosses failures.
#pragma once

#include <optional>
#include <vector>

#include "orbit/constellation.h"
#include "util/ids.h"
#include "util/units.h"

namespace starcdn::net {

struct IslEdge {
  util::SatId a{0};  // linear satellite indices, a < b canonical order
  util::SatId b{0};
  bool intra_orbit = false;
};

class IslGraph {
 public:
  explicit IslGraph(const orbit::Constellation& constellation);

  [[nodiscard]] const orbit::Constellation& constellation() const noexcept {
    return *constellation_;
  }

  /// All establishable (both-endpoints-active) ISLs.
  [[nodiscard]] const std::vector<IslEdge>& edges() const noexcept {
    return edges_;
  }

  /// ISLs that would exist on the full grid but are broken because one
  /// endpoint is inactive (the "438 broken ISLs" statistic of §5.4 counts
  /// grid edges with exactly one active endpoint).
  [[nodiscard]] int broken_edge_count() const noexcept { return broken_; }

  /// Up to four active neighbours of an active satellite.
  [[nodiscard]] std::vector<util::SatId> neighbors(util::SatId sat) const;

  /// Hop count of the shortest path between two active satellites using
  /// only active satellites; nullopt when disconnected. Uses the closed-form
  /// toroidal distance when no inactive satellite blocks the L-shaped path,
  /// otherwise falls back to BFS.
  [[nodiscard]] std::optional<int> shortest_hops(util::SatId from,
                                                 util::SatId to) const;

  /// Propagation delay along the shortest path at time t, following the
  /// same path selection as shortest_hops; nullopt when disconnected.
  [[nodiscard]] std::optional<util::Millis> path_delay(util::SatId from,
                                                       util::SatId to,
                                                       util::Seconds t) const;

  /// Full vertex list of one shortest path (inclusive of endpoints).
  [[nodiscard]] std::optional<std::vector<util::SatId>> shortest_path(
      util::SatId from, util::SatId to) const;

 private:
  [[nodiscard]] bool l_path_clear(orbit::SatelliteId a,
                                  orbit::SatelliteId b) const;
  [[nodiscard]] std::optional<std::vector<util::SatId>> l_path(
      orbit::SatelliteId a, orbit::SatelliteId b) const;
  [[nodiscard]] std::optional<std::vector<util::SatId>> bfs_path(
      util::SatId from, util::SatId to) const;

  const orbit::Constellation* constellation_;
  std::vector<IslEdge> edges_;
  int broken_ = 0;
};

}  // namespace starcdn::net
