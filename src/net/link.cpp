#include "net/link.h"

#include "orbit/visibility.h"

namespace starcdn::net {

const char* to_string(LinkType t) noexcept {
  switch (t) {
    case LinkType::kIntraOrbitIsl: return "intra-orbit ISL";
    case LinkType::kInterOrbitIsl: return "inter-orbit ISL";
    case LinkType::kGsl: return "GSL";
  }
  return "?";
}

util::BytesPerSec nominal_bandwidth(LinkType t) noexcept {
  switch (t) {
    case LinkType::kIntraOrbitIsl:
    case LinkType::kInterOrbitIsl:
      return util::gbps(100.0);
    case LinkType::kGsl:
      return util::gbps(20.0);
  }
  return util::BytesPerSec{0.0};
}

LinkDelayStats measure_link_delays(
    const orbit::Constellation& constellation,
    const std::vector<util::GeoCoord>& ground_points, util::Seconds duration,
    util::Seconds step, util::Degrees min_elevation) {
  LinkDelayStats stats;
  const orbit::VisibilityOracle oracle(min_elevation);
  for (util::Seconds t{0.0}; t < duration; t += step) {
    const auto pos = constellation.all_positions_ecef(t);
    for (int i = 0; i < constellation.size(); ++i) {
      const util::SatId sat{i};
      if (!constellation.active(sat)) continue;
      const auto id = constellation.id_of(sat);
      const auto sample = [&](orbit::SatelliteId nbr,
                              util::RunningStats& dst) {
        if (!constellation.active(nbr)) return;
        const util::Km d{orbit::distance(
            pos[static_cast<std::size_t>(i)],
            pos[util::as_index(constellation.index_of(nbr))])};
        dst.add(util::propagation_delay(d).value());
      };
      // Each undirected link sampled once: "next" and "east" only.
      sample(constellation.intra_next(id), stats.intra_orbit_isl);
      sample(constellation.inter_east(id), stats.inter_orbit_isl);
    }
    for (const auto& g : ground_points) {
      // Sample every satellite the terminal could be scheduled onto — the
      // Starlink scheduler does not always pick the highest-elevation one,
      // so Table 1's GSL row spans the whole visible set.
      for (const auto& v : oracle.visible(g, constellation, pos)) {
        stats.gsl.add(util::propagation_delay(v.range).value());
      }
    }
  }
  return stats;
}

}  // namespace starcdn::net
