#include "net/link.h"

#include "orbit/visibility.h"

namespace starcdn::net {

const char* to_string(LinkType t) noexcept {
  switch (t) {
    case LinkType::kIntraOrbitIsl: return "intra-orbit ISL";
    case LinkType::kInterOrbitIsl: return "inter-orbit ISL";
    case LinkType::kGsl: return "GSL";
  }
  return "?";
}

double nominal_bandwidth_gbps(LinkType t) noexcept {
  switch (t) {
    case LinkType::kIntraOrbitIsl:
    case LinkType::kInterOrbitIsl:
      return 100.0;
    case LinkType::kGsl:
      return 20.0;
  }
  return 0.0;
}

LinkDelayStats measure_link_delays(
    const orbit::Constellation& constellation,
    const std::vector<util::GeoCoord>& ground_points, double duration_s,
    double step_s, double min_elevation_deg) {
  LinkDelayStats stats;
  const orbit::VisibilityOracle oracle(min_elevation_deg);
  for (double t = 0.0; t < duration_s; t += step_s) {
    const auto pos = constellation.all_positions_ecef(t);
    for (int i = 0; i < constellation.size(); ++i) {
      if (!constellation.active(i)) continue;
      const auto id = constellation.id_of(i);
      const auto sample = [&](orbit::SatelliteId nbr,
                              util::RunningStats& dst) {
        if (!constellation.active(nbr)) return;
        const double d = orbit::distance(
            pos[static_cast<std::size_t>(i)],
            pos[static_cast<std::size_t>(constellation.index_of(nbr))]);
        dst.add(util::propagation_delay_ms(d));
      };
      // Each undirected link sampled once: "next" and "east" only.
      sample(constellation.intra_next(id), stats.intra_orbit_isl);
      sample(constellation.inter_east(id), stats.inter_orbit_isl);
    }
    for (const auto& g : ground_points) {
      // Sample every satellite the terminal could be scheduled onto — the
      // Starlink scheduler does not always pick the highest-elevation one,
      // so Table 1's GSL row spans the whole visible set.
      for (const auto& v : oracle.visible(g, constellation, pos)) {
        stats.gsl.add(util::propagation_delay_ms(v.range_km));
      }
    }
  }
  return stats;
}

}  // namespace starcdn::net
