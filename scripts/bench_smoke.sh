#!/usr/bin/env bash
# Bench smoke for CI (and local use): proves the observability layer works
# end-to-end and stays cheap.
#
#   1. Runs one figure bench (Table 3) truncated via --epochs, with the
#      epoch time-series CSVs and the chrome://tracing JSON enabled, and
#      sanity-checks the artifacts (CSV header, trace JSON parses and
#      contains traceEvents).
#   2. Runs the streamed-replay RSS gate: bench_stream_scale generates and
#      replays the video trace in SoA chunks without materializing it and
#      must stay under ${SMOKE_STREAM_RSS_MB:-1500} MB peak RSS. CI raises
#      SMOKE_STREAM_SCALE to paper scale (>=100M requests); the default
#      keeps local runs quick. The rss_report.csv lands in the artifacts.
#   3. Builds bench_micro twice — default (profiling compiled out) and
#      -DSTARCDN_PROF=ON — and fails if the profiled build's geometric
#      mean slowdown across the micro benchmarks exceeds 5%.
#
# Usage: scripts/bench_smoke.sh [build-dir] [prof-build-dir]
# Artifacts land in ${SMOKE_OUT:-smoke_artifacts}.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build-smoke}
BUILD_PROF=${2:-build-smoke-prof}
OUT=${SMOKE_OUT:-smoke_artifacts}
OVERHEAD_LIMIT=${SMOKE_OVERHEAD_LIMIT:-1.05}

configure_and_build() {
  local dir=$1
  shift
  if [ ! -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  fi
  cmake --build "$dir" -j "$(nproc)" \
    --target bench_table3_relay_availability bench_stream_scale bench_micro
}

echo "== build (default: profiling compiled out) =="
configure_and_build "$BUILD"
echo "== build (STARCDN_PROF=ON) =="
configure_and_build "$BUILD_PROF" -DSTARCDN_PROF=ON

mkdir -p "$OUT"

echo "== figure bench end-to-end (Table 3, truncated) =="
"$BUILD/bench/bench_table3_relay_availability" \
  --epochs=40 --scale=0.05 --threads=2 \
  --out="$OUT" --series=smoke_ --trace="$OUT/table3_trace.json"

echo "== artifact checks =="
series_count=0
for f in "$OUT"/smoke_table3_*.csv; do
  [ -s "$f" ] || { echo "FAIL: empty series CSV $f"; exit 1; }
  head -1 "$f" | grep -q '^epoch,t_end_s,requests,' ||
    { echo "FAIL: bad series header in $f"; exit 1; }
  [ "$(wc -l <"$f")" -gt 2 ] || { echo "FAIL: too few rows in $f"; exit 1; }
  series_count=$((series_count + 1))
done
[ "$series_count" -ge 3 ] ||
  { echo "FAIL: expected >=3 series CSVs, got $series_count"; exit 1; }
python3 - "$OUT/table3_trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert trace.get("displayTimeUnit") == "ms", "missing displayTimeUnit"
assert len(events) > 10, f"too few trace events: {len(events)}"
phases = {e["ph"] for e in events}
assert phases <= {"X", "i"}, f"unexpected phases: {phases}"
names = {e["name"] for e in events}
for expected in ("Simulator::run", "epoch"):
    assert expected in names, f"missing event {expected}: {sorted(names)[:10]}"
print(f"trace OK: {len(events)} events, phases {sorted(phases)}")
EOF
echo "series CSVs OK ($series_count files)"

echo "== streamed replay + RSS budget gate =="
# Request count is duration-independent, so --epochs only trims the link
# schedule build; --scale=60 is >=100M requests (CI's paper-scale gate).
STREAM_SCALE=${SMOKE_STREAM_SCALE:-3}
STREAM_RSS_MB=${SMOKE_STREAM_RSS_MB:-1500}
"$BUILD/bench/bench_stream_scale" \
  --scale="$STREAM_SCALE" --chunk=65536 --epochs=480 --threads=2 \
  --rss-budget-mb="$STREAM_RSS_MB" --out="$OUT"
grep -q '^paper-scale streamed replay' "$OUT/rss_report.csv" ||
  { echo "FAIL: missing streamed-replay row in rss_report.csv"; exit 1; }
echo "streamed replay OK (scale=$STREAM_SCALE, budget ${STREAM_RSS_MB} MB)"

echo "== profiler overhead gate (bench_micro, limit ${OVERHEAD_LIMIT}x) =="
run_micro() {
  "$1/bench/bench_micro" \
    --benchmark_min_time=0.02 --benchmark_repetitions=5 \
    --benchmark_format=json --benchmark_out="$2" \
    --benchmark_out_format=json >/dev/null
}
run_micro "$BUILD" "$OUT/micro_base.json"
run_micro "$BUILD_PROF" "$OUT/micro_prof.json"
python3 - "$OUT/micro_base.json" "$OUT/micro_prof.json" "$OVERHEAD_LIMIT" <<'EOF'
import json, math, sys

def best_times(path):
    # Min across repetitions: the standard noise-robust estimator for
    # microbenchmarks (ambient load only ever inflates a sample).
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "iteration":
            name = b["run_name"]
            out[name] = min(out.get(name, float("inf")), b["real_time"])
    return out

base, prof = best_times(sys.argv[1]), best_times(sys.argv[2])
limit = float(sys.argv[3])
# BM_ObsProfScope *measures the scope itself* (compiled out in the base
# build), so it is the direct cost, not overhead on a workload — excluded
# from the gate, which asks "do compiled-in timers slow real hot paths?".
common = sorted(n for n in set(base) & set(prof)
                if "BM_ObsProfScope" not in n)
assert common, "no common benchmarks between the two builds"
ratios = []
for name in common:
    r = prof[name] / base[name]
    ratios.append(r)
    flag = "  <-- slow" if r > limit else ""
    print(f"  {name:48s} {base[name]:10.1f} -> {prof[name]:10.1f} ns "
          f"({r:5.2f}x){flag}")
geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
print(f"geomean slowdown with STARCDN_PROF=ON: {geomean:.3f}x "
      f"(limit {limit:.2f}x)")
if geomean > limit:
    sys.exit(f"FAIL: profiler overhead {geomean:.3f}x exceeds {limit:.2f}x")
EOF

echo "bench smoke OK; artifacts in $OUT/"
