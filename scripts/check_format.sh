#!/usr/bin/env bash
# Check (or, with --fix, apply) clang-format over the whole tree.
#
#   scripts/check_format.sh          # verify, non-zero exit on drift
#   scripts/check_format.sh --fix    # rewrite files in place
#
# Exits 0 with a notice when clang-format is not installed, so local dev
# boxes without LLVM tooling aren't blocked; CI installs clang-format and
# gets the real check.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for cand in clang-format clang-format-18 clang-format-17 clang-format-16; do
    if command -v "${cand}" > /dev/null 2>&1; then
      CLANG_FORMAT="${cand}"
      break
    fi
  done
fi
if [[ -z "${CLANG_FORMAT}" ]]; then
  echo "check_format: clang-format not found on PATH; skipping (CI runs it)."
  exit 0
fi

mapfile -t files < <(git ls-files -- \
  'src/**/*.h' 'src/**/*.cpp' \
  'tests/*.cpp' 'bench/*.h' 'bench/*.cpp' 'examples/*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no files matched." >&2
  exit 1
fi

if [[ "${1:-}" == "--fix" ]]; then
  "${CLANG_FORMAT}" -i "${files[@]}"
  echo "check_format: formatted ${#files[@]} files."
  exit 0
fi

fail=0
for f in "${files[@]}"; do
  if ! "${CLANG_FORMAT}" --dry-run -Werror "${f}" > /dev/null 2>&1; then
    echo "needs formatting: ${f}"
    fail=1
  fi
done
if [[ ${fail} -ne 0 ]]; then
  echo "check_format: run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: ${#files[@]} files clean."
