// Fig. 3 / Fig. 5b: ground tracks of neighbouring satellites and the ISL
// grid. Demonstrates the key geometric fact behind relayed fetch: a
// satellite's trailing inter-orbit neighbour traces (nearly) the same
// ground path one drift interval earlier.
#include "bench_common.h"

#include "net/isl_graph.h"
#include "orbit/propagator.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 3 / 5b — ground tracks & ISL grid",
      "Fig. 3 and Fig. 5b, Sections 3.1/3.3");

  const orbit::Constellation shell{orbit::WalkerParams{}};
  const orbit::SatelliteId red{10, 0};
  const orbit::SatelliteId green{13, 0};  // three planes away (paper setup)

  // Sample both tracks over one orbital period.
  const double period = orbit::orbital_period(shell.elements(red)).value();
  util::TextTable table({"t(min)", "red lat", "red lon", "green lat",
                         "green lon"});
  for (double t = 0.0; t <= period; t += period / 12.0) {
    const auto r = orbit::ecef_to_geodetic(shell.position_ecef(red, util::Seconds{t}));
    const auto g = orbit::ecef_to_geodetic(shell.position_ecef(green, util::Seconds{t}));
    table.add_row({util::fmt(t / 60.0, 1), util::fmt(r.lat_deg, 1),
                   util::fmt(r.lon_deg, 1), util::fmt(g.lat_deg, 1),
                   util::fmt(g.lon_deg, 1)});
  }
  table.print(std::cout, "Ground tracks over one period");
  table.write_csv(harness.out_dir() + "/fig3_groundtrack.csv");

  // Quantify the Fig. 3 claim: the trailing neighbour's track now is close
  // to where this satellite's track will be one drift interval later.
  double best_offset = 0.0, best_err = 1e18;
  constexpr int kSamples = 24;
  for (double dt = 15.0; dt <= 2.0 * 3'600.0; dt += 15.0) {
    double err = 0.0;
    for (int k = 0; k < kSamples; ++k) {
      const double t = period * k / kSamples;
      const auto a = orbit::ecef_to_geodetic(shell.position_ecef(red, util::Seconds{t + dt}));
      const auto b = orbit::ecef_to_geodetic(shell.position_ecef(green, util::Seconds{t}));
      err += util::haversine(a, b).value();
    }
    err /= kSamples;
    if (err < best_err) {
      best_err = err;
      best_offset = dt;
    }
  }
  std::printf(
      "\nTrack alignment: satellite (p=%d) revisits neighbour (p=%d)'s\n"
      "path after %.1f min (mean track separation %.0f km — inside the\n"
      "~1,000 km footprint radius, so the neighbour's cache holds this\n"
      "region's recent requests).\n"
      "Paper claim (Fig. 3): the trailing neighbour traveled this path in\n"
      "the previous drift interval -> relayed fetch exploits its cache.\n",
      red.plane.value(), green.plane.value(), best_offset / 60.0, best_err);

  // Fig. 5b: the +grid ISL structure.
  const net::IslGraph graph(shell);
  std::printf(
      "\nISL grid: %d satellites, %zu ISLs (%d intra-orbit + %d inter-orbit "
      "per satellite), %d broken.\n",
      shell.size(), graph.edges().size(), 2, 2, graph.broken_edge_count());
  return 0;
}
