// Table 2: percent of objects (traffic) accessed in one European country
// that are also accessed in another — the language-diversity effect that
// makes orbital motion expensive.
#include "bench_common.h"

#include "trace/workload.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Table 2 — cross-country content overlap",
      "Table 2, Section 3.1.1");

  auto params = trace::default_params(trace::TrafficClass::kVideo);
  params.duration_s = util::kDay.value();
  const trace::WorkloadModel workload(util::paper_cities(), params);
  const auto traces = workload.generate();

  // Britain=London(5), Germany=Frankfurt(6), Turkey=Istanbul(8).
  const std::vector<std::pair<std::string, std::size_t>> countries = {
      {"Britain", 5}, {"Germany", 6}, {"Turkey", 8}};

  util::TextTable table({"", "Britain", "Germany", "Turkey"});
  for (const auto& [row_name, row_idx] : countries) {
    std::vector<std::string> cells{row_name};
    for (const auto& [col_name, col_idx] : countries) {
      if (row_idx == col_idx) {
        cells.push_back("100%");
        continue;
      }
      const auto r = trace::overlap(traces[row_idx], traces[col_idx]);
      cells.push_back(util::fmt_pct(r.object_overlap, 0) + "(" +
                      util::fmt_pct(r.traffic_overlap, 0) + ")");
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout, "Table 2: objects%(traffic%) overlap");
  table.write_csv(harness.out_dir() + "/table2_overlap.csv");
  std::cout << "Paper: GB->DE 11%(49%)  GB->TR 2%(15%)  DE->GB 16%(45%)\n"
               "       DE->TR 4%(31%)   TR->GB 23%(37%) TR->DE 34%(72%)\n"
               "Takeaway to reproduce: overlap is LOW across languages.\n";
  return 0;
}
