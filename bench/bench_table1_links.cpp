// Table 1: propagation delay and bandwidth of Starlink links.
//
// The paper lists measured means/stds/mins for intra-orbit ISLs,
// inter-orbit ISLs and GSLs. We regenerate the table purely from the
// constellation geometry — matching it validates the orbital substrate.
#include "bench_common.h"

#include "net/link.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Table 1 — link propagation delays & bandwidth",
      "Table 1, Section 2.1");

  const orbit::Constellation shell{orbit::WalkerParams{}};
  std::vector<util::GeoCoord> grounds;
  for (const auto& c : util::paper_cities()) grounds.push_back(c.coord);
  // One full orbital period sampled every 30 s covers all link geometries.
  const auto stats = net::measure_link_delays(shell, grounds, util::Seconds{5'760.0},
                               util::Seconds{30.0});

  util::TextTable table({"Link", "Avg Delay(ms)", "Std Delay(ms)",
                         "Min Delay(ms)", "Bandwidth(Gbps)", "Paper avg/std/min"});
  const auto row = [&](const char* name, const util::RunningStats& s,
                       net::LinkType type, const char* paper) {
    table.add_row({name, util::fmt(s.mean()), util::fmt(s.stddev(), 3),
                   util::fmt(s.min()),
                   util::fmt(util::to_gbps(net::nominal_bandwidth(type)), 0), paper});
  };
  row("Intra-orbit ISL", stats.intra_orbit_isl, net::LinkType::kIntraOrbitIsl,
      "8.03 / 0.376 / 4.76");
  row("Inter-orbit ISL", stats.inter_orbit_isl, net::LinkType::kInterOrbitIsl,
      "2.15 / 0.492 / 1.32");
  row("GSL", stats.gsl, net::LinkType::kGsl, "2.94 / 1.01 / 1.82");
  table.print(std::cout, "Table 1 (geometry-derived)");
  table.write_csv(harness.out_dir() + "/table1_links.csv");
  return 0;
}
