// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure of the StarCDN paper: it
// prints the same rows/series the paper reports (plus a CSV dump under
// bench_results/) at a reduced, single-machine scale. EXPERIMENTS.md maps
// each output to the paper's numbers.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/simulator.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/table.h"

namespace starcdn::bench {

/// Directory for CSV dumps; created on demand, failures ignored.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n################################################\n"
            << "# StarCDN reproduction: " << what << "\n"
            << "# Paper reference: " << paper_ref << "\n"
            << "################################################\n";
}

/// The evaluation scenario shared by the hit-rate/latency benches:
/// the paper's nine cities, the 72x18 Starlink shell, a one-day video
/// trace, and a 15-second link schedule. Heavyweight members are built
/// once and reused across capacity sweeps.
struct VideoScenario {
  explicit VideoScenario(double duration_s = util::kDay,
                         double scale = 1.0) {
    params = trace::default_params(trace::TrafficClass::kVideo);
    params.duration_s = duration_s;
    params.requests_per_weight = static_cast<std::size_t>(
        static_cast<double>(params.requests_per_weight) * scale);
    workload = std::make_unique<trace::WorkloadModel>(util::paper_cities(),
                                                      params);
    requests = trace::merge_by_time(workload->generate());
    shell = std::make_unique<orbit::Constellation>(orbit::WalkerParams{});
    schedule = std::make_unique<sched::LinkSchedule>(
        *shell, util::paper_cities(), duration_s);
    std::printf("scenario: %zu requests / %.1f TB over %zu cities, %zu epochs\n",
                requests.size(), total_bytes() / 1e12,
                util::paper_cities().size(), schedule->epochs());
  }

  [[nodiscard]] double total_bytes() const {
    double b = 0.0;
    for (const auto& r : requests) b += static_cast<double>(r.size);
    return b;
  }

  trace::WorkloadParams params;
  std::unique_ptr<trace::WorkloadModel> workload;
  std::vector<trace::Request> requests;
  std::unique_ptr<orbit::Constellation> shell;
  std::unique_ptr<sched::LinkSchedule> schedule;
};

/// Capacity axis used for the hit-rate curves. The paper sweeps 10-100 GB
/// against ~430 GB/day of per-satellite traffic; we sweep the same
/// *pressure ratios* against our reduced per-satellite traffic, so the
/// curves cover the same regime (see EXPERIMENTS.md, "scale mapping").
inline const std::vector<std::pair<std::string, util::Bytes>>&
capacity_axis() {
  static const std::vector<std::pair<std::string, util::Bytes>> axis = {
      {"10", util::gib(1)},  {"20", util::gib(2)},  {"40", util::gib(4)},
      {"60", util::gib(8)},  {"80", util::gib(16)}, {"100", util::gib(32)},
  };
  return axis;
}

}  // namespace starcdn::bench
