// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure of the StarCDN paper: it
// prints the same rows/series the paper reports (plus a CSV dump under
// bench_results/) at a reduced, single-machine scale. EXPERIMENTS.md maps
// each output to the paper's numbers.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/run_report.h"
#include "core/simulator.h"
#include "obs/tracer.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/mem.h"
#include "util/parallel.h"
#include "util/table.h"

namespace starcdn::bench {

/// Wall-clock stopwatch for reporting bench phase timings.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Directory for CSV dumps; created on demand, failures ignored.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n################################################\n"
            << "# StarCDN reproduction: " << what << "\n"
            << "# Paper reference: " << paper_ref << "\n"
            << "################################################\n";
}

/// The evaluation scenario shared by the hit-rate/latency benches:
/// the paper's nine cities, the 72x18 Starlink shell, a one-day video
/// trace, and a 15-second link schedule. Heavyweight members are built
/// once and reused across capacity sweeps.
///
/// With `chunk == 0` the whole trace is materialized into `requests`
/// (legacy mode). With `chunk > 0` nothing is materialized: replays pull
/// chunked blocks from `workload->generate_stream()` and trace memory
/// stays O(chunk) regardless of --scale.
struct VideoScenario {
  explicit VideoScenario(util::Seconds duration = util::kDay,
                         double scale = 1.0, std::uint64_t seed = 0,
                         std::size_t chunk = 0)
      : stream_chunk(chunk) {
    params = trace::default_params(trace::TrafficClass::kVideo);
    params.duration_s = duration.value();
    params.requests_per_weight = static_cast<std::size_t>(
        static_cast<double>(params.requests_per_weight) * scale);
    if (seed != 0) params.seed = seed;
    workload = std::make_unique<trace::WorkloadModel>(util::paper_cities(),
                                                      params);
    if (stream_chunk == 0) requests = trace::merge_by_time(workload->generate());
    shell = std::make_unique<orbit::Constellation>(orbit::WalkerParams{});
    schedule = std::make_unique<sched::LinkSchedule>(
        *shell, util::paper_cities(), duration);
    if (stream_chunk == 0) {
      std::printf(
          "scenario: %zu requests / %.1f TB over %zu cities, %zu epochs\n",
          requests.size(), total_bytes() / 1e12, util::paper_cities().size(),
          schedule->epochs());
    } else {
      std::printf(
          "scenario: %llu requests (streamed, chunk=%zu) over %zu cities, "
          "%zu epochs\n",
          static_cast<unsigned long long>(workload->total_request_count()),
          stream_chunk, util::paper_cities().size(), schedule->epochs());
    }
  }

  [[nodiscard]] double total_bytes() const {
    double b = 0.0;
    for (const auto& r : requests) b += static_cast<double>(r.size);
    return b;
  }

  /// Replay the scenario trace into `sim` — materialized vector or
  /// bounded-memory stream, per `stream_chunk`. Results are bitwise
  /// identical either way (asserted by tests/test_stream.cpp).
  void replay_into(core::Simulator& sim) const {
    if (stream_chunk > 0) {
      const auto stream = workload->generate_stream({stream_chunk});
      sim.run(*stream);
    } else {
      sim.run(requests);
    }
  }

  trace::WorkloadParams params;
  std::size_t stream_chunk = 0;
  std::unique_ptr<trace::WorkloadModel> workload;
  std::vector<trace::Request> requests;
  std::unique_ptr<orbit::Constellation> shell;
  std::unique_ptr<sched::LinkSchedule> schedule;
};

/// Capacity axis used for the hit-rate curves. The paper sweeps 10-100 GB
/// against ~430 GB/day of per-satellite traffic; we sweep the same
/// *pressure ratios* against our reduced per-satellite traffic, so the
/// curves cover the same regime (see EXPERIMENTS.md, "scale mapping").
inline const std::vector<std::pair<std::string, util::Bytes>>&
capacity_axis() {
  static const std::vector<std::pair<std::string, util::Bytes>> axis = {
      {"10", util::gib(1)},  {"20", util::gib(2)},  {"40", util::gib(4)},
      {"60", util::gib(8)},  {"80", util::gib(16)}, {"100", util::gib(32)},
  };
  return axis;
}

/// Uniform CLI + lifecycle shared by every bench binary. Replaces the
/// copy-pasted banner / scenario / results-dir setup each bench used to
/// carry. Flags (all optional; unknown flags abort with usage):
///
///   --threads=N    worker threads (default: STARCDN_THREADS env/cores)
///   --seed=N       workload + simulator seed (default: repo defaults)
///   --out=DIR      CSV output directory (default: bench_results)
///   --epochs=N     truncate the scenario to N scheduler epochs (15 s
///                  each) — the fast path for smoke tests and CI
///   --scale=F      workload request-volume scale factor
///   --trace=FILE   record a chrome://tracing JSON timeline to FILE
///   --series=PFX   write per-variant epoch-series CSVs under
///                  DIR/PFX<tag>_<variant>.csv from simulate() calls
///   --chunk=N      stream the scenario trace in N-request SoA blocks
///                  instead of materializing it (bounded-memory replay)
///   --rss-budget-mb=N  assert peak RSS <= N MB at exit (exit code 3 on
///                  breach); an rss_report.csv lands in --out either way
///
/// The Harness installs the process tracer for --trace and writes the
/// JSON on destruction, so `Harness h(argc, argv, ...)` at the top of
/// main() is the whole integration.
class Harness {
 public:
  struct Options {
    int threads = 0;
    std::uint64_t seed = 0;  // 0 = keep per-component defaults
    std::string out_dir = "bench_results";
    std::size_t epochs = 0;  // 0 = full-day scenario
    double scale = 1.0;
    std::string trace_path;
    std::string series_prefix;
    std::size_t chunk = 0;       // 0 = materialized trace
    double rss_budget_mb = 0.0;  // 0 = report only, no assertion
  };

  Harness(int argc, char** argv, const std::string& what,
          const std::string& paper_ref)
      : what_(what) {
    parse(argc, argv);
    if (opts_.threads > 0) util::set_parallel_threads(opts_.threads);
    if (!opts_.trace_path.empty()) {
      tracer_ = std::make_unique<obs::Tracer>();
      obs::set_tracer(tracer_.get());
    }
    banner(what, paper_ref);
    std::printf("harness: threads=%d seed=%llu out=%s%s\n",
                util::parallel_threads(),
                static_cast<unsigned long long>(opts_.seed),
                opts_.out_dir.c_str(),
                opts_.epochs != 0 ? " (truncated scenario)" : "");
  }

  ~Harness() {
    if (tracer_) {
      obs::set_tracer(nullptr);
      if (tracer_->write_json(opts_.trace_path)) {
        std::printf("trace: %zu events -> %s (open in ui.perfetto.dev)\n",
                    tracer_->events(), opts_.trace_path.c_str());
      }
    }
    report_rss();
  }
  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] const Options& opts() const noexcept { return opts_; }

  /// Output directory (created on demand; failures ignored).
  [[nodiscard]] const std::string& out_dir() const {
    std::error_code ec;
    std::filesystem::create_directories(opts_.out_dir, ec);
    return opts_.out_dir;
  }
  [[nodiscard]] std::string out_path(const std::string& file) const {
    return out_dir() + "/" + file;
  }

  /// The shared evaluation scenario, built lazily so geometry-only
  /// benches never pay for trace generation. --epochs / --scale / --seed
  /// shape it.
  [[nodiscard]] VideoScenario& scenario() {
    if (!scenario_) {
      const util::Seconds duration =
          opts_.epochs != 0
              ? util::Seconds{15.0 * static_cast<double>(opts_.epochs)}
              : util::kDay;
      scenario_ = std::make_unique<VideoScenario>(duration, opts_.scale,
                                                  opts_.seed, opts_.chunk);
    }
    return *scenario_;
  }

  /// Bench-chosen scenario scale, honored unless --scale was passed.
  /// Call before the first scenario() access.
  Harness& default_scale(double s) {
    if (!scale_set_) opts_.scale = s;
    return *this;
  }

  /// Base SimConfig with the harness seed applied; benches layer their
  /// per-point settings on top (or use SimConfig::Builder directly).
  [[nodiscard]] core::SimConfig sim_config() const {
    core::SimConfig cfg;
    if (opts_.seed != 0) cfg.seed = opts_.seed;
    return cfg;
  }

  /// One-call replay: register `variants`, replay the scenario, finish()
  /// into a RunReport, and honor --series by dumping per-variant epoch
  /// CSVs tagged with `tag`.
  [[nodiscard]] core::RunReport simulate(
      core::SimConfig cfg, std::initializer_list<core::Variant> variants,
      const std::string& tag = "") {
    if (opts_.seed != 0) cfg.seed = opts_.seed;
    VideoScenario& s = scenario();
    core::Simulator sim(*s.shell, *s.schedule, std::move(cfg));
    for (const core::Variant v : variants) sim.add_variant(v);
    s.replay_into(sim);
    core::RunReport report = sim.finish();
    if (!opts_.series_prefix.empty()) {
      const auto paths = report.write_series_csv_files(
          out_dir() + "/" + opts_.series_prefix + tag +
          (tag.empty() ? "" : "_"));
      for (const auto& p : paths) std::printf("series: %s\n", p.c_str());
    }
    return report;
  }

 private:
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto eat = [&](const char* flag, std::string* into) {
        const std::string prefix = std::string(flag) + "=";
        if (a.rfind(prefix, 0) != 0) return false;
        *into = a.substr(prefix.size());
        return true;
      };
      std::string v;
      if (eat("--threads", &v)) {
        opts_.threads = std::atoi(v.c_str());
      } else if (eat("--seed", &v)) {
        opts_.seed = std::strtoull(v.c_str(), nullptr, 10);
      } else if (eat("--out", &v)) {
        opts_.out_dir = v;
      } else if (eat("--epochs", &v)) {
        opts_.epochs = std::strtoull(v.c_str(), nullptr, 10);
      } else if (eat("--scale", &v)) {
        opts_.scale = std::atof(v.c_str());
        scale_set_ = true;
      } else if (eat("--trace", &v)) {
        opts_.trace_path = v;
      } else if (eat("--series", &v)) {
        opts_.series_prefix = v;
      } else if (eat("--chunk", &v)) {
        opts_.chunk = std::strtoull(v.c_str(), nullptr, 10);
      } else if (eat("--rss-budget-mb", &v)) {
        opts_.rss_budget_mb = std::atof(v.c_str());
      } else {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: %s [--threads=N] [--seed=N] "
                     "[--out=DIR] [--epochs=N] [--scale=F] [--trace=FILE] "
                     "[--series=PREFIX] [--chunk=N] [--rss-budget-mb=N]\n",
                     a.c_str(), argv[0]);
        std::exit(2);
      }
    }
  }

  /// Print peak RSS, append it to --out/rss_report.csv, and enforce the
  /// --rss-budget-mb ceiling (exit 3 on breach). Runs from the destructor
  /// so every bench gets the paper-scale memory gate for free.
  void report_rss() {
    const std::uint64_t peak = util::peak_rss_bytes();
    if (peak == 0) return;  // platform without RUSAGE maxrss support
    const double peak_mb = static_cast<double>(peak) / (1024.0 * 1024.0);
    if (opts_.rss_budget_mb > 0.0) {
      std::printf("rss: peak=%.1f MB budget=%.1f MB chunk=%zu\n", peak_mb,
                  opts_.rss_budget_mb, opts_.chunk);
    } else {
      std::printf("rss: peak=%.1f MB chunk=%zu\n", peak_mb, opts_.chunk);
    }
    std::ofstream report(out_path("rss_report.csv"), std::ios::app);
    if (report) {
      report << what_ << ',' << peak_mb << ',' << opts_.rss_budget_mb << ','
             << opts_.chunk << '\n';
    }
    if (opts_.rss_budget_mb > 0.0 && peak_mb > opts_.rss_budget_mb) {
      std::fprintf(stderr, "rss: peak %.1f MB exceeds budget %.1f MB\n",
                   peak_mb, opts_.rss_budget_mb);
      std::exit(3);
    }
  }

  Options opts_;
  std::string what_;
  bool scale_set_ = false;
  std::unique_ptr<VideoScenario> scenario_;
  std::unique_ptr<obs::Tracer> tracer_;
};

/// Run `point_fn(label, capacity)` for every capacity_axis() entry and
/// return the results in axis order. Points run concurrently (each one
/// populates its own Simulator and caches, so they share nothing mutable)
/// on the global pool; results land in pre-sized per-point slots, keeping
/// the sweep's output identical to a serial run. The per-point wall time
/// of the whole sweep is printed for the bench log.
template <typename Fn>
auto sweep_capacity_axis(const char* what, Fn&& point_fn) {
  const auto& axis = capacity_axis();
  using Result = decltype(point_fn(std::string{}, util::Bytes{}));
  std::vector<Result> out(axis.size());
  WallTimer timer;
  util::parallel_for(axis.size(), [&](std::size_t i) {
    out[i] = point_fn(axis[i].first, axis[i].second);
  });
  std::printf("sweep[%s]: %zu points in %.2f s (%d thread%s)\n", what,
              axis.size(), timer.seconds(), util::parallel_threads(),
              util::parallel_threads() == 1 ? "" : "s");
  return out;
}

}  // namespace starcdn::bench
