// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench regenerates one table or figure of the StarCDN paper: it
// prints the same rows/series the paper reports (plus a CSV dump under
// bench_results/) at a reduced, single-machine scale. EXPERIMENTS.md maps
// each output to the paper's numbers.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.h"
#include "orbit/constellation.h"
#include "sched/scheduler.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/parallel.h"
#include "util/table.h"

namespace starcdn::bench {

/// Wall-clock stopwatch for reporting bench phase timings.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Directory for CSV dumps; created on demand, failures ignored.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n################################################\n"
            << "# StarCDN reproduction: " << what << "\n"
            << "# Paper reference: " << paper_ref << "\n"
            << "################################################\n";
}

/// The evaluation scenario shared by the hit-rate/latency benches:
/// the paper's nine cities, the 72x18 Starlink shell, a one-day video
/// trace, and a 15-second link schedule. Heavyweight members are built
/// once and reused across capacity sweeps.
struct VideoScenario {
  explicit VideoScenario(util::Seconds duration = util::kDay,
                         double scale = 1.0) {
    params = trace::default_params(trace::TrafficClass::kVideo);
    params.duration_s = duration.value();
    params.requests_per_weight = static_cast<std::size_t>(
        static_cast<double>(params.requests_per_weight) * scale);
    workload = std::make_unique<trace::WorkloadModel>(util::paper_cities(),
                                                      params);
    requests = trace::merge_by_time(workload->generate());
    shell = std::make_unique<orbit::Constellation>(orbit::WalkerParams{});
    schedule = std::make_unique<sched::LinkSchedule>(
        *shell, util::paper_cities(), duration);
    std::printf("scenario: %zu requests / %.1f TB over %zu cities, %zu epochs\n",
                requests.size(), total_bytes() / 1e12,
                util::paper_cities().size(), schedule->epochs());
  }

  [[nodiscard]] double total_bytes() const {
    double b = 0.0;
    for (const auto& r : requests) b += static_cast<double>(r.size);
    return b;
  }

  trace::WorkloadParams params;
  std::unique_ptr<trace::WorkloadModel> workload;
  std::vector<trace::Request> requests;
  std::unique_ptr<orbit::Constellation> shell;
  std::unique_ptr<sched::LinkSchedule> schedule;
};

/// Capacity axis used for the hit-rate curves. The paper sweeps 10-100 GB
/// against ~430 GB/day of per-satellite traffic; we sweep the same
/// *pressure ratios* against our reduced per-satellite traffic, so the
/// curves cover the same regime (see EXPERIMENTS.md, "scale mapping").
inline const std::vector<std::pair<std::string, util::Bytes>>&
capacity_axis() {
  static const std::vector<std::pair<std::string, util::Bytes>> axis = {
      {"10", util::gib(1)},  {"20", util::gib(2)},  {"40", util::gib(4)},
      {"60", util::gib(8)},  {"80", util::gib(16)}, {"100", util::gib(32)},
  };
  return axis;
}

/// Run `point_fn(label, capacity)` for every capacity_axis() entry and
/// return the results in axis order. Points run concurrently (each one
/// populates its own Simulator and caches, so they share nothing mutable)
/// on the global pool; results land in pre-sized per-point slots, keeping
/// the sweep's output identical to a serial run. The per-point wall time
/// of the whole sweep is printed for the bench log.
template <typename Fn>
auto sweep_capacity_axis(const char* what, Fn&& point_fn) {
  const auto& axis = capacity_axis();
  using Result = decltype(point_fn(std::string{}, util::Bytes{}));
  std::vector<Result> out(axis.size());
  WallTimer timer;
  util::parallel_for(axis.size(), [&](std::size_t i) {
    out[i] = point_fn(axis[i].first, axis[i].second);
  });
  std::printf("sweep[%s]: %zu points in %.2f s (%d thread%s)\n", what,
              axis.size(), timer.seconds(), util::parallel_threads(),
              util::parallel_threads() == 1 ? "" : "s");
  return out;
}

}  // namespace starcdn::bench
