// Fig. 13 (appendix): SpaceGEN fidelity under the StarCDN-Fetch
// architecture — the synthetic trace must drive the hashed satellite
// system to the same hit rates as the production trace.
#include "bench_common.h"

#include "trace/spacegen.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 13 — fidelity under StarCDN-Fetch emulation",
      "Fig. 13a-13d, Appendix A.2");

  auto params = trace::default_params(trace::TrafficClass::kVideo);
  params.object_count = 120'000;
  params.requests_per_weight = 60'000;
  params.duration_s = util::kDay.value();
  const trace::WorkloadModel workload(util::paper_cities(), params);
  const auto production = workload.generate();

  const auto gen = trace::SpaceGen::fit(production);
  trace::SpaceGenConfig cfg;
  std::size_t max_len = 0;
  for (const auto& t : production) max_len = std::max(max_len, t.requests.size());
  cfg.target_requests_per_location = max_len;
  const auto synthetic = gen.generate(cfg);

  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{params.duration_s});

  const auto fetch_rates = [&](const trace::MultiTrace& traces,
                               util::Bytes cap) {
    core::SimConfig sim_cfg;
    sim_cfg.cache_capacity = cap;
    sim_cfg.buckets = 4;
    sim_cfg.sample_latency = false;
    core::Simulator sim(shell, schedule, sim_cfg);
    sim.add_variant(core::Variant::kHashOnly);  // StarCDN-Fetch architecture
    sim.run(trace::merge_by_time(traces));
    const auto& m = sim.metrics(core::Variant::kHashOnly);
    return std::pair{m.request_hit_rate(), m.byte_hit_rate()};
  };

  util::TextTable table({"Cache(GB)", "Prod RHR", "Synth RHR", "Prod BHR",
                         "Synth BHR"});
  double rhr_gap = 0.0, bhr_gap = 0.0;
  const std::vector<std::pair<std::string, util::Bytes>> caps = {
      {"20", util::mib(512)}, {"50", util::gib(1)}, {"100", util::gib(2)}};
  for (const auto& [label, cap] : caps) {
    const auto [pr, pb] = fetch_rates(production, cap);
    const auto [sr, sb] = fetch_rates(synthetic, cap);
    rhr_gap += std::abs(pr - sr);
    bhr_gap += std::abs(pb - sb);
    table.add_row({label, util::fmt_pct(pr), util::fmt_pct(sr),
                   util::fmt_pct(pb), util::fmt_pct(sb)});
  }
  table.print(std::cout, "Fig. 13c/13d StarCDN-Fetch hit rates");
  table.write_csv(harness.out_dir() + "/fig13_fetch_fidelity.csv");
  std::printf(
      "Mean gaps under StarCDN-Fetch: request %.2f%%, byte %.2f%%\n"
      "(paper: 'difference between the two traces is small').\n",
      rhr_gap / static_cast<double>(caps.size()) * 100,
      bhr_gap / static_cast<double>(caps.size()) * 100);
  return 0;
}
