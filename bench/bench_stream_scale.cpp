// Paper-scale streaming gate: generate and replay a >=100M-request video
// trace through the simulator WITHOUT ever materializing it, and assert
// the process stays under a fixed RSS budget (--rss-budget-mb; CI wires
// this to the smoke job). With the legacy materialized path this workload
// needs ~32 bytes/request of trace memory (~3.2 GB at 100M) before the
// simulator even starts; the streamed path holds one SoA chunk plus the
// generator's window buffers regardless of --scale.
//
//   $ bench_stream_scale --scale=61 --chunk=65536 --rss-budget-mb=1500
//
// Defaults to a small scale so the binary is cheap to run by hand; the CI
// smoke job passes the paper-scale flags explicitly.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(argc, argv,
                         "paper-scale streamed replay (bounded RSS)",
                         "Section 4.2 (SpaceGEN at production scale)");
  harness.default_scale(1.0);

  bench::VideoScenario& scenario = harness.scenario();
  if (scenario.stream_chunk == 0) {
    // Materialized baseline mode: same workload through the legacy
    // whole-trace path, for the EXPERIMENTS.md before/after RSS table.
    // The CI gate always passes --chunk; a misconfigured gate still fails
    // because the materialized path blows the --rss-budget-mb ceiling.
    std::printf("materialized baseline mode (--chunk=0): trace held fully "
                "in memory\n");
  }

  core::SimConfig cfg = harness.sim_config();
  cfg.cache_capacity = util::gib(8);
  cfg.buckets = 9;
  cfg.sample_latency = false;
  core::Simulator sim(*scenario.shell, *scenario.schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);

  bench::WallTimer timer;
  scenario.replay_into(sim);
  const double wall = timer.seconds();

  const auto& m = sim.metrics(core::Variant::kStarCdn);
  const auto total = scenario.workload->total_request_count();
  std::printf(
      "streamed %llu requests in %.1f s (%.2f Mreq/s): request hit rate "
      "%.2f%%, byte hit rate %.2f%%\n",
      static_cast<unsigned long long>(total), wall,
      static_cast<double>(total) / wall / 1e6, 100.0 * m.request_hit_rate(),
      100.0 * m.byte_hit_rate());
  return 0;
}
