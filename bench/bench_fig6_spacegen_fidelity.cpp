// Fig. 6: SpaceGEN fidelity — the synthetic trace must match the
// production trace in (a) object spread, (b) traffic spread, (c/d) hit
// rates of a terrestrial LRU cache, and (e/f) hit rates of a satellite
// (orbiting) LRU cache.
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"

#include "cache/lru.h"
#include "trace/spacegen.h"
#include "util/histogram.h"

namespace {

using namespace starcdn;

util::Histogram spread(const trace::MultiTrace& traces, bool weighted) {
  std::unordered_map<trace::ObjectId, std::unordered_set<std::uint16_t>> locs;
  std::unordered_map<trace::ObjectId, double> bytes;
  for (const auto& t : traces) {
    for (const auto& r : t.requests) {
      locs[r.object].insert(t.location);
      bytes[r.object] += static_cast<double>(r.size);
    }
  }
  util::Histogram h(0.5, 9.5, 9);
  for (const auto& [id, set] : locs) {
    h.add(static_cast<double>(set.size()), weighted ? bytes[id] : 1.0);
  }
  return h;
}

double terrestrial_lru(const trace::LocationTrace& t, util::Bytes cap,
                       bool byte_rate) {
  cache::LruCache c(cap);
  for (const auto& r : t.requests) c.access(r.object, r.size);
  return byte_rate ? c.stats().byte_hit_rate() : c.stats().request_hit_rate();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(
      argc, argv, "Fig. 6 — SpaceGEN synthetic vs production traces",
      "Fig. 6a-6f, Section 4.3");

  // Production trace (our Akamai substitution) at a moderate scale.
  auto params = trace::default_params(trace::TrafficClass::kVideo);
  params.object_count = 120'000;
  params.requests_per_weight = 60'000;
  params.duration_s = util::kDay.value();
  const trace::WorkloadModel workload(util::paper_cities(), params);
  const auto production = workload.generate();

  // Fit SpaceGEN and regenerate a trace of comparable volume.
  const auto gen = trace::SpaceGen::fit(production);
  trace::SpaceGenConfig cfg;
  std::size_t max_len = 0;
  for (const auto& t : production) max_len = std::max(max_len, t.requests.size());
  cfg.target_requests_per_location = max_len;
  const auto synthetic = gen.generate(cfg);

  // --- Fig. 6a/6b: spread CDFs ---------------------------------------------
  for (const bool weighted : {false, true}) {
    const auto p = spread(production, weighted);
    const auto s = spread(synthetic, weighted);
    util::TextTable table({"Locations", "Production CDF", "Synthetic CDF"});
    const auto pc = p.cdf();
    const auto sc = s.cdf();
    for (std::size_t i = 0; i < pc.size(); ++i) {
      table.add_row({std::to_string(i + 1), util::fmt(pc[i], 3),
                     util::fmt(sc[i], 3)});
    }
    const std::string name = weighted ? "6b traffic spread" : "6a object spread";
    table.print(std::cout, "Fig. " + name);
    table.write_csv(harness.out_dir() + "/fig" +
                    (weighted ? std::string("6b_traffic_spread")
                              : std::string("6a_object_spread")) +
                    ".csv");
    std::printf("Total-variation distance: %.3f (paper: curves overlap)\n",
                p.tv_distance(s));
  }

  // --- Fig. 6c/6d: terrestrial LRU hit-rate curves ---------------------------
  const std::vector<std::pair<std::string, util::Bytes>> caps = {
      {"100", util::gib(2)},  {"250", util::gib(5)}, {"500", util::gib(10)},
      {"750", util::gib(15)}, {"1000", util::gib(20)}};
  for (const bool byte_rate : {false, true}) {
    util::TextTable table({"Cache(GB)", "Production", "Synthetic", "Gap"});
    double gaps = 0.0;
    for (const auto& [label, cap] : caps) {
      const double p = terrestrial_lru(production[4], cap, byte_rate);
      const double s = terrestrial_lru(synthetic[4], cap, byte_rate);
      gaps += std::abs(p - s);
      table.add_row({label, util::fmt_pct(p), util::fmt_pct(s),
                     util::fmt_pct(std::abs(p - s))});
    }
    table.print(std::cout, byte_rate ? "Fig. 6d CDN byte hit rate"
                                     : "Fig. 6c CDN request hit rate");
    table.write_csv(harness.out_dir() +
                    (byte_rate ? "/fig6d_cdn_bhr.csv" : "/fig6c_cdn_rhr.csv"));
    std::printf(
        "Mean gap: %.2f%% (paper: %.1f%% at ~250x our request density;\n"
        "the known deviation is documented in EXPERIMENTS.md — the synthetic\n"
        "trace under-emits one-hit objects at small trace lengths, which\n"
        "only shows up in single-cache cold-miss-dominated simulations)\n",
        gaps / static_cast<double>(caps.size()) * 100, byte_rate ? 0.3 : 0.4);
  }

  // --- Fig. 6e/6f: satellite LRU hit-rate curves -----------------------------
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{params.duration_s});
  const auto satellite_rates = [&](const trace::MultiTrace& traces,
                                   util::Bytes cap) {
    core::SimConfig sim_cfg;
    sim_cfg.cache_capacity = cap;
    sim_cfg.sample_latency = false;
    core::Simulator sim(shell, schedule, sim_cfg);
    sim.add_variant(core::Variant::kVanillaLru);
    sim.run(trace::merge_by_time(traces));
    const auto& m = sim.metrics(core::Variant::kVanillaLru);
    return std::pair{m.request_hit_rate(), m.byte_hit_rate()};
  };
  util::TextTable sat_table({"Cache(GB)", "Prod RHR", "Synth RHR", "Prod BHR",
                             "Synth BHR"});
  double rhr_gap = 0.0, bhr_gap = 0.0;
  const std::vector<std::pair<std::string, util::Bytes>> sat_caps = {
      {"20", util::mib(512)}, {"50", util::gib(1)}, {"100", util::gib(2)}};
  for (const auto& [label, cap] : sat_caps) {
    const auto [pr, pb] = satellite_rates(production, cap);
    const auto [sr, sb] = satellite_rates(synthetic, cap);
    rhr_gap += std::abs(pr - sr);
    bhr_gap += std::abs(pb - sb);
    sat_table.add_row({label, util::fmt_pct(pr), util::fmt_pct(sr),
                       util::fmt_pct(pb), util::fmt_pct(sb)});
  }
  sat_table.print(std::cout, "Fig. 6e/6f satellite LRU hit rates");
  sat_table.write_csv(harness.out_dir() + "/fig6ef_satellite_lru.csv");
  std::printf(
      "Mean gaps: request %.2f%%, byte %.2f%% (paper: 2%% / 1%%).\n"
      "Conclusion to reproduce: synthetic traces can stand in for\n"
      "production traces in satellite-CDN simulation.\n",
      rhr_gap / static_cast<double>(sat_caps.size()) * 100,
      bhr_gap / static_cast<double>(sat_caps.size()) * 100);
  return 0;
}
