// Fig. 12: request/byte hit-rate curves for the web and download traffic
// classes (video covered by Fig. 7), StarCDN at L=4 and L=9 against the
// Static Cache bound and the LRU baseline.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 12 — web and download traffic classes",
      "Fig. 12a-12d, Section 5.5");

  const orbit::Constellation shell{orbit::WalkerParams{}};

  for (const auto traffic_class :
       {trace::TrafficClass::kWeb, trace::TrafficClass::kDownload}) {
    auto params = trace::default_params(traffic_class);
    params.duration_s = util::kDay.value();
    const trace::WorkloadModel workload(util::paper_cities(), params);
    const auto requests = trace::merge_by_time(workload.generate());
    const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                       util::Seconds{params.duration_s});
    std::printf("\n[%s] %zu requests, %.2f TB\n", to_string(traffic_class),
                requests.size(), [&] {
                  double b = 0;
                  for (const auto& r : requests) b += static_cast<double>(r.size);
                  return b / 1e12;
                }());

    util::TextTable rhr({"Cache(GB)", "Static", "StarCDN L=9", "StarCDN L=4",
                         "LRU"});
    util::TextTable bhr({"Cache(GB)", "Static", "StarCDN L=9", "StarCDN L=4",
                         "LRU"});
    // Web/download footprints are far smaller than video (§5.5: "hit rate
    // curves increase more gradually"), so the pressure range sits lower.
    for (const auto& [label, capacity] :
         std::vector<std::pair<std::string, util::Bytes>>{
             {"10", util::mib(96)},
             {"20", util::mib(192)},
             {"30", util::mib(384)},
             {"40", util::mib(768)},
             {"50", util::gib(1.5)}}) {
      // L=4 and L=9 need separate simulators (bucket layout differs);
      // Static/LRU are L-independent and taken from the first.
      std::map<std::string, std::pair<double, double>> out;
      for (const int buckets : {9, 4}) {
        core::SimConfig cfg = harness.sim_config();
        cfg.cache_capacity = capacity;
        cfg.buckets = buckets;
        cfg.sample_latency = false;
        core::Simulator sim(shell, schedule, cfg);
        sim.add_variant(core::Variant::kStarCdn);
        if (buckets == 9) {
          sim.add_variant(core::Variant::kStatic);
          sim.add_variant(core::Variant::kVanillaLru);
        }
        sim.run(requests);
        const auto& m = sim.metrics(core::Variant::kStarCdn);
        out["StarCDN L=" + std::to_string(buckets)] = {m.request_hit_rate(),
                                                       m.byte_hit_rate()};
        if (buckets == 9) {
          const auto& st = sim.metrics(core::Variant::kStatic);
          const auto& lru = sim.metrics(core::Variant::kVanillaLru);
          out["Static"] = {st.request_hit_rate(), st.byte_hit_rate()};
          out["LRU"] = {lru.request_hit_rate(), lru.byte_hit_rate()};
        }
      }
      rhr.add_row({label, util::fmt_pct(out["Static"].first),
                   util::fmt_pct(out["StarCDN L=9"].first),
                   util::fmt_pct(out["StarCDN L=4"].first),
                   util::fmt_pct(out["LRU"].first)});
      bhr.add_row({label, util::fmt_pct(out["Static"].second),
                   util::fmt_pct(out["StarCDN L=9"].second),
                   util::fmt_pct(out["StarCDN L=4"].second),
                   util::fmt_pct(out["LRU"].second)});
    }
    const std::string cls = to_string(traffic_class);
    rhr.print(std::cout, "Fig. 12 request hit rate — " + cls);
    bhr.print(std::cout, "Fig. 12 byte hit rate — " + cls);
    rhr.write_csv(harness.out_dir() + "/fig12_rhr_" + cls + ".csv");
    bhr.write_csv(harness.out_dir() + "/fig12_bhr_" + cls + ".csv");
  }
  std::cout <<
      "\nPaper shapes: StarCDN clearly above LRU for both classes (byte hit\n"
      "rate boost >30% for downloads); L=9 above L=4; Static is the bound;\n"
      "curves rise more gradually than video.\n";
  return 0;
}
