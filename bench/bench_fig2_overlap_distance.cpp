// Fig. 2: object/traffic overlap with New York versus geographic distance.
// The paper's shape: ~55% object / ~90% traffic overlap under 3,000 km,
// dropping to ~10-25% beyond.
#include <algorithm>

#include "bench_common.h"

#include "trace/workload.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 2 — overlap with New York vs distance",
      "Fig. 2, Section 3.1.1");

  auto params = trace::default_params(trace::TrafficClass::kVideo);
  params.duration_s = util::kDay.value();
  const auto& cities = util::paper_cities();
  const trace::WorkloadModel workload(cities, params);
  const auto traces = workload.generate();
  constexpr std::size_t kNewYork = 4;

  struct Row {
    double dist;
    std::string name;
    trace::OverlapResult r;
  };
  std::vector<Row> rows;
  for (std::size_t c = 0; c < cities.size(); ++c) {
    if (c == kNewYork) continue;
    rows.push_back({util::haversine(cities[kNewYork].coord, cities[c].coord)
                        .value(),
                    cities[c].name, trace::overlap(traces[kNewYork], traces[c])});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.dist < b.dist; });

  util::TextTable table(
      {"City", "Distance(km)", "Object overlap", "Traffic overlap"});
  for (const auto& row : rows) {
    table.add_row({row.name, util::fmt(row.dist, 0),
                   util::fmt_pct(row.r.object_overlap),
                   util::fmt_pct(row.r.traffic_overlap)});
  }
  table.print(std::cout, "Fig. 2 series (sorted by distance)");
  table.write_csv(harness.out_dir() + "/fig2_overlap_distance.csv");
  std::cout << "Paper shape: <3000 km -> ~55% objects / ~90% traffic;\n"
               "             >3000 km -> low overlap (London ~25% traffic).\n";
  return 0;
}
