// Fig. 10: end-to-end latency CDFs — StarCDN and StarCDN-Fetch (L=4 and
// L=9) against the terrestrial-CDN and bent-pipe Starlink baselines plus
// the Static Cache north star.
#include "bench_common.h"

#include "net/latency_model.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(argc, argv, "Fig. 10 — latency CDFs",
                         "Fig. 10a/10b, Section 5.3");
  harness.default_scale(0.5);
  bench::VideoScenario& scenario = harness.scenario();

  // Analytic baselines (Cloudflare AIM substitution, DESIGN.md §3).
  const net::LatencyModel latency;
  util::Rng rng(99);
  util::QuantileSampler terrestrial, bentpipe;
  for (int i = 0; i < 200'000; ++i) {
    terrestrial.add(latency.terrestrial_cdn(rng).value());
    bentpipe.add(
        latency.bentpipe_starlink(latency.params().default_gsl, rng).value());
  }

  // Simulated StarCDN variants.
  std::map<std::string, const util::QuantileSampler*> series;
  series["TerrestrialCDN"] = &terrestrial;
  series["Starlink(no cache)"] = &bentpipe;

  std::vector<std::unique_ptr<core::Simulator>> sims;
  for (const int buckets : {4, 9}) {
    core::SimConfig cfg = harness.sim_config();
    cfg.cache_capacity = util::gib(8);
    cfg.buckets = buckets;
    auto sim = std::make_unique<core::Simulator>(*scenario.shell,
                                                 *scenario.schedule, cfg);
    sim->add_variant(core::Variant::kStarCdn);
    sim->add_variant(core::Variant::kHashOnly);
    if (buckets == 4) sim->add_variant(core::Variant::kStatic);
    scenario.replay_into(*sim);
    const std::string l = "L" + std::to_string(buckets);
    series["StarCDN-" + l] =
        &sim->metrics(core::Variant::kStarCdn).latency_ms;
    series["StarCDN-Fetch-" + l] =
        &sim->metrics(core::Variant::kHashOnly).latency_ms;
    if (buckets == 4) {
      series["StaticCache"] = &sim->metrics(core::Variant::kStatic).latency_ms;
    }
    sims.push_back(std::move(sim));
  }

  std::vector<std::string> header{"quantile"};
  for (const auto& [name, q] : series) header.push_back(name);
  util::TextTable table(header);
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::vector<std::string> row{util::fmt(q, 2)};
    for (const auto& [name, sampler] : series) {
      row.push_back(util::fmt(sampler->quantile(q), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Fig. 10: latency quantiles (ms)");
  table.write_csv(harness.out_dir() + "/fig10_latency_cdf.csv");

  const double star_median = series["StarCDN-L4"]->median();
  const double pipe_median = bentpipe.median();
  std::printf(
      "\nMedians: StarCDN %.1f ms vs bent-pipe Starlink %.1f ms -> %.1fx "
      "improvement (paper: 22 ms vs 55 ms, 2.5x).\n"
      "Paper shapes: terrestrial CDN fastest; StarCDN well under bent-pipe;\n"
      "long miss tail; L=9 slightly better body, worse relay tail.\n",
      star_median, pipe_median, pipe_median / star_median);
  return 0;
}
