// Fig. 8: ground-to-satellite uplink usage of each scheme, normalized to
// plain Starlink with no cache (every byte fetched from the ground).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 8 — normalized uplink usage (L=9)",
      "Fig. 8, Section 5.2");
  bench::VideoScenario& scenario = harness.scenario();

  const std::vector<core::Variant> order = {core::Variant::kVanillaLru,
                                            core::Variant::kRelayOnly,
                                            core::Variant::kHashOnly,
                                            core::Variant::kStarCdn};
  util::TextTable table({"Cache(GB)", "LRU", "StarCDN-Hashing",
                         "StarCDN-Fetch", "StarCDN"});
  auto rows = bench::sweep_capacity_axis(
      "fig8", [&](const std::string& label, util::Bytes capacity) {
        core::SimConfig cfg = harness.sim_config();
        cfg.cache_capacity = capacity;
        cfg.buckets = 9;
        cfg.sample_latency = false;
        core::Simulator sim(*scenario.shell, *scenario.schedule, cfg);
        for (const auto v : order) sim.add_variant(v);
        scenario.replay_into(sim);
        std::vector<std::string> row{label};
        for (const auto v : order) {
          row.push_back(util::fmt_pct(sim.metrics(v).normalized_uplink()));
        }
        return row;
      });
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(std::cout, "Fig. 8: uplink usage (% of no-cache Starlink)");
  table.write_csv(harness.out_dir() + "/fig8_uplink.csv");
  {
    // Physical-budget check (Table 1: each GSL carries 20 Gbps): peak
    // per-satellite-epoch uplink throughput must stay far below capacity.
    core::SimConfig cfg = harness.sim_config();
    cfg.cache_capacity = util::gib(2);
    cfg.buckets = 9;
    cfg.sample_latency = false;
    core::Simulator sim(*scenario.shell, *scenario.schedule, cfg);
    sim.add_variant(core::Variant::kStarCdn);
    scenario.replay_into(sim);
    const auto& meter = sim.metrics(core::Variant::kStarCdn).uplink_meter;
    std::printf(
        "\nGSL budget check (StarCDN): mean %.3f Gbps, peak %.3f Gbps per "
        "satellite-epoch, %llu/%zu cells over the 20 Gbps budget.\n",
        meter.throughput_gbps().mean(), meter.throughput_gbps().max(),
        static_cast<unsigned long long>(meter.overloaded_cells()),
        meter.throughput_gbps().count());
  }
  std::cout << "\nPaper shape: LRU ~30-35%, StarCDN ~20-25% (an ~80% saving\n"
               "vs no cache); StarCDN strictly lowest at every size.\n";
  return 0;
}
