// Table 3: when the bucket owner misses, how often is the object available
// in the west-only / east-only / both inter-orbit same-bucket neighbours?
// Demonstrates that the trailing ("west") neighbour holds the historical
// footprint relayed fetch exploits.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Table 3 — relay availability on owner miss (L=4)",
      "Table 3, Section 5.2.2");

  util::TextTable table({"Cache(GB)", "West only (req K)", "West only (GB)",
                         "East only (req K)", "East only (GB)",
                         "Both (req K)", "Both (GB)"});
  // Capacities sit in the eviction-bound regime (see EXPERIMENTS.md scale
  // mapping): at our reduced traffic density, larger simulated caches
  // saturate and the neighbour-availability asymmetry washes out.
  for (const auto& [label, capacity] :
       std::vector<std::pair<std::string, util::Bytes>>{
           {"10", util::mib(256)}, {"50", util::mib(512)}, {"100", util::gib(1)}}) {
    const auto cfg = core::SimConfig::Builder{}
                         .cache_capacity(capacity)
                         .buckets(4)
                         .sample_latency(false)
                         .build();
    const core::RunReport report =
        harness.simulate(cfg, {core::Variant::kStarCdn}, "table3_" + label);
    const auto& rel = report.variant(core::Variant::kStarCdn).metrics.relay;
    table.add_row({label,
                   util::fmt(static_cast<double>(rel.west_only_requests) / 1e3, 1),
                   util::fmt(static_cast<double>(rel.west_only_bytes) / 1e9, 1),
                   util::fmt(static_cast<double>(rel.east_only_requests) / 1e3, 1),
                   util::fmt(static_cast<double>(rel.east_only_bytes) / 1e9, 1),
                   util::fmt(static_cast<double>(rel.both_requests) / 1e3, 1),
                   util::fmt(static_cast<double>(rel.both_bytes) / 1e9, 1)});
  }
  table.print(std::cout, "Table 3: availability in inter-orbit neighbours");
  table.write_csv(harness.out_dir() + "/table3_relay_availability.csv");
  std::cout <<
      "\nPaper shape (requests, millions at their scale): west-only ~2x\n"
      "east-only at every size, growing with cache size; 'both' smallest.\n"
      "Paper values: 10GB 47.5/31.4/11.9; 50GB 61.6/30.1/14.6; 100GB\n"
      "64.7/27.4/14.7 (Mreq).\n";
  return 0;
}
