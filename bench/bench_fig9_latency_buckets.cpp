// Fig. 9: the L tradeoff — worst-case routing latency to the correct hash
// bucket (points) and request hit rate with a small cache (curve), as a
// function of the number of buckets L.
#include "bench_common.h"

#include "net/latency_model.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 9 — routing latency and hit rate vs bucket count L",
      "Fig. 9, Section 5.3");
  bench::VideoScenario& scenario = harness.scenario();
  const net::LatencyModel latency;

  util::TextTable table({"L", "Worst-case hops", "Worst routing RTT (ms)",
                         "Request hit rate @ small cache"});
  for (const int buckets : {1, 4, 9, 16, 25}) {
    core::SimConfig cfg = harness.sim_config();
    cfg.cache_capacity = util::gib(1);  // the paper's smallest (10 GB) point
    cfg.buckets = buckets;
    cfg.sample_latency = false;
    core::Simulator sim(*scenario.shell, *scenario.schedule, cfg);
    sim.add_variant(core::Variant::kHashOnly);
    scenario.replay_into(sim);

    const int side = sim.mapper().tile_side();
    const int half = side / 2;
    // Worst case: half-tile of inter-orbit hops plus half-tile of
    // intra-orbit hops, each way.
    const double worst_rtt =
        2.0 * latency.grid_hops_delay(half, half).value();
    table.add_row({std::to_string(buckets),
                   std::to_string(sim.mapper().worst_case_hops()),
                   util::fmt(worst_rtt, 1),
                   util::fmt_pct(
                       sim.metrics(core::Variant::kHashOnly).request_hit_rate())});
  }
  table.print(std::cout, "Fig. 9: latency/hit-rate tradeoff in L");
  table.write_csv(harness.out_dir() + "/fig9_latency_buckets.csv");
  std::cout <<
      "\nPaper shapes: hit rate grows with L; worst-case RTT identical for\n"
      "L=4 and L=9 (2*floor(sqrt(L)/2) is 2 hops for both) and jumps to\n"
      "~40 ms beyond L=9, which the paper calls unaffordable.\n";
  return 0;
}
