// Sensitivity analysis: the reproduction's headline conclusion (StarCDN
// beats naive per-satellite LRU by a wide margin) must be robust to the
// calibrated workload and geometry assumptions, not an artifact of one
// parameter point. Sweeps popularity skew, content regionality, elevation
// mask, and constellation density.
#include "bench_common.h"

namespace {

using namespace starcdn;

struct Outcome {
  double star_rhr;
  double lru_rhr;
};

Outcome run_point(const trace::WorkloadParams& wp,
                  const orbit::WalkerParams& shell_params,
                  double min_elevation_deg) {
  const trace::WorkloadModel workload(util::paper_cities(), wp);
  const auto requests = trace::merge_by_time(workload.generate());
  const orbit::Constellation shell{shell_params};
  sched::SchedulerParams sp;
  sp.min_elevation = util::Degrees{min_elevation_deg};
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{wp.duration_s}, sp);
  core::SimConfig cfg;
  cfg.cache_capacity = util::gib(2);
  cfg.buckets = 9;
  cfg.sample_latency = false;
  core::Simulator sim(shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.add_variant(core::Variant::kVanillaLru);
  sim.run(requests);
  return {sim.metrics(core::Variant::kStarCdn).request_hit_rate(),
          sim.metrics(core::Variant::kVanillaLru).request_hit_rate()};
}

trace::WorkloadParams base_params() {
  auto wp = trace::default_params(trace::TrafficClass::kVideo);
  wp.duration_s = 12 * util::kHour.value();
  wp.requests_per_weight = 75'000;
  return wp;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(
      argc, argv, "Sensitivity — is the StarCDN advantage parameter-robust?",
      "reproduction methodology (EXPERIMENTS.md)");

  util::TextTable table({"Perturbation", "StarCDN RHR", "LRU RHR", "Gap"});
  const auto add = [&](const std::string& name, const Outcome& o) {
    table.add_row({name, util::fmt_pct(o.star_rhr), util::fmt_pct(o.lru_rhr),
                   util::fmt((o.star_rhr - o.lru_rhr) * 100.0, 1) + " pts"});
    std::printf("  done: %s\n", name.c_str());
  };

  const orbit::WalkerParams full_shell;
  add("baseline (alpha=1.2, 25 deg mask)",
      run_point(base_params(), full_shell, 25.0));

  for (const double alpha : {0.9, 1.05, 1.35}) {
    auto wp = base_params();
    wp.zipf_alpha = alpha;
    add("zipf alpha = " + util::fmt(alpha, 2), run_point(wp, full_shell, 25.0));
  }
  {
    auto wp = base_params();
    wp.cross_region = 0.05;
    wp.same_language_family = 0.1;
    add("highly regional content", run_point(wp, full_shell, 25.0));
  }
  {
    auto wp = base_params();
    wp.global_fraction = 0.3;
    add("30% global content", run_point(wp, full_shell, 25.0));
  }
  add("40 deg elevation mask", run_point(base_params(), full_shell, 40.0));
  {
    orbit::WalkerParams sparse;
    sparse.planes = 36;
    sparse.slots_per_plane = 18;
    add("half-density shell (36x18)", run_point(base_params(), sparse, 25.0));
  }

  table.print(std::cout, "Sensitivity sweep (StarCDN L=9 vs naive LRU)");
  table.write_csv(harness.out_dir() + "/sensitivity.csv");
  std::cout << "\nRobustness criterion: the StarCDN-vs-LRU gap stays large\n"
               "and positive at every perturbation; absolute levels move\n"
               "with the workload, the ordering must not.\n";
  return 0;
}
