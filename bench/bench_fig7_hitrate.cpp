// Fig. 7: request and byte hit-rate curves for the five architectures
// (Static Cache, StarCDN, StarCDN-Fetch, StarCDN-Hashing, Vanilla LRU) at
// L = 4 and L = 9 across the cache-size axis.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 7 — hit-rate curves (5 variants, L=4 and L=9)",
      "Fig. 7a-7d, Section 5.2");
  bench::VideoScenario& scenario = harness.scenario();

  struct Cell {
    double rhr[5];
    double bhr[5];
  };
  const std::vector<core::Variant> order = {
      core::Variant::kStatic, core::Variant::kStarCdn,
      core::Variant::kHashOnly, core::Variant::kRelayOnly,
      core::Variant::kVanillaLru};
  const std::vector<std::string> names = {"Static", "StarCDN", "StarCDN-Fetch",
                                          "StarCDN-Hashing", "LRU"};

  for (const int buckets : {4, 9}) {
    util::TextTable rhr_table({"Cache(GB)", names[0], names[1], names[2],
                               names[3], names[4]});
    util::TextTable bhr_table({"Cache(GB)", names[0], names[1], names[2],
                               names[3], names[4]});
    struct Rows {
      std::vector<std::string> rhr, bhr;
    };
    const auto points = bench::sweep_capacity_axis(
        ("fig7 L=" + std::to_string(buckets)).c_str(),
        [&](const std::string& label, util::Bytes capacity) {
          core::SimConfig cfg = harness.sim_config();
          cfg.cache_capacity = capacity;
          cfg.buckets = buckets;
          cfg.sample_latency = false;
          core::Simulator sim(*scenario.shell, *scenario.schedule, cfg);
          for (const auto v : order) sim.add_variant(v);
          scenario.replay_into(sim);

          Rows rows{{label}, {label}};
          for (const auto v : order) {
            rows.rhr.push_back(util::fmt_pct(sim.metrics(v).request_hit_rate()));
            rows.bhr.push_back(util::fmt_pct(sim.metrics(v).byte_hit_rate()));
          }
          return rows;
        });
    for (auto& rows : points) {
      rhr_table.add_row(std::move(rows.rhr));
      bhr_table.add_row(std::move(rows.bhr));
    }
    const std::string suffix = "L" + std::to_string(buckets);
    rhr_table.print(std::cout, "Fig. 7 request hit rate, L=" +
                                   std::to_string(buckets));
    bhr_table.print(std::cout,
                    "Fig. 7 byte hit rate, L=" + std::to_string(buckets));
    rhr_table.write_csv(harness.out_dir() + "/fig7_rhr_" + suffix + ".csv");
    bhr_table.write_csv(harness.out_dir() + "/fig7_bhr_" + suffix + ".csv");
  }

  std::cout <<
      "\nPaper shapes to verify:\n"
      "  * ordering StarCDN > StarCDN-Fetch > StarCDN-Hashing > LRU at every size\n"
      "  * Static Cache is the north-star upper bound at larger caches\n"
      "    (at small caches our reduced scale concentrates static load; see\n"
      "    EXPERIMENTS.md)\n"
      "  * StarCDN-vs-LRU gap ~11-15 points (paper: 15 max at L=9)\n"
      "  * L=9 strictly above L=4 for the hashed variants\n";
  return 0;
}
