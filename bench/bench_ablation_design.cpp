// Design-choice ablations the paper discusses in prose:
//   (a) §3.3 "Why not proactive prefetching?" — relayed fetch vs an
//       epoch-driven prefetch of the trailing replica's hot set.
//   (b) §3.3 bidirectional links — keeping vs dropping the east relay.
//   (c) §3.2 "accommodates any cache replacement scheme" — StarCDN over
//       LRU / LFU / FIFO / SIEVE / SLRU.
//   (d) §3.4 transient failures — hit-rate sensitivity to brief cache-server
//       outages.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Ablations — prefetch vs relay, east link, policies, outages",
      "Sections 3.2-3.4 (design discussion)");
  bench::VideoScenario& scenario = harness.scenario();

  const auto run = [&](core::SimConfig cfg,
                       std::initializer_list<core::Variant> variants) {
    cfg.sample_latency = false;
    auto sim = std::make_unique<core::Simulator>(*scenario.shell,
                                                 *scenario.schedule, cfg);
    for (const auto v : variants) sim->add_variant(v);
    scenario.replay_into(*sim);
    return sim;
  };

  // (a) Relayed fetch vs proactive prefetch at the target configuration.
  {
    core::SimConfig cfg = harness.sim_config();
    cfg.cache_capacity = util::gib(2);
    cfg.buckets = 9;
    const auto sim = run(cfg, {core::Variant::kStarCdn,
                               core::Variant::kPrefetch,
                               core::Variant::kHashOnly});
    util::TextTable table({"Scheme", "Request HR", "Byte HR",
                           "ISL bytes (TB)", "Speculative bytes (TB)"});
    for (const auto v : {core::Variant::kStarCdn, core::Variant::kPrefetch,
                         core::Variant::kHashOnly}) {
      const auto& m = sim->metrics(v);
      table.add_row({core::to_string(v), util::fmt_pct(m.request_hit_rate()),
                     util::fmt_pct(m.byte_hit_rate()),
                     util::fmt(static_cast<double>(m.isl_bytes) / 1e12, 2),
                     util::fmt(static_cast<double>(m.prefetch_bytes) / 1e12, 2)});
    }
    table.print(std::cout, "(a) relayed fetch vs proactive prefetch");
    table.write_csv(harness.out_dir() + "/ablation_prefetch.csv");
    std::cout << "Paper claim (§3.3): prefetching is less efficient than\n"
                 "relayed fetch in hit rate and wastes ISL bandwidth and\n"
                 "cache space on content nobody requests.\n";
  }

  // (b) Bidirectional vs west-only relay.
  {
    util::TextTable table({"Relay links", "Request HR", "Byte HR"});
    for (const bool east : {true, false}) {
      core::SimConfig cfg = harness.sim_config();
      cfg.cache_capacity = util::gib(2);
      cfg.buckets = 9;
      cfg.relay_east = east;
      const auto sim = run(cfg, {core::Variant::kStarCdn});
      const auto& m = sim->metrics(core::Variant::kStarCdn);
      table.add_row({east ? "west + east" : "west only",
                     util::fmt_pct(m.request_hit_rate()),
                     util::fmt_pct(m.byte_hit_rate())});
    }
    table.print(std::cout, "(b) bidirectional east link");
    table.write_csv(harness.out_dir() + "/ablation_east_link.csv");
    std::cout << "Paper claim (§3.3): the east link helps less than the\n"
                 "west but costs no extra latency, so it is kept.\n";
  }

  // (c) Eviction-policy pluggability.
  {
    util::TextTable table({"Policy", "StarCDN RHR", "StarCDN BHR",
                           "LRU-baseline RHR"});
    for (const auto policy :
         {cache::Policy::kLru, cache::Policy::kLfu, cache::Policy::kFifo,
          cache::Policy::kSieve, cache::Policy::kSlru,
          cache::Policy::kGdsf}) {
      core::SimConfig cfg = harness.sim_config();
      cfg.cache_capacity = util::gib(2);
      cfg.buckets = 9;
      cfg.policy = policy;
      const auto sim = run(cfg, {core::Variant::kStarCdn,
                                 core::Variant::kVanillaLru});
      table.add_row(
          {cache::to_string(policy),
           util::fmt_pct(sim->metrics(core::Variant::kStarCdn).request_hit_rate()),
           util::fmt_pct(sim->metrics(core::Variant::kStarCdn).byte_hit_rate()),
           util::fmt_pct(
               sim->metrics(core::Variant::kVanillaLru).request_hit_rate())});
    }
    table.print(std::cout, "(c) StarCDN over different eviction policies");
    table.write_csv(harness.out_dir() + "/ablation_policies.csv");
    std::cout << "Paper claim (§3.2): the consistent hashing scheme\n"
                 "accommodates any replacement scheme; gains persist.\n";
  }

  // (d) Transient cache-server outages.
  {
    util::TextTable table({"Outage probability", "Request HR",
                           "Transient misses", "Uplink usage"});
    for (const double p : {0.0, 0.01, 0.05, 0.15}) {
      core::SimConfig cfg = harness.sim_config();
      cfg.cache_capacity = util::gib(2);
      cfg.buckets = 9;
      cfg.transient_down_prob = p;
      const auto sim = run(cfg, {core::Variant::kStarCdn});
      const auto& m = sim->metrics(core::Variant::kStarCdn);
      table.add_row({util::fmt_pct(p, 0),
                     util::fmt_pct(m.request_hit_rate()),
                     std::to_string(m.transient_misses),
                     util::fmt_pct(m.normalized_uplink())});
    }
    table.print(std::cout, "(d) transient cache-server outages (§3.4)");
    table.write_csv(harness.out_dir() + "/ablation_transient.csv");
    std::cout << "Expectation: hit rate degrades roughly linearly in the\n"
                 "outage fraction — transient failures fall through to the\n"
                 "ground without destabilizing the bucket mapping.\n";
  }
  return 0;
}
