// Fig. 11: fault tolerance — hit rate of satellites grouped by how many
// hash-bucket slots they serve after failure remapping (9.7% of slots out
// of service, the rate the paper measured from real constellation data).
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace starcdn;
  bench::Harness harness(
      argc, argv, "Fig. 11 — hit rate vs buckets served under failures",
      "Fig. 11, Section 5.4");

  // Knock out 9.7% of slots (126 of 1296) as in §5.4.
  auto shell = std::make_unique<orbit::Constellation>(orbit::WalkerParams{});
  util::Rng rng(2025);
  shell->knock_out_random(0.097, rng);

  // Reuse the trace; rebuild the schedule against the degraded shell.
  const auto& o = harness.opts();
  const util::Seconds duration =
      o.epochs != 0 ? util::Seconds{15.0 * static_cast<double>(o.epochs)}
                    : util::kDay;
  const bench::VideoScenario base(duration, o.scale, o.seed, o.chunk);
  const sched::LinkSchedule schedule(*shell, util::paper_cities(),
                                     util::Seconds{base.params.duration_s});

  core::SimConfig cfg = harness.sim_config();
  cfg.cache_capacity = util::gib(8);  // the paper's 50 GB point
  cfg.buckets = 9;
  cfg.sample_latency = false;
  cfg.track_per_satellite = true;
  core::Simulator sim(*shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  base.replay_into(sim);

  const auto& m = sim.metrics(core::Variant::kStarCdn);
  const auto served = sim.buckets_served_per_satellite();

  struct Group {
    std::uint64_t requests = 0, hits = 0;
    util::Bytes bytes = 0, bytes_hit = 0;
    int satellites = 0;
  };
  std::map<int, Group> groups;
  for (int i = 0; i < shell->size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!shell->active(util::SatId{i}) || m.sat_requests[idx] == 0) continue;
    Group& g = groups[served[idx]];
    g.requests += m.sat_requests[idx];
    g.hits += m.sat_hits[idx];
    g.bytes += m.sat_bytes_requested[idx];
    g.bytes_hit += m.sat_bytes_hit[idx];
    ++g.satellites;
  }

  util::TextTable table({"Buckets served", "Satellites", "Request hit rate",
                         "Byte hit rate"});
  for (const auto& [count, g] : groups) {
    table.add_row({std::to_string(count), std::to_string(g.satellites),
                   util::fmt_pct(static_cast<double>(g.hits) /
                                 static_cast<double>(g.requests)),
                   util::fmt_pct(static_cast<double>(g.bytes_hit) /
                                 static_cast<double>(g.bytes))});
  }
  table.print(std::cout, "Fig. 11: per-satellite hit rate by load");
  table.write_csv(harness.out_dir() + "/fig11_fault_tolerance.csv");
  std::printf(
      "\nOverall under 9.7%% failures: request hit rate %.1f%%, uplink saving "
      "%.1f%% (paper: still saves 74%% of uplink).\n"
      "Paper shape: hit rate drops with buckets served (up to ~7 points\n"
      "request / ~5 points byte), but degradation is graceful.\n",
      100.0 * m.request_hit_rate(), 100.0 * (1.0 - m.normalized_uplink()));
  return 0;
}
