// Microbenchmarks (google-benchmark): throughput of the hot paths — cache
// operations, bucket hashing, orbital propagation, visibility, codec, and
// the SpaceGEN byte stack — plus a serial-vs-parallel speedup report for
// the deterministic parallel engine (printed before the gbench table).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "cache/cache.h"
#include "core/bucket_mapper.h"
#include "core/run_report.h"
#include "core/simulator.h"
#include "net/codec.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/series.h"
#include "orbit/constellation.h"
#include "orbit/visibility.h"
#include "sched/scheduler.h"
#include "trace/bytestack.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace starcdn;

void BM_CacheAccess(benchmark::State& state) {
  const auto policy = static_cast<cache::Policy>(state.range(0));
  const auto cache = cache::make_cache(policy, util::mib(64));
  util::Rng rng(1);
  std::vector<cache::ObjectId> ids(1 << 16);
  for (auto& id : ids) id = rng.below(20'000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache->access(ids[i++ & (ids.size() - 1)], 4096));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cache::to_string(policy));
}
BENCHMARK(BM_CacheAccess)->DenseRange(0, 5)->Unit(benchmark::kNanosecond);

void BM_CacheEvictChurn(benchmark::State& state) {
  // Eviction-heavy path: a flood of one-hit-wonder ids (random draws from a
  // universe 1000x the cache) through a small cache, so nearly every access
  // admits a new object and evicts a resident one. Exercises the slab free
  // list and the index's backward-shift deletion.
  const auto policy = static_cast<cache::Policy>(state.range(0));
  const auto cache = cache::make_cache(
      policy, util::mib(4), cache::presize_hint(util::mib(4), 4096));
  util::Rng rng(3);
  std::vector<cache::ObjectId> ids(1 << 16);
  for (auto& id : ids) id = rng.below(1'048'576);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache->access(ids[i++ & (ids.size() - 1)], 4096));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cache::to_string(policy));
}
BENCHMARK(BM_CacheEvictChurn)->DenseRange(0, 5)->Unit(benchmark::kNanosecond);

void BM_CachePeekProbe(benchmark::State& state) {
  // The relayed-fetch pattern: side-effect-free neighbour probes, ~75%
  // absent — the index's negative-lookup fast path.
  const auto policy = static_cast<cache::Policy>(state.range(0));
  const auto cache = cache::make_cache(policy, util::mib(64));
  for (cache::ObjectId id = 0; id < 16'384; ++id) cache->admit(id, 4096);
  util::Rng rng(2);
  std::vector<cache::ObjectId> ids(1 << 16);
  for (auto& id : ids) id = rng.below(65'536);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->peek(ids[i++ & (ids.size() - 1)]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cache::to_string(policy));
}
BENCHMARK(BM_CachePeekProbe)->DenseRange(0, 5)->Unit(benchmark::kNanosecond);

void BM_BucketMapping(benchmark::State& state) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const core::BucketMapper mapper(shell, static_cast<int>(state.range(0)));
  std::uint64_t id = 0;
  for (auto _ : state) {
    const util::BucketId b = mapper.bucket_of_object(++id);
    benchmark::DoNotOptimize(
        mapper.owner({static_cast<int>(id % 72), static_cast<int>(id % 18)}, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketMapping)->Arg(4)->Arg(9)->Arg(25);

void BM_Propagation(benchmark::State& state) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  double t = 0.0;
  for (auto _ : state) {
    t += 15.0;
    benchmark::DoNotOptimize(shell.position_ecef({31, 7}, util::Seconds{t}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Propagation);

void BM_VisibilitySweep(benchmark::State& state) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const orbit::VisibilityOracle oracle(util::Degrees{25.0});
  const auto positions = shell.all_positions_ecef(util::Seconds{0.0});
  const util::GeoCoord ny{40.71, -74.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.visible(ny, shell, positions));
  }
  state.SetItemsProcessed(state.iterations() * shell.size());
}
BENCHMARK(BM_VisibilitySweep);

void BM_CodecRoundTrip(benchmark::State& state) {
  net::Message m;
  m.type = net::MessageType::kRequest;
  m.object_id = 42;
  m.payload.assign(static_cast<std::size_t>(state.range(0)), 'x');
  net::FrameDecoder decoder;
  for (auto _ : state) {
    const auto bytes = net::encode(m);
    decoder.feed(bytes);
    benchmark::DoNotOptimize(decoder.next());
  }
  state.SetBytesProcessed(state.iterations() *
                          (static_cast<std::int64_t>(state.range(0)) + 48));
}
BENCHMARK(BM_CodecRoundTrip)->Arg(0)->Arg(1024)->Arg(65536);

void BM_ByteStackAlgorithm1Step(benchmark::State& state) {
  // Algorithm 1's inner loop: pop the top, reinsert at a sampled depth.
  trace::ByteStack stack;
  util::Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    trace::StackItem item;
    item.object = static_cast<trace::ObjectId>(i);
    item.size = 1 + rng.below(1'000'000);
    item.popularity = 1'000'000;  // never retires during the benchmark
    stack.push_back(item);
  }
  const util::Bytes total = stack.total_bytes();
  for (auto _ : state) {
    auto item = stack.pop_front();
    ++item.emitted;
    stack.insert_at_depth(rng.below(total), item);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ByteStackAlgorithm1Step)->Arg(1'000)->Arg(100'000);

void BM_MergeByTime(benchmark::State& state) {
  // Loser-tree k-way merge over the nine per-city traces. Items/s is the
  // merged-request throughput; the tree does one O(log k) replay per item.
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = static_cast<std::size_t>(state.range(0));
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto traces = workload.generate();
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto merged = trace::merge_by_time(traces);
    total = merged.size();
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_MergeByTime)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_GenerateStream(benchmark::State& state) {
  // End-to-end streamed SpaceGEN generation: chunked SoA blocks pulled
  // from the windowed skip-replay generator, never materializing the
  // trace. Compare items/s against BM_GenerateMaterialized.
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = static_cast<std::size_t>(state.range(0));
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto stream = workload.generate_stream();
    trace::RequestBlock block;
    total = 0;
    while (stream->next(block)) {
      total += block.count();
      benchmark::DoNotOptimize(block.timestamp_s.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_GenerateStream)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_GenerateMaterialized(benchmark::State& state) {
  // Baseline for BM_GenerateStream: generate() all city traces, then the
  // loser-tree merge — the legacy materialize-everything path.
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = static_cast<std::size_t>(state.range(0));
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto merged = trace::merge_by_time(workload.generate());
    total = merged.size();
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_GenerateMaterialized)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Unit(benchmark::kMillisecond);

void BM_Splitmix(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = util::splitmix64(x + 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Splitmix);

void BM_ParallelForOverhead(benchmark::State& state) {
  // Fork-join cost of an (almost) empty loop at the configured width.
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint64_t sink = 0;
    util::parallel_for(
        1024, [&sink](std::size_t i) { benchmark::DoNotOptimize(sink += i); },
        threads);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void BM_ObsShardAdd(benchmark::State& state) {
  // The registry hot path the simulator took on: one handle-indexed array
  // add per counter update. Compare against BM_Splitmix-level costs — the
  // DESIGN.md §11 budget wants this within noise of a raw `+=`.
  obs::Registry registry;
  const core::CoreMetricIds ids = core::register_core_metrics(registry);
  obs::Shard shard(registry);
  for (auto _ : state) {
    shard.add(ids.requests);
    shard.add(ids.bytes_requested, 4096);
    benchmark::DoNotOptimize(shard.value(ids.requests));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsShardAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  const core::CoreMetricIds ids = core::register_core_metrics(registry);
  obs::Shard shard(registry);
  double x = 0.0;
  for (auto _ : state) {
    shard.observe(ids.latency_ms, x);
    x = x < 900.0 ? x + 7.3 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSeriesAdvance(benchmark::State& state) {
  // Per-request cost of the epoch-series recorder when the epoch does NOT
  // change — the common case (thousands of requests per 15 s epoch). Must
  // stay a single compare.
  obs::Registry registry;
  const core::CoreMetricIds ids = core::register_core_metrics(registry);
  obs::Shard shard(registry);
  obs::EpochSeries series(&registry, core::core_series_columns(ids));
  series.advance_to(1, shard);
  for (auto _ : state) {
    series.advance_to(1, shard);
    benchmark::DoNotOptimize(&series);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSeriesAdvance);

void BM_ObsProfScope(benchmark::State& state) {
  // Cost of one STARCDN_PROF_SCOPE; in default builds the macro is
  // compiled out and this measures an empty loop.
  for (auto _ : state) {
    STARCDN_PROF_SCOPE("bench_micro");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsProfScope);

double time_s(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Serial-vs-parallel wall-clock comparison for the two parallelized hot
/// paths: LinkSchedule construction (fan-out over epochs) and a 4-variant
/// Simulator::run (fan-out over variants). Both paths are bitwise
/// deterministic for any thread count (see tests/test_determinism.cpp), so
/// the speedup is free accuracy-wise. Numbers are recorded in
/// EXPERIMENTS.md ("parallel engine").
void report_parallel_speedup() {
  const int threads = util::parallel_threads();
  std::printf("\n=== parallel engine speedup (STARCDN_THREADS=%d) ===\n",
              threads);

  const orbit::Constellation shell{orbit::WalkerParams{}};
  const double horizon_s = 2 * util::kHour.value();  // 480 epochs x 1,296 slots

  auto build_schedule = [&](int n) {
    util::set_parallel_threads(n);
    const double s = time_s([&] {
      const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                         util::Seconds{horizon_s});
      benchmark::DoNotOptimize(&schedule);
    });
    util::set_parallel_threads(0);
    return s;
  };
  const double sched_serial = build_schedule(1);
  const double sched_parallel = build_schedule(threads);
  std::printf("LinkSchedule(2h, 9 cities): serial %.3f s, parallel %.3f s, "
              "speedup %.2fx\n",
              sched_serial, sched_parallel, sched_serial / sched_parallel);

  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 50'000;
  p.requests_per_weight = 40'000;
  p.duration_s = horizon_s;
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(workload.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{horizon_s});

  auto simulate = [&](int n) {
    util::set_parallel_threads(n);
    core::SimConfig cfg;
    cfg.cache_capacity = util::mib(512);
    core::Simulator sim(shell, schedule, cfg);
    for (const auto v :
         {core::Variant::kStarCdn, core::Variant::kHashOnly,
          core::Variant::kRelayOnly, core::Variant::kVanillaLru}) {
      sim.add_variant(v);
    }
    const double s = time_s([&] { sim.run(requests); });
    util::set_parallel_threads(0);
    return s;
  };
  const double sim_serial = simulate(1);
  const double sim_parallel = simulate(threads);
  std::printf("Simulator::run(4 variants, %zu requests): serial %.3f s, "
              "parallel %.3f s, speedup %.2fx\n\n",
              requests.size(), sim_serial, sim_parallel,
              sim_serial / sim_parallel);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  report_parallel_speedup();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
