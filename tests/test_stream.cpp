// The streaming trace pipeline's contract (DESIGN.md §12): chunked streams
// are *bitwise* equivalent to the materialized path — same requests, same
// order, same simulator metrics — for any chunk size, window size and
// thread count; and the loser-tree merge reproduces merge_by_time's stable
// tie-break exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "sched/scheduler.h"
#include "trace/stream.h"
#include "trace/trace_io.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/loser_tree.h"
#include "util/parallel.h"

namespace starcdn {
namespace {

struct ThreadOverrideGuard {
  explicit ThreadOverrideGuard(int n) { util::set_parallel_threads(n); }
  ~ThreadOverrideGuard() { util::set_parallel_threads(0); }
};

// --- LoserTree ---------------------------------------------------------------

/// Merge sorted integer sources through the tree, tie-breaking on source
/// index — the reference is a concatenate + stable_sort.
std::vector<int> tree_merge(const std::vector<std::vector<int>>& sources) {
  std::vector<std::size_t> pos(sources.size(), 0);
  const auto less = [&](std::size_t a, std::size_t b) {
    const bool ea = pos[a] >= sources[a].size();
    const bool eb = pos[b] >= sources[b].size();
    if (ea || eb) return !ea && eb;
    if (sources[a][pos[a]] != sources[b][pos[b]]) {
      return sources[a][pos[a]] < sources[b][pos[b]];
    }
    return a < b;
  };
  util::LoserTree<decltype(less)> tree(sources.size(), less);
  std::size_t total = 0;
  for (const auto& s : sources) total += s.size();
  std::vector<int> out;
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    out.push_back(sources[tree.winner()][pos[tree.winner()]]);
    ++pos[tree.winner()];
    tree.replayed();
  }
  return out;
}

TEST(LoserTree, MergesSortedSourcesWithStableTieBreak) {
  const std::vector<std::vector<int>> sources = {
      {1, 4, 4, 9}, {2, 4, 7}, {}, {0, 4, 4, 4, 12}, {4}};
  const auto merged = tree_merge(sources);
  const std::vector<int> expect = {0, 1, 2, 4, 4, 4, 4, 4, 4, 4, 7, 9, 12};
  EXPECT_EQ(merged, expect);
}

TEST(LoserTree, SingleAndEmptySourceCounts) {
  EXPECT_EQ(tree_merge({{3, 5, 8}}), (std::vector<int>{3, 5, 8}));
  EXPECT_EQ(tree_merge({}), std::vector<int>{});
  EXPECT_EQ(tree_merge({{}, {}}), std::vector<int>{});
}

TEST(LoserTree, NonPowerOfTwoSourceCounts) {
  for (std::size_t k = 1; k <= 9; ++k) {
    std::vector<std::vector<int>> sources(k);
    std::vector<int> expect;
    for (std::size_t s = 0; s < k; ++s) {
      for (int v = static_cast<int>(s); v < 40; v += static_cast<int>(k)) {
        sources[s].push_back(v);
        expect.push_back(v);
      }
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(tree_merge(sources), expect) << "k=" << k;
  }
}

// --- merge_by_time on the loser tree -----------------------------------------

/// The pre-loser-tree implementation, kept as the ordering reference: the
/// merge must stay byte-for-byte compatible with concatenation in trace
/// order + stable sort by timestamp.
std::vector<trace::Request> legacy_merge(const trace::MultiTrace& traces) {
  std::vector<trace::Request> all;
  for (const auto& t : traces) {
    all.insert(all.end(), t.requests.begin(), t.requests.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const trace::Request& a, const trace::Request& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return all;
}

void expect_same_requests(const std::vector<trace::Request>& a,
                          const std::vector<trace::Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp_s, b[i].timestamp_s) << "request " << i;
    ASSERT_EQ(a[i].object, b[i].object) << "request " << i;
    ASSERT_EQ(a[i].size, b[i].size) << "request " << i;
    ASSERT_EQ(a[i].location, b[i].location) << "request " << i;
  }
}

trace::MultiTrace traces_with_ties() {
  // Deliberate cross-trace timestamp ties: the stable tie-break (earlier
  // trace first) is exactly what the loser tree must reproduce.
  trace::MultiTrace traces(3);
  for (std::uint16_t t = 0; t < 3; ++t) {
    traces[t].location = t;
    for (int i = 0; i < 50; ++i) {
      trace::Request r;
      r.timestamp_s = static_cast<double>(i / 2);  // ties within & across
      r.object = static_cast<trace::ObjectId>(1000 * t + i);
      r.size = 100 + t;
      r.location = t;
      traces[t].requests.push_back(r);
    }
  }
  traces.push_back({});  // empty trailing trace
  return traces;
}

TEST(MergeByTime, PinsLegacyStableOrdering) {
  const auto traces = traces_with_ties();
  expect_same_requests(trace::merge_by_time(traces), legacy_merge(traces));
}

TEST(MergeByTime, WorkloadTracesMatchLegacyOrdering) {
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 5'000;
  p.requests_per_weight = 2'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel model(util::paper_cities(), p);
  const auto traces = model.generate();
  expect_same_requests(trace::merge_by_time(traces), legacy_merge(traces));
}

// --- Stream adapters ---------------------------------------------------------

TEST(RequestStream, VectorStreamRoundTripsAtAnyChunk) {
  const auto traces = traces_with_ties();
  const auto merged = trace::merge_by_time(traces);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  trace::kDefaultChunkRequests}) {
    trace::VectorStream stream(merged, chunk);
    ASSERT_EQ(stream.size_hint(), merged.size());
    expect_same_requests(trace::collect(stream), merged);
  }
}

TEST(RequestStream, MultiTraceStreamMatchesMergeByTime) {
  const auto traces = traces_with_ties();
  const auto merged = trace::merge_by_time(traces);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  trace::kDefaultChunkRequests}) {
    trace::MultiTraceStream stream(traces, chunk);
    ASSERT_EQ(stream.size_hint(), merged.size());
    expect_same_requests(trace::collect(stream), merged);
  }
}

TEST(RequestStream, BlocksNeverEmptyAndRespectChunkSize) {
  const auto traces = traces_with_ties();
  trace::MultiTraceStream stream(traces, 16);
  trace::RequestBlock block;
  std::size_t total = 0;
  while (stream.next(block)) {
    ASSERT_FALSE(block.empty());
    ASSERT_LE(block.count(), 16u);
    total += block.count();
  }
  EXPECT_EQ(total, *stream.size_hint());
  EXPECT_TRUE(block.empty());  // next() leaves the block empty at EOS
}

TEST(RequestStream, FileRoundTripPreservesBlocksAndRequests) {
  const auto traces = traces_with_ties();
  const auto merged = trace::merge_by_time(traces);
  const std::string path = testing::TempDir() + "stream_roundtrip.bin";

  trace::MultiTraceStream writer_src(traces, 13);
  trace::write_binary_stream(writer_src, path);

  const auto reader = trace::open_binary_stream(path);
  ASSERT_EQ(reader->size_hint(), merged.size());
  trace::RequestBlock block;
  std::vector<trace::Request> back;
  while (reader->next(block)) {
    ASSERT_FALSE(block.empty());
    ASSERT_LE(block.count(), 13u);  // written block sizes preserved
    for (std::size_t i = 0; i < block.count(); ++i) {
      back.push_back(block.at(i));
    }
  }
  expect_same_requests(back, merged);
  std::remove(path.c_str());
}

// --- generate_stream ---------------------------------------------------------

trace::WorkloadParams small_params() {
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 5'000;
  p.requests_per_weight = 2'000;
  p.duration_s = util::kHour.value();
  return p;
}

TEST(GenerateStream, BitwiseMatchesMaterializedAcrossChunkAndWindow) {
  const trace::WorkloadModel model(util::paper_cities(), small_params());
  const auto merged = trace::merge_by_time(model.generate());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  trace::kDefaultChunkRequests}) {
    for (const std::size_t window :
         {std::size_t{64}, std::size_t{4096}, std::size_t{1} << 22}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                   " window=" + std::to_string(window));
      const auto stream = model.generate_stream({chunk, window});
      ASSERT_EQ(stream->size_hint(), merged.size());
      expect_same_requests(trace::collect(*stream), merged);
    }
  }
}

TEST(GenerateStream, ThreadCountInvariant) {
  const trace::WorkloadModel model(util::paper_cities(), small_params());
  const auto merged = trace::merge_by_time(model.generate());
  for (const int threads : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadOverrideGuard guard(threads);
    const auto stream = model.generate_stream({1024, 2048});
    expect_same_requests(trace::collect(*stream), merged);
  }
}

TEST(GenerateStream, EmptyCityAndSingleRequestEdgeCases) {
  std::vector<util::City> cities = {
      {"quiet", {48.0, 11.0}, 0.0, "de"},     // zero traffic weight
      {"busy", {51.5, -0.1}, 1.0, "en-gb"},
      {"silent", {40.7, -74.0}, 0.0, "en-us"},
  };
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 500;
  p.duration_s = util::kHour.value();

  p.requests_per_weight = 1;  // exactly one request, from the busy city
  {
    const trace::WorkloadModel model(cities, p);
    EXPECT_EQ(model.total_request_count(), 1u);
    const auto merged = trace::merge_by_time(model.generate());
    ASSERT_EQ(merged.size(), 1u);
    const auto stream = model.generate_stream({1, 1});
    expect_same_requests(trace::collect(*stream), merged);
  }

  p.requests_per_weight = 300;
  {
    const trace::WorkloadModel model(cities, p);
    const auto merged = trace::merge_by_time(model.generate());
    ASSERT_EQ(merged.size(), 300u);
    for (const auto& r : merged) EXPECT_EQ(r.location, 1);
    const auto stream = model.generate_stream({17, 64});
    expect_same_requests(trace::collect(*stream), merged);
  }
}

TEST(GenerateStream, AllCitiesEmptyYieldsNothing) {
  // Per-city counts truncate to zero: weight * requests_per_weight < 1.
  std::vector<util::City> cities = {{"a", {0.0, 0.0}, 0.0, "x"},
                                    {"b", {1.0, 1.0}, 0.9, "y"}};
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 100;
  p.requests_per_weight = 1;
  const trace::WorkloadModel model(cities, p);
  const auto stream = model.generate_stream();
  ASSERT_EQ(stream->size_hint(), 0u);
  trace::RequestBlock block;
  EXPECT_FALSE(stream->next(block));
}

// --- Simulator::run(RequestStream&) ------------------------------------------

void expect_identical_metrics(const core::VariantMetrics& a,
                              const core::VariantMetrics& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.routed_hits, b.routed_hits);
  EXPECT_EQ(a.relay_west_hits, b.relay_west_hits);
  EXPECT_EQ(a.relay_east_hits, b.relay_east_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.unreachable, b.unreachable);
  EXPECT_EQ(a.transient_misses, b.transient_misses);
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.bytes_requested, b.bytes_requested);
  EXPECT_EQ(a.bytes_hit, b.bytes_hit);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.isl_bytes, b.isl_bytes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  // Uplink meter statistics see identical (satellite, epoch) cells only if
  // the stream path defers its flush to the end of the run.
  EXPECT_EQ(a.uplink_meter.total_bytes(), b.uplink_meter.total_bytes());
  EXPECT_EQ(a.uplink_meter.throughput_gbps().count(),
            b.uplink_meter.throughput_gbps().count());
  EXPECT_EQ(a.uplink_meter.throughput_gbps().mean(),
            b.uplink_meter.throughput_gbps().mean());
  ASSERT_EQ(a.latency_ms.count(), b.latency_ms.count());
  EXPECT_EQ(a.latency_ms.median(), b.latency_ms.median());
  EXPECT_EQ(a.latency_ms.quantile(0.99), b.latency_ms.quantile(0.99));
}

TEST(SimulatorStream, BitwiseMatchesMaterializedAcrossChunksAndThreads) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const trace::WorkloadModel workload(util::paper_cities(), small_params());
  const auto requests = trace::merge_by_time(workload.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{small_params().duration_s});

  const std::vector<core::Variant> variants = {
      core::Variant::kStatic,     core::Variant::kStarCdn,
      core::Variant::kHashOnly,   core::Variant::kRelayOnly,
      core::Variant::kVanillaLru, core::Variant::kPrefetch};
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(64);
  cfg.buckets = 4;
  cfg.transient_down_prob = 0.02;

  auto simulate = [&](int threads, std::size_t chunk) {
    ThreadOverrideGuard guard(threads);
    auto sim = std::make_unique<core::Simulator>(shell, schedule, cfg);
    for (const auto v : variants) sim->add_variant(v);
    if (chunk == 0) {
      sim->run(requests);
    } else {
      trace::VectorStream stream(requests, chunk);
      sim->run(stream);
    }
    return sim;
  };

  const auto reference = simulate(1, 0);
  for (const int threads : {1, 4, 8}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    trace::kDefaultChunkRequests}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " chunk=" + std::to_string(chunk));
      const auto streamed = simulate(threads, chunk);
      for (const auto v : variants) {
        SCOPED_TRACE(core::to_string(v));
        expect_identical_metrics(reference->metrics(v),
                                 streamed->metrics(v));
      }
    }
  }
}

TEST(SimulatorStream, GeneratedStreamMatchesMaterializedEndToEnd) {
  // The full pipeline: generate_stream -> Simulator::run(stream) equals
  // generate + merge_by_time + run(vector), with no materialization on the
  // stream side.
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const trace::WorkloadModel workload(util::paper_cities(), small_params());
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{small_params().duration_s});
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(64);

  core::Simulator materialized(shell, schedule, cfg);
  materialized.add_variant(core::Variant::kStarCdn);
  materialized.run(trace::merge_by_time(workload.generate()));

  core::Simulator streamed(shell, schedule, cfg);
  streamed.add_variant(core::Variant::kStarCdn);
  const auto stream = workload.generate_stream({1024, 8192});
  streamed.run(*stream);

  expect_identical_metrics(materialized.metrics(core::Variant::kStarCdn),
                           streamed.metrics(core::Variant::kStarCdn));
}

TEST(SimulatorStream, EmptyStreamIsANoOp) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{30 * 60.0});
  core::SimConfig cfg;
  core::Simulator sim(shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  const std::vector<trace::Request> none;
  trace::VectorStream stream(none, 64);
  sim.run(stream);
  EXPECT_EQ(sim.metrics(core::Variant::kStarCdn).requests, 0u);
}

}  // namespace
}  // namespace starcdn
