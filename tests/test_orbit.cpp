#include <gtest/gtest.h>

#include <cmath>

#include "orbit/propagator.h"
#include "orbit/vec3.h"
#include "util/units.h"

namespace starcdn::orbit {
namespace {

CircularElements starlink_like() {
  CircularElements e;
  e.semi_major_axis = util::Km{util::kEarthRadiusKm + 550.0};
  e.inclination = util::Radians{util::to_radians(util::Degrees{53.0}).value()};
  e.raan = util::Radians{0.3};
  e.arg_latitude_epoch = util::Radians{1.1};
  return e;
}

TEST(Vec3, Algebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_NEAR((Vec3{3, 4, 0}.norm()), 5.0, 1e-12);
  EXPECT_NEAR((Vec3{3, 4, 0}.normalized().norm()), 1.0, 1e-12);
}

TEST(Vec3, RotateZ) {
  const Vec3 x{1, 0, 0};
  const Vec3 r = rotate_z(x, M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Propagator, PeriodIsAbout95Minutes) {
  // 550 km circular orbit: T = 2*pi*sqrt(a^3/mu) ≈ 5'740 s.
  EXPECT_NEAR(orbital_period(starlink_like()).value(), 5740.0, 30.0);
}

TEST(Propagator, RadiusIsInvariant) {
  const auto e = starlink_like();
  for (double t = 0.0; t < 6'000.0; t += 321.0) {
    EXPECT_NEAR(eci_position(e, util::Seconds{t}).norm(), e.semi_major_axis.value(), 1e-6);
    EXPECT_NEAR(ecef_position(e, util::Seconds{t}).norm(), e.semi_major_axis.value(), 1e-6);
  }
}

TEST(Propagator, ReturnsToStartAfterOnePeriodInEci) {
  const auto e = starlink_like();
  const double T = orbital_period(e).value();
  const Vec3 p0 = eci_position(e, util::Seconds{0.0});
  const Vec3 p1 = eci_position(e, util::Seconds{T});
  EXPECT_NEAR(distance(p0, p1), 0.0, 1.0);  // within 1 km numerically
}

TEST(Propagator, EcefDriftsWestwardPerOrbit) {
  // After one orbital period Earth has rotated ~24 degrees east, so the
  // ground track shifts ~24 degrees west (Fig. 3's precession).
  const auto e = starlink_like();
  const double T = orbital_period(e).value();
  const auto g0 = ground_track_point(e, util::Seconds{0.0});
  const auto g1 = ground_track_point(e, util::Seconds{T});
  const double shift = util::wrap_lon_deg(g0.lon_deg - g1.lon_deg);
  EXPECT_NEAR(shift, 360.0 * T / util::kEarthSiderealDay.value(), 0.5);
}

TEST(Propagator, GroundTrackBoundedByInclination) {
  const auto e = starlink_like();
  for (double t = 0.0; t < 12'000.0; t += 97.0) {
    EXPECT_LE(std::abs(ground_track_point(e, util::Seconds{t}).lat_deg), 53.0 + 1e-6);
  }
}

TEST(Propagator, GroundTrackReachesInclinationLatitude) {
  const auto e = starlink_like();
  double max_lat = 0.0;
  for (double t = 0.0; t < 6'000.0; t += 10.0) {
    max_lat = std::max(max_lat, std::abs(ground_track_point(e, util::Seconds{t}).lat_deg));
  }
  EXPECT_GT(max_lat, 52.5);
}

TEST(Propagator, GeodeticEcefRoundTrip) {
  for (const auto& g : {util::GeoCoord{0, 0}, util::GeoCoord{40.7, -74.0},
                        util::GeoCoord{-33.9, 151.2}, util::GeoCoord{89.0, 10.0}}) {
    const auto back = ecef_to_geodetic(geodetic_to_ecef(g));
    EXPECT_NEAR(back.lat_deg, g.lat_deg, 1e-9);
    EXPECT_NEAR(back.lon_deg, g.lon_deg, 1e-9);
  }
}

TEST(Propagator, GeodeticAltitude) {
  const auto p = geodetic_to_ecef({0.0, 0.0}, util::Km{550.0});
  EXPECT_NEAR(p.norm(), util::kEarthRadiusKm + 550.0, 1e-9);
}

TEST(Propagator, EciToEcefAtTimeZeroIsIdentity) {
  const Vec3 p{1000.0, 2000.0, 3000.0};
  const Vec3 q = eci_to_ecef(p, util::Seconds{0.0});
  EXPECT_DOUBLE_EQ(q.x, p.x);
  EXPECT_DOUBLE_EQ(q.y, p.y);
  EXPECT_DOUBLE_EQ(q.z, p.z);
}

}  // namespace
}  // namespace starcdn::orbit
