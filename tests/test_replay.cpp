#include "replay/replayer.h"

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::replay {
namespace {

/// Small cluster so the TCP mode stays cheap: 6x4 grid = 24 workers.
orbit::WalkerParams small_shell() {
  orbit::WalkerParams p;
  p.planes = 6;
  p.slots_per_plane = 4;
  return p;
}

std::vector<trace::Request> small_requests() {
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 2'000;
  p.duration_s = 600.0;
  const trace::WorkloadModel w(util::paper_cities(), p);
  std::vector<trace::Request> reqs;
  for (std::size_t c = 0; c < util::paper_cities().size(); ++c) {
    const auto t = w.generate_city(c, 400);
    reqs.insert(reqs.end(), t.requests.begin(), t.requests.end());
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const auto& a, const auto& b) {
              return a.timestamp_s < b.timestamp_s;
            });
  return reqs;
}

TEST(Replay, InProcessBasicAccounting) {
  const orbit::Constellation shell{small_shell()};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{600.0});
  const auto requests = small_requests();

  ReplayConfig cfg;
  cfg.cache_capacity = util::mib(512);
  const auto report = replay_cluster(shell, schedule, requests, cfg);
  EXPECT_EQ(report.requests, requests.size());
  EXPECT_GT(report.hits, 0u);
  EXPECT_EQ(report.hits + report.misses, report.requests);
  EXPECT_GT(report.request_hit_rate(), 0.0);
  EXPECT_GT(report.uplink_bytes, 0u);
}

TEST(Replay, TcpModeMatchesInProcessBitForBit) {
  // The paper's replayer uses TCP between per-satellite processes; our two
  // transports must produce identical results — the protocol, not the
  // transport, determines caching behaviour.
  const orbit::Constellation shell{small_shell()};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{600.0});
  const auto requests = small_requests();

  ReplayConfig inproc;
  inproc.cache_capacity = util::mib(256);
  inproc.transport = TransportKind::kInProcess;
  ReplayConfig tcp = inproc;
  tcp.transport = TransportKind::kTcp;

  const auto a = replay_cluster(shell, schedule, requests, inproc);
  const auto b = replay_cluster(shell, schedule, requests, tcp);
  EXPECT_EQ(a, b);
}

TEST(Replay, RelayImprovesHitRate) {
  const orbit::Constellation shell{small_shell()};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{600.0});
  const auto requests = small_requests();

  ReplayConfig with_relay;
  with_relay.cache_capacity = util::mib(128);
  ReplayConfig no_east = with_relay;
  no_east.relay_east = false;

  const auto full = replay_cluster(shell, schedule, requests, with_relay);
  const auto west_only = replay_cluster(shell, schedule, requests, no_east);
  EXPECT_GE(full.hits, west_only.hits);
  EXPECT_GT(full.relay_hits, 0u);
}

TEST(Replay, DeterministicAcrossRuns) {
  const orbit::Constellation shell{small_shell()};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{600.0});
  const auto requests = small_requests();
  ReplayConfig cfg;
  cfg.cache_capacity = util::mib(64);
  const auto a = replay_cluster(shell, schedule, requests, cfg);
  const auto b = replay_cluster(shell, schedule, requests, cfg);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace starcdn::replay
