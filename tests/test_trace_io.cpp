#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace starcdn::trace {
namespace {

LocationTrace sample_trace() {
  LocationTrace t;
  t.location = 3;
  t.location_name = "Vienna";
  for (int i = 0; i < 500; ++i) {
    t.requests.push_back(
        {i * 0.25, static_cast<ObjectId>(i % 37), 1000u + i, 3});
  }
  return t;
}

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path(const char* ext) const {
    return (std::filesystem::temp_directory_path() /
            (std::string("starcdn_trace_test.") + ext))
        .string();
  }
  void TearDown() override {
    std::remove(path("bin").c_str());
    std::remove(path("csv").c_str());
  }
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const auto original = sample_trace();
  write_binary(original, path("bin"));
  const auto loaded = read_binary(path("bin"));
  EXPECT_EQ(loaded.location, original.location);
  EXPECT_EQ(loaded.location_name, original.location_name);
  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < loaded.requests.size(); ++i) {
    EXPECT_EQ(loaded.requests[i].timestamp_s, original.requests[i].timestamp_s);
    EXPECT_EQ(loaded.requests[i].object, original.requests[i].object);
    EXPECT_EQ(loaded.requests[i].size, original.requests[i].size);
    EXPECT_EQ(loaded.requests[i].location, original.requests[i].location);
  }
  EXPECT_EQ(loaded.total_bytes(), original.total_bytes());
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  const auto original = sample_trace();
  write_csv(original, path("csv"));
  const auto loaded = read_csv_trace(path("csv"));
  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  EXPECT_EQ(loaded.requests[7].object, original.requests[7].object);
  EXPECT_EQ(loaded.requests[7].size, original.requests[7].size);
  EXPECT_EQ(loaded.location, 3);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrip) {
  LocationTrace empty;
  empty.location_name = "nowhere";
  write_binary(empty, path("bin"));
  const auto loaded = read_binary(path("bin"));
  EXPECT_TRUE(loaded.requests.empty());
  EXPECT_EQ(loaded.location_name, "nowhere");
}

TEST_F(TraceIoTest, BadMagicRejected) {
  {
    std::ofstream out(path("bin"), std::ios::binary);
    out << "NOTATRACEFILE....";
  }
  EXPECT_THROW((void)read_binary(path("bin")), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedFileRejected) {
  write_binary(sample_trace(), path("bin"));
  // Truncate mid-record.
  std::filesystem::resize_file(path("bin"), 64);
  EXPECT_THROW((void)read_binary(path("bin")), std::runtime_error);
}

TEST(TraceIo, MissingFilesThrow) {
  EXPECT_THROW((void)read_binary("/nonexistent/trace.bin"),
               std::runtime_error);
  EXPECT_THROW(write_binary({}, "/nonexistent/dir/trace.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace starcdn::trace
