#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace starcdn::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 0.2887, 0.01);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(2);
  int counts[7] = {};
  for (int i = 0; i < 70'000; ++i) ++counts[rng.below(7)];
  for (const int c : counts) EXPECT_NEAR(c, 10'000, 500);
}

TEST(Rng, BelowEdgeCases) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(6);
  QuantileSampler q;
  for (int i = 0; i < 50'000; ++i) q.add(rng.lognormal(2.0, 0.5));
  EXPECT_NEAR(q.median(), std::exp(2.0), 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(8);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(400.0, 0.7), 400.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(9);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits, 30'000, 600);
}

}  // namespace
}  // namespace starcdn::util
