#include "trace/workload.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/geo.h"

namespace starcdn::trace {
namespace {

WorkloadParams tiny_params() {
  auto p = default_params(TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = 8'000;
  p.duration_s = 2 * util::kHour.value();
  return p;
}

TEST(Workload, DefaultParamsPerClass) {
  const auto video = default_params(TrafficClass::kVideo);
  const auto web = default_params(TrafficClass::kWeb);
  const auto dl = default_params(TrafficClass::kDownload);
  // Web: smaller objects, more of them. Downloads: fewer, larger, global.
  EXPECT_LT(web.size_mu, video.size_mu);
  EXPECT_GT(dl.size_mu, video.size_mu);
  EXPECT_GT(web.object_count, dl.object_count);
  EXPECT_GT(dl.global_fraction, video.global_fraction);
}

TEST(Workload, GenerationIsDeterministic) {
  const auto& cities = util::paper_cities();
  const WorkloadModel a(cities, tiny_params());
  const WorkloadModel b(cities, tiny_params());
  const auto ta = a.generate_city(0, 1'000);
  const auto tb = b.generate_city(0, 1'000);
  ASSERT_EQ(ta.requests.size(), tb.requests.size());
  for (std::size_t i = 0; i < ta.requests.size(); ++i) {
    EXPECT_EQ(ta.requests[i].object, tb.requests[i].object);
    EXPECT_EQ(ta.requests[i].timestamp_s, tb.requests[i].timestamp_s);
  }
}

TEST(Workload, SeedChangesTrace) {
  const auto& cities = util::paper_cities();
  auto p1 = tiny_params();
  auto p2 = tiny_params();
  p2.seed = 777;
  const auto ta = WorkloadModel(cities, p1).generate_city(0, 500);
  const auto tb = WorkloadModel(cities, p2).generate_city(0, 500);
  int same = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    same += ta.requests[i].object == tb.requests[i].object;
  }
  EXPECT_LT(same, 250);
}

TEST(Workload, TimestampsSortedAndBounded) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  const auto t = w.generate_city(2, 2'000);
  for (std::size_t i = 1; i < t.requests.size(); ++i) {
    EXPECT_LE(t.requests[i - 1].timestamp_s, t.requests[i].timestamp_s);
  }
  EXPECT_GE(t.requests.front().timestamp_s, 0.0);
  EXPECT_LT(t.requests.back().timestamp_s, tiny_params().duration_s);
}

TEST(Workload, RequestCountsFollowCityWeights) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  const auto traces = w.generate();
  ASSERT_EQ(traces.size(), cities.size());
  // New York (weight 1.8) must have more requests than Vienna (0.8).
  EXPECT_GT(traces[4].requests.size(), traces[7].requests.size());
  EXPECT_EQ(traces[4].location_name, "NewYork");
}

TEST(Workload, SizesConsistentPerObject) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  const auto t = w.generate_city(0, 3'000);
  for (const auto& r : t.requests) {
    EXPECT_EQ(r.size, w.object_size(r.object));
    EXPECT_GE(r.size, 1u);
  }
}

TEST(Workload, OverlapDecaysWithDistance) {
  // The Fig. 2 property: nearby same-region cities share much more traffic
  // than transatlantic or cross-language pairs.
  const auto& cities = util::paper_cities();
  auto p = tiny_params();
  p.requests_per_weight = 20'000;
  const WorkloadModel w(cities, p);
  const auto traces = w.generate();
  const auto ny_dc = overlap(traces[4], traces[3]);       // 327 km, same region
  const auto ny_london = overlap(traces[4], traces[5]);   // 5,570 km, en family
  const auto ny_istanbul = overlap(traces[4], traces[8]); // 8,070 km, cross
  EXPECT_GT(ny_dc.traffic_overlap, 0.75);
  EXPECT_GT(ny_dc.traffic_overlap, ny_london.traffic_overlap);
  EXPECT_GT(ny_dc.traffic_overlap, ny_istanbul.traffic_overlap);
  EXPECT_LT(ny_london.traffic_overlap, 0.6);
  EXPECT_LT(ny_istanbul.traffic_overlap, 0.5);
  // Traffic overlap always exceeds object overlap (hot objects travel).
  EXPECT_GT(ny_dc.traffic_overlap, ny_dc.object_overlap);
}

TEST(Workload, RegionGateExcludesContentDeterministically) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  // Frankfurt (6) and Vienna (7) share the "de" region: every object must
  // have identical reachability status (zero or non-zero) driven by the
  // same gate, scaled only by distance.
  int de_mismatch = 0;
  for (ObjectId id = 0; id < 2'000; ++id) {
    const bool in_ffm = w.weight(id, 6) > 0.0;
    const bool in_vie = w.weight(id, 7) > 0.0;
    if (in_ffm != in_vie) ++de_mismatch;
  }
  // Reach decay can differ slightly; mismatches must be rare.
  EXPECT_LT(de_mismatch, 100);
}

TEST(Workload, HomeCityAlwaysReachable) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  // Every object must be accessible somewhere (its home city).
  for (ObjectId id = 0; id < 1'000; ++id) {
    double max_w = 0.0;
    for (std::size_t c = 0; c < cities.size(); ++c) {
      max_w = std::max(max_w, w.weight(id, c));
    }
    EXPECT_GT(max_w, 0.0) << "object " << id << " unreachable everywhere";
  }
}

TEST(Workload, MergeByTimeGloballySorted) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  const auto merged = merge_by_time(w.generate());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].timestamp_s, merged[i].timestamp_s);
  }
  EXPECT_GT(merged.size(), 0u);
}

TEST(Workload, EmptyCitiesThrows) {
  const std::vector<util::City> none;
  EXPECT_THROW(WorkloadModel(none, tiny_params()), std::invalid_argument);
}

TEST(Overlap, SelfOverlapIsTotal) {
  const auto& cities = util::paper_cities();
  const WorkloadModel w(cities, tiny_params());
  const auto t = w.generate_city(0, 1'000);
  const auto r = overlap(t, t);
  EXPECT_DOUBLE_EQ(r.object_overlap, 1.0);
  EXPECT_DOUBLE_EQ(r.traffic_overlap, 1.0);
}

TEST(Overlap, DisjointTracesOverlapZero) {
  LocationTrace a, b;
  a.requests.push_back({0.0, 1, 10, 0});
  b.requests.push_back({0.0, 2, 10, 1});
  const auto r = overlap(a, b);
  EXPECT_DOUBLE_EQ(r.object_overlap, 0.0);
  EXPECT_DOUBLE_EQ(r.traffic_overlap, 0.0);
}

}  // namespace
}  // namespace starcdn::trace
