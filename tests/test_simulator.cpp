#include "core/simulator.h"

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::core {
namespace {

/// Shared fixture: a small-but-real scenario so each test stays fast.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    auto p = trace::default_params(trace::TrafficClass::kVideo);
    p.object_count = 20'000;
    p.requests_per_weight = 10'000;
    p.duration_s = 2 * util::kHour.value();
    workload_ = new trace::WorkloadModel(util::paper_cities(), p);
    requests_ = new std::vector<trace::Request>(
        trace::merge_by_time(workload_->generate()));
    schedule_ = new sched::LinkSchedule(*shell_, util::paper_cities(),
                                        util::Seconds{p.duration_s});
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete workload_;
    delete schedule_;
    delete shell_;
    requests_ = nullptr;
    workload_ = nullptr;
    schedule_ = nullptr;
    shell_ = nullptr;
  }

  static SimConfig small_config() {
    SimConfig cfg;
    cfg.cache_capacity = util::mib(256);
    cfg.buckets = 4;
    return cfg;
  }

  static orbit::Constellation* shell_;
  static trace::WorkloadModel* workload_;
  static std::vector<trace::Request>* requests_;
  static sched::LinkSchedule* schedule_;
};

orbit::Constellation* SimulatorTest::shell_ = nullptr;
trace::WorkloadModel* SimulatorTest::workload_ = nullptr;
std::vector<trace::Request>* SimulatorTest::requests_ = nullptr;
sched::LinkSchedule* SimulatorTest::schedule_ = nullptr;

TEST_F(SimulatorTest, ConservationInvariants) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.add_variant(Variant::kVanillaLru);
  sim.run(*requests_);
  for (const auto v : {Variant::kStarCdn, Variant::kVanillaLru}) {
    const auto& m = sim.metrics(v);
    EXPECT_EQ(m.requests, requests_->size());
    EXPECT_EQ(m.hits() + m.misses, m.requests);
    EXPECT_EQ(m.bytes_hit + m.uplink_bytes, m.bytes_requested);
    EXPECT_GT(m.hits(), 0u);
    EXPECT_GT(m.misses, 0u);
  }
}

TEST_F(SimulatorTest, UplinkEqualsOneMinusByteHitRate) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_NEAR(m.normalized_uplink(), 1.0 - m.byte_hit_rate(), 1e-12);
}

TEST_F(SimulatorTest, VariantOrderingHolds) {
  // The paper's headline ordering at any reasonable configuration:
  // StarCDN > hashing-only > vanilla LRU (Fig. 7).
  Simulator sim(*shell_, *schedule_, small_config());
  for (const auto v : {Variant::kStarCdn, Variant::kHashOnly,
                       Variant::kRelayOnly, Variant::kVanillaLru}) {
    sim.add_variant(v);
  }
  sim.run(*requests_);
  const double full = sim.metrics(Variant::kStarCdn).request_hit_rate();
  const double hash = sim.metrics(Variant::kHashOnly).request_hit_rate();
  const double relay = sim.metrics(Variant::kRelayOnly).request_hit_rate();
  const double lru = sim.metrics(Variant::kVanillaLru).request_hit_rate();
  EXPECT_GT(full, hash);
  EXPECT_GT(hash, lru);
  EXPECT_GT(relay, lru);
  EXPECT_GT(full, relay);
}

TEST_F(SimulatorTest, RelayedFetchOnlyInRelayVariants) {
  Simulator sim(*shell_, *schedule_, small_config());
  for (const auto v : {Variant::kStarCdn, Variant::kHashOnly}) {
    sim.add_variant(v);
  }
  sim.run(*requests_);
  EXPECT_GT(sim.metrics(Variant::kStarCdn).relay_west_hits +
                sim.metrics(Variant::kStarCdn).relay_east_hits,
            0u);
  EXPECT_EQ(sim.metrics(Variant::kHashOnly).relay_west_hits, 0u);
  EXPECT_EQ(sim.metrics(Variant::kHashOnly).relay_east_hits, 0u);
}

TEST_F(SimulatorTest, WestNeighbourDominatesRelays) {
  // §3.3/Fig. 3: the west inter-orbit neighbour traces the requester's
  // recent ground track, so most relayed hits come from the west.
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_GT(m.relay_west_hits, m.relay_east_hits);
}

TEST_F(SimulatorTest, RelayAvailabilityTracked) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& rel = sim.metrics(Variant::kStarCdn).relay;
  // Table 3's pattern: west-only dominates east-only and both.
  EXPECT_GT(rel.west_only_requests, rel.east_only_requests);
  EXPECT_GT(rel.west_only_requests, rel.both_requests);
  EXPECT_GT(rel.west_only_bytes, 0u);
}

TEST_F(SimulatorTest, DisablingEastRelayRemovesEastHits) {
  auto cfg = small_config();
  cfg.relay_east = false;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_EQ(m.relay_east_hits, 0u);
  EXPECT_GT(m.relay_west_hits, 0u);
}

TEST_F(SimulatorTest, LatencySamplesCollected) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& lat = sim.metrics(Variant::kStarCdn).latency_ms;
  EXPECT_EQ(lat.count(), requests_->size());
  // Hits cost a couple of GSL+ISL traversals; misses tens of ms.
  EXPECT_GT(lat.median(), 3.0);
  EXPECT_LT(lat.median(), 80.0);
  EXPECT_GT(lat.quantile(0.99), lat.median());
}

TEST_F(SimulatorTest, LatencySamplingCanBeDisabled) {
  auto cfg = small_config();
  cfg.sample_latency = false;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kVanillaLru);
  sim.run(*requests_);
  EXPECT_TRUE(sim.metrics(Variant::kVanillaLru).latency_ms.empty());
}

TEST_F(SimulatorTest, BiggerCacheNeverHurts) {
  auto small_cfg = small_config();
  small_cfg.cache_capacity = util::mib(64);
  Simulator small_sim(*shell_, *schedule_, small_cfg);
  small_sim.add_variant(Variant::kVanillaLru);
  small_sim.run(*requests_);

  auto big_cfg = small_config();
  big_cfg.cache_capacity = util::gib(4);
  Simulator big_sim(*shell_, *schedule_, big_cfg);
  big_sim.add_variant(Variant::kVanillaLru);
  big_sim.run(*requests_);

  EXPECT_GE(big_sim.metrics(Variant::kVanillaLru).request_hit_rate() + 0.001,
            small_sim.metrics(Variant::kVanillaLru).request_hit_rate());
}

TEST_F(SimulatorTest, MoreBucketsImproveHashedHitRate) {
  // §5.2.1: L=9 beats L=4 in hit rate (bigger effective cache).
  auto cfg4 = small_config();
  cfg4.buckets = 4;
  Simulator s4(*shell_, *schedule_, cfg4);
  s4.add_variant(Variant::kHashOnly);
  s4.run(*requests_);

  auto cfg9 = small_config();
  cfg9.buckets = 9;
  Simulator s9(*shell_, *schedule_, cfg9);
  s9.add_variant(Variant::kHashOnly);
  s9.run(*requests_);

  EXPECT_GT(s9.metrics(Variant::kHashOnly).request_hit_rate(),
            s4.metrics(Variant::kHashOnly).request_hit_rate());
}

TEST_F(SimulatorTest, PerSatelliteTracking) {
  auto cfg = small_config();
  cfg.track_per_satellite = true;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  ASSERT_EQ(m.sat_requests.size(), static_cast<std::size_t>(shell_->size()));
  std::uint64_t total = 0, hits = 0;
  for (std::size_t i = 0; i < m.sat_requests.size(); ++i) {
    total += m.sat_requests[i];
    hits += m.sat_hits[i];
    ASSERT_LE(m.sat_hits[i], m.sat_requests[i]);
  }
  // Relay hits are not attributed to the serving satellite's counters, so
  // the per-satellite totals cover requests that reached a cache.
  EXPECT_EQ(total, m.requests);
  EXPECT_EQ(hits, m.local_hits + m.routed_hits);
}

TEST_F(SimulatorTest, BucketsServedHealthyGridIsOnePerSatellite) {
  Simulator sim(*shell_, *schedule_, small_config());
  const auto served = sim.buckets_served_per_satellite();
  for (int i = 0; i < shell_->size(); ++i) {
    EXPECT_EQ(served[static_cast<std::size_t>(i)], 1);
  }
}

TEST_F(SimulatorTest, UnregisteredVariantThrows) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  EXPECT_THROW((void)sim.metrics(Variant::kVanillaLru), std::out_of_range);
}

TEST_F(SimulatorTest, DuplicateVariantRegistrationIsNoop) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  EXPECT_EQ(sim.metrics(Variant::kStarCdn).requests, requests_->size());
}

TEST_F(SimulatorTest, StreamedRunsAccumulate) {
  Simulator whole(*shell_, *schedule_, small_config());
  whole.add_variant(Variant::kStarCdn);
  whole.run(*requests_);

  Simulator chunked(*shell_, *schedule_, small_config());
  chunked.add_variant(Variant::kStarCdn);
  const std::size_t half = requests_->size() / 2;
  chunked.run({requests_->begin(), requests_->begin() + half});
  chunked.run({requests_->begin() + half, requests_->end()});

  EXPECT_EQ(whole.metrics(Variant::kStarCdn).hits(),
            chunked.metrics(Variant::kStarCdn).hits());
  EXPECT_EQ(whole.metrics(Variant::kStarCdn).uplink_bytes,
            chunked.metrics(Variant::kStarCdn).uplink_bytes);
}

// --- Golden regression -------------------------------------------------------
//
// End-to-end metrics captured from the pre-rewrite (node-based) cache
// implementations on a fixed scenario: every policy x variant combination
// must stay bitwise-identical after the arena-backed cache-core rewrite.
// Any intentional behaviour change to a policy must re-capture these rows.

struct GoldenRow {
  cache::Policy policy;
  Variant variant;
  std::uint64_t local_hits, routed_hits, relay_west_hits, relay_east_hits;
  std::uint64_t misses, unreachable;
  std::uint64_t bytes_hit, uplink_bytes, isl_bytes, prefetch_bytes;
  std::uint64_t relay_both_requests;
};

TEST(SimulatorGolden, MetricsBitwiseIdenticalAcrossCacheRewrite) {
  using cache::Policy;
  static constexpr GoldenRow kGolden[] = {
    {Policy::kLru, Variant(0), 7990u, 0u, 0u, 0u, 14410u, 0u, 96787506361u, 274881501435u, 0u, 0u, 0u},
    {Policy::kLru, Variant(1), 7660u, 0u, 0u, 0u, 14740u, 0u, 92165935056u, 279503072740u, 0u, 0u, 0u},
    {Policy::kLru, Variant(2), 2645u, 8440u, 0u, 0u, 11315u, 0u, 151690795490u, 219978212306u, 115466108068u, 0u, 0u},
    {Policy::kLru, Variant(3), 7732u, 0u, 1989u, 721u, 11958u, 0u, 138921015034u, 232747992762u, 45238780024u, 0u, 708u},
    {Policy::kLru, Variant(4), 2645u, 8466u, 1486u, 789u, 9014u, 0u, 191293095456u, 180375912340u, 155038749696u, 0u, 384u},
    {Policy::kLru, Variant(5), 2601u, 7836u, 0u, 0u, 11963u, 0u, 138708494608u, 232960513188u, 390158118394u, 285769149839u, 0u},
    {Policy::kLfu, Variant(0), 8726u, 0u, 0u, 0u, 13674u, 0u, 105472851524u, 266196156272u, 0u, 0u, 0u},
    {Policy::kLfu, Variant(1), 8206u, 0u, 0u, 0u, 14194u, 0u, 99462369008u, 272206638788u, 0u, 0u, 0u},
    {Policy::kLfu, Variant(2), 2694u, 8792u, 0u, 0u, 10914u, 0u, 155638276977u, 216030730819u, 118953887871u, 0u, 0u},
    {Policy::kLfu, Variant(3), 8236u, 0u, 1739u, 605u, 11820u, 0u, 140337646961u, 231331360835u, 40298404643u, 0u, 511u},
    {Policy::kLfu, Variant(4), 2691u, 8855u, 1432u, 682u, 8740u, 0u, 192385707288u, 179283300508u, 155885714663u, 0u, 345u},
    {Policy::kLfu, Variant(5), 2843u, 8790u, 0u, 0u, 10767u, 0u, 152231310786u, 219437697010u, 374903166854u, 260071178471u, 0u},
    {Policy::kFifo, Variant(0), 7325u, 0u, 0u, 0u, 15075u, 0u, 88976178047u, 282692829749u, 0u, 0u, 0u},
    {Policy::kFifo, Variant(1), 7044u, 0u, 0u, 0u, 15356u, 0u, 85128297738u, 286540710058u, 0u, 0u, 0u},
    {Policy::kFifo, Variant(2), 2551u, 8085u, 0u, 0u, 11764u, 0u, 144579126785u, 227089881011u, 110005529554u, 0u, 0u},
    {Policy::kFifo, Variant(3), 7044u, 0u, 2341u, 931u, 12084u, 0u, 136616281255u, 235052726541u, 51487983517u, 0u, 908u},
    {Policy::kFifo, Variant(4), 2551u, 8085u, 1800u, 854u, 9110u, 0u, 188976908912u, 182692098884u, 154403311681u, 0u, 597u},
    {Policy::kFifo, Variant(5), 2554u, 7517u, 0u, 0u, 12329u, 0u, 134554984129u, 237114023667u, 400408757564u, 299670656678u, 0u},
    {Policy::kSieve, Variant(0), 8388u, 0u, 0u, 0u, 14012u, 0u, 102856128994u, 268812878802u, 0u, 0u, 0u},
    {Policy::kSieve, Variant(1), 8001u, 0u, 0u, 0u, 14399u, 0u, 97193160155u, 274475847641u, 0u, 0u, 0u},
    {Policy::kSieve, Variant(2), 2671u, 8613u, 0u, 0u, 11116u, 0u, 154695959799u, 216973047997u, 117940201255u, 0u, 0u},
    {Policy::kSieve, Variant(3), 7989u, 0u, 1892u, 657u, 11862u, 0u, 140220447544u, 231448560252u, 42527583734u, 0u, 659u},
    {Policy::kSieve, Variant(4), 2672u, 8637u, 1486u, 738u, 8867u, 0u, 192928998479u, 178740009317u, 156113287152u, 0u, 386u},
    {Policy::kSieve, Variant(5), 2828u, 8565u, 0u, 0u, 11007u, 0u, 151212530239u, 220456477557u, 383937073604u, 270437432151u, 0u},
    {Policy::kSlru, Variant(0), 8665u, 0u, 0u, 0u, 13735u, 0u, 105797751966u, 265871255830u, 0u, 0u, 0u},
    {Policy::kSlru, Variant(1), 8192u, 0u, 0u, 0u, 14208u, 0u, 99443628356u, 272225379440u, 0u, 0u, 0u},
    {Policy::kSlru, Variant(2), 2697u, 8766u, 0u, 0u, 10937u, 0u, 155576692066u, 216092315730u, 118736773090u, 0u, 0u},
    {Policy::kSlru, Variant(3), 8203u, 0u, 1793u, 621u, 11783u, 0u, 140985093692u, 230683914104u, 41161523463u, 0u, 554u},
    {Policy::kSlru, Variant(4), 2693u, 8795u, 1447u, 699u, 8766u, 0u, 192960452402u, 178708555394u, 156128473520u, 0u, 354u},
    {Policy::kSlru, Variant(5), 2851u, 8756u, 0u, 0u, 10793u, 0u, 152686670229u, 218982337567u, 380174331869u, 265298917542u, 0u},
    {Policy::kGdsf, Variant(0), 8793u, 0u, 0u, 0u, 13607u, 0u, 97527119254u, 274141888542u, 0u, 0u, 0u},
    {Policy::kGdsf, Variant(1), 8169u, 0u, 0u, 0u, 14231u, 0u, 92141949169u, 279527058627u, 0u, 0u, 0u},
    {Policy::kGdsf, Variant(2), 2716u, 8967u, 0u, 0u, 10717u, 0u, 149443822622u, 222225185174u, 114544699941u, 0u, 0u},
    {Policy::kGdsf, Variant(3), 8237u, 0u, 1889u, 688u, 11586u, 0u, 134264732932u, 237404274864u, 40875012310u, 0u, 575u},
    {Policy::kGdsf, Variant(4), 2726u, 9015u, 1441u, 680u, 8538u, 0u, 186106804782u, 185562203014u, 151095667198u, 0u, 352u},
    {Policy::kGdsf, Variant(5), 2843u, 8754u, 0u, 0u, 10803u, 0u, 140550871860u, 231118135936u, 354138320335u, 247567169119u, 0u},
  };

  const orbit::Constellation shell{orbit::WalkerParams{}};
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 5'000;
  p.requests_per_weight = 2'000;
  p.duration_s = 1'800.0;
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(workload.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{p.duration_s});
  constexpr Variant kVariants[] = {
      Variant::kStatic,   Variant::kVanillaLru, Variant::kHashOnly,
      Variant::kRelayOnly, Variant::kStarCdn,   Variant::kPrefetch,
  };

  std::size_t row = 0;
  for (const auto policy :
       {Policy::kLru, Policy::kLfu, Policy::kFifo, Policy::kSieve,
        Policy::kSlru, Policy::kGdsf}) {
    SimConfig cfg;
    cfg.policy = policy;
    cfg.cache_capacity = util::mib(64);
    cfg.buckets = 4;
    Simulator sim(shell, schedule, cfg);
    for (const auto v : kVariants) sim.add_variant(v);
    sim.run(requests);
    for (const auto v : kVariants) {
      const GoldenRow& g = kGolden[row++];
      ASSERT_EQ(g.policy, policy);
      ASSERT_EQ(g.variant, v);
      const auto& m = sim.metrics(v);
      const auto label = std::string(cache::to_string(policy)) + "/variant " +
                         std::to_string(static_cast<int>(v));
      EXPECT_EQ(m.local_hits, g.local_hits) << label;
      EXPECT_EQ(m.routed_hits, g.routed_hits) << label;
      EXPECT_EQ(m.relay_west_hits, g.relay_west_hits) << label;
      EXPECT_EQ(m.relay_east_hits, g.relay_east_hits) << label;
      EXPECT_EQ(m.misses, g.misses) << label;
      EXPECT_EQ(m.unreachable, g.unreachable) << label;
      EXPECT_EQ(m.bytes_hit, g.bytes_hit) << label;
      EXPECT_EQ(m.uplink_bytes, g.uplink_bytes) << label;
      EXPECT_EQ(m.isl_bytes, g.isl_bytes) << label;
      EXPECT_EQ(m.prefetch_bytes, g.prefetch_bytes) << label;
      EXPECT_EQ(m.relay.both_requests, g.relay_both_requests) << label;
    }
  }
  EXPECT_EQ(row, std::size(kGolden));
}

TEST(SimulatorFailures, KnockedOutConstellationStillServes) {
  orbit::Constellation shell{orbit::WalkerParams{}};
  util::Rng rng(7);
  shell.knock_out_random(0.097, rng);  // the paper's out-of-slot rate
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 10'000;
  p.requests_per_weight = 4'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(w.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});

  SimConfig cfg;
  cfg.cache_capacity = util::mib(256);
  cfg.buckets = 9;
  cfg.track_per_satellite = true;
  Simulator sim(shell, schedule, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(requests);

  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_EQ(m.requests, requests.size());
  EXPECT_GT(m.request_hit_rate(), 0.2);

  // Fig. 11 structure: some satellites inherit extra bucket slots.
  const auto served = sim.buckets_served_per_satellite();
  int multi = 0;
  for (int i = 0; i < shell.size(); ++i) {
    if (!shell.active(util::SatId{i})) {
      EXPECT_EQ(served[static_cast<std::size_t>(i)], 0);
    } else if (served[static_cast<std::size_t>(i)] > 1) {
      ++multi;
    }
  }
  EXPECT_GT(multi, 0);
}

}  // namespace
}  // namespace starcdn::core
