#include "core/simulator.h"

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::core {
namespace {

/// Shared fixture: a small-but-real scenario so each test stays fast.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    auto p = trace::default_params(trace::TrafficClass::kVideo);
    p.object_count = 20'000;
    p.requests_per_weight = 10'000;
    p.duration_s = 2 * util::kHour;
    workload_ = new trace::WorkloadModel(util::paper_cities(), p);
    requests_ = new std::vector<trace::Request>(
        trace::merge_by_time(workload_->generate()));
    schedule_ = new sched::LinkSchedule(*shell_, util::paper_cities(),
                                        p.duration_s);
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete workload_;
    delete schedule_;
    delete shell_;
    requests_ = nullptr;
    workload_ = nullptr;
    schedule_ = nullptr;
    shell_ = nullptr;
  }

  static SimConfig small_config() {
    SimConfig cfg;
    cfg.cache_capacity = util::mib(256);
    cfg.buckets = 4;
    return cfg;
  }

  static orbit::Constellation* shell_;
  static trace::WorkloadModel* workload_;
  static std::vector<trace::Request>* requests_;
  static sched::LinkSchedule* schedule_;
};

orbit::Constellation* SimulatorTest::shell_ = nullptr;
trace::WorkloadModel* SimulatorTest::workload_ = nullptr;
std::vector<trace::Request>* SimulatorTest::requests_ = nullptr;
sched::LinkSchedule* SimulatorTest::schedule_ = nullptr;

TEST_F(SimulatorTest, ConservationInvariants) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.add_variant(Variant::kVanillaLru);
  sim.run(*requests_);
  for (const auto v : {Variant::kStarCdn, Variant::kVanillaLru}) {
    const auto& m = sim.metrics(v);
    EXPECT_EQ(m.requests, requests_->size());
    EXPECT_EQ(m.hits() + m.misses, m.requests);
    EXPECT_EQ(m.bytes_hit + m.uplink_bytes, m.bytes_requested);
    EXPECT_GT(m.hits(), 0u);
    EXPECT_GT(m.misses, 0u);
  }
}

TEST_F(SimulatorTest, UplinkEqualsOneMinusByteHitRate) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_NEAR(m.normalized_uplink(), 1.0 - m.byte_hit_rate(), 1e-12);
}

TEST_F(SimulatorTest, VariantOrderingHolds) {
  // The paper's headline ordering at any reasonable configuration:
  // StarCDN > hashing-only > vanilla LRU (Fig. 7).
  Simulator sim(*shell_, *schedule_, small_config());
  for (const auto v : {Variant::kStarCdn, Variant::kHashOnly,
                       Variant::kRelayOnly, Variant::kVanillaLru}) {
    sim.add_variant(v);
  }
  sim.run(*requests_);
  const double full = sim.metrics(Variant::kStarCdn).request_hit_rate();
  const double hash = sim.metrics(Variant::kHashOnly).request_hit_rate();
  const double relay = sim.metrics(Variant::kRelayOnly).request_hit_rate();
  const double lru = sim.metrics(Variant::kVanillaLru).request_hit_rate();
  EXPECT_GT(full, hash);
  EXPECT_GT(hash, lru);
  EXPECT_GT(relay, lru);
  EXPECT_GT(full, relay);
}

TEST_F(SimulatorTest, RelayedFetchOnlyInRelayVariants) {
  Simulator sim(*shell_, *schedule_, small_config());
  for (const auto v : {Variant::kStarCdn, Variant::kHashOnly}) {
    sim.add_variant(v);
  }
  sim.run(*requests_);
  EXPECT_GT(sim.metrics(Variant::kStarCdn).relay_west_hits +
                sim.metrics(Variant::kStarCdn).relay_east_hits,
            0u);
  EXPECT_EQ(sim.metrics(Variant::kHashOnly).relay_west_hits, 0u);
  EXPECT_EQ(sim.metrics(Variant::kHashOnly).relay_east_hits, 0u);
}

TEST_F(SimulatorTest, WestNeighbourDominatesRelays) {
  // §3.3/Fig. 3: the west inter-orbit neighbour traces the requester's
  // recent ground track, so most relayed hits come from the west.
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_GT(m.relay_west_hits, m.relay_east_hits);
}

TEST_F(SimulatorTest, RelayAvailabilityTracked) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& rel = sim.metrics(Variant::kStarCdn).relay;
  // Table 3's pattern: west-only dominates east-only and both.
  EXPECT_GT(rel.west_only_requests, rel.east_only_requests);
  EXPECT_GT(rel.west_only_requests, rel.both_requests);
  EXPECT_GT(rel.west_only_bytes, 0u);
}

TEST_F(SimulatorTest, DisablingEastRelayRemovesEastHits) {
  auto cfg = small_config();
  cfg.relay_east = false;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_EQ(m.relay_east_hits, 0u);
  EXPECT_GT(m.relay_west_hits, 0u);
}

TEST_F(SimulatorTest, LatencySamplesCollected) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& lat = sim.metrics(Variant::kStarCdn).latency_ms;
  EXPECT_EQ(lat.count(), requests_->size());
  // Hits cost a couple of GSL+ISL traversals; misses tens of ms.
  EXPECT_GT(lat.median(), 3.0);
  EXPECT_LT(lat.median(), 80.0);
  EXPECT_GT(lat.quantile(0.99), lat.median());
}

TEST_F(SimulatorTest, LatencySamplingCanBeDisabled) {
  auto cfg = small_config();
  cfg.sample_latency = false;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kVanillaLru);
  sim.run(*requests_);
  EXPECT_TRUE(sim.metrics(Variant::kVanillaLru).latency_ms.empty());
}

TEST_F(SimulatorTest, BiggerCacheNeverHurts) {
  auto small_cfg = small_config();
  small_cfg.cache_capacity = util::mib(64);
  Simulator small_sim(*shell_, *schedule_, small_cfg);
  small_sim.add_variant(Variant::kVanillaLru);
  small_sim.run(*requests_);

  auto big_cfg = small_config();
  big_cfg.cache_capacity = util::gib(4);
  Simulator big_sim(*shell_, *schedule_, big_cfg);
  big_sim.add_variant(Variant::kVanillaLru);
  big_sim.run(*requests_);

  EXPECT_GE(big_sim.metrics(Variant::kVanillaLru).request_hit_rate() + 0.001,
            small_sim.metrics(Variant::kVanillaLru).request_hit_rate());
}

TEST_F(SimulatorTest, MoreBucketsImproveHashedHitRate) {
  // §5.2.1: L=9 beats L=4 in hit rate (bigger effective cache).
  auto cfg4 = small_config();
  cfg4.buckets = 4;
  Simulator s4(*shell_, *schedule_, cfg4);
  s4.add_variant(Variant::kHashOnly);
  s4.run(*requests_);

  auto cfg9 = small_config();
  cfg9.buckets = 9;
  Simulator s9(*shell_, *schedule_, cfg9);
  s9.add_variant(Variant::kHashOnly);
  s9.run(*requests_);

  EXPECT_GT(s9.metrics(Variant::kHashOnly).request_hit_rate(),
            s4.metrics(Variant::kHashOnly).request_hit_rate());
}

TEST_F(SimulatorTest, PerSatelliteTracking) {
  auto cfg = small_config();
  cfg.track_per_satellite = true;
  Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(Variant::kStarCdn);
  ASSERT_EQ(m.sat_requests.size(), static_cast<std::size_t>(shell_->size()));
  std::uint64_t total = 0, hits = 0;
  for (std::size_t i = 0; i < m.sat_requests.size(); ++i) {
    total += m.sat_requests[i];
    hits += m.sat_hits[i];
    ASSERT_LE(m.sat_hits[i], m.sat_requests[i]);
  }
  // Relay hits are not attributed to the serving satellite's counters, so
  // the per-satellite totals cover requests that reached a cache.
  EXPECT_EQ(total, m.requests);
  EXPECT_EQ(hits, m.local_hits + m.routed_hits);
}

TEST_F(SimulatorTest, BucketsServedHealthyGridIsOnePerSatellite) {
  Simulator sim(*shell_, *schedule_, small_config());
  const auto served = sim.buckets_served_per_satellite();
  for (int i = 0; i < shell_->size(); ++i) {
    EXPECT_EQ(served[static_cast<std::size_t>(i)], 1);
  }
}

TEST_F(SimulatorTest, UnregisteredVariantThrows) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  EXPECT_THROW((void)sim.metrics(Variant::kVanillaLru), std::out_of_range);
}

TEST_F(SimulatorTest, DuplicateVariantRegistrationIsNoop) {
  Simulator sim(*shell_, *schedule_, small_config());
  sim.add_variant(Variant::kStarCdn);
  sim.add_variant(Variant::kStarCdn);
  sim.run(*requests_);
  EXPECT_EQ(sim.metrics(Variant::kStarCdn).requests, requests_->size());
}

TEST_F(SimulatorTest, StreamedRunsAccumulate) {
  Simulator whole(*shell_, *schedule_, small_config());
  whole.add_variant(Variant::kStarCdn);
  whole.run(*requests_);

  Simulator chunked(*shell_, *schedule_, small_config());
  chunked.add_variant(Variant::kStarCdn);
  const std::size_t half = requests_->size() / 2;
  chunked.run({requests_->begin(), requests_->begin() + half});
  chunked.run({requests_->begin() + half, requests_->end()});

  EXPECT_EQ(whole.metrics(Variant::kStarCdn).hits(),
            chunked.metrics(Variant::kStarCdn).hits());
  EXPECT_EQ(whole.metrics(Variant::kStarCdn).uplink_bytes,
            chunked.metrics(Variant::kStarCdn).uplink_bytes);
}

TEST(SimulatorFailures, KnockedOutConstellationStillServes) {
  orbit::Constellation shell{orbit::WalkerParams{}};
  util::Rng rng(7);
  shell.knock_out_random(0.097, rng);  // the paper's out-of-slot rate
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 10'000;
  p.requests_per_weight = 4'000;
  p.duration_s = util::kHour;
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(w.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(), p.duration_s);

  SimConfig cfg;
  cfg.cache_capacity = util::mib(256);
  cfg.buckets = 9;
  cfg.track_per_satellite = true;
  Simulator sim(shell, schedule, cfg);
  sim.add_variant(Variant::kStarCdn);
  sim.run(requests);

  const auto& m = sim.metrics(Variant::kStarCdn);
  EXPECT_EQ(m.requests, requests.size());
  EXPECT_GT(m.request_hit_rate(), 0.2);

  // Fig. 11 structure: some satellites inherit extra bucket slots.
  const auto served = sim.buckets_served_per_satellite();
  int multi = 0;
  for (int i = 0; i < shell.size(); ++i) {
    if (!shell.active(i)) {
      EXPECT_EQ(served[static_cast<std::size_t>(i)], 0);
    } else if (served[static_cast<std::size_t>(i)] > 1) {
      ++multi;
    }
  }
  EXPECT_GT(multi, 0);
}

}  // namespace
}  // namespace starcdn::core
