#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "util/geo.h"

namespace starcdn::sched {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    schedule_ = new LinkSchedule(*shell_, util::paper_cities(),
                                 util::Seconds{30 * 60.0} /* 30 minutes */);
  }
  static void TearDownTestSuite() {
    delete schedule_;
    delete shell_;
    schedule_ = nullptr;
    shell_ = nullptr;
  }
  static orbit::Constellation* shell_;
  static LinkSchedule* schedule_;
};

orbit::Constellation* SchedulerTest::shell_ = nullptr;
LinkSchedule* SchedulerTest::schedule_ = nullptr;

TEST_F(SchedulerTest, EpochCount) {
  EXPECT_EQ(schedule_->epochs(), 120u);  // 30 min / 15 s
  EXPECT_DOUBLE_EQ(schedule_->epoch_duration().value(), 15.0);
}

TEST_F(SchedulerTest, EpochOfClampsToRange) {
  EXPECT_EQ(schedule_->epoch_of(util::Seconds{-5.0}).value(), 0u);
  EXPECT_EQ(schedule_->epoch_of(util::Seconds{0.0}).value(), 0u);
  EXPECT_EQ(schedule_->epoch_of(util::Seconds{15.0}).value(), 1u);
  EXPECT_EQ(schedule_->epoch_of(util::Seconds{1e9}).value(), schedule_->epochs() - 1);
}

TEST_F(SchedulerTest, CandidatesAreValidSatellites) {
  for (std::size_t e = 0; e < schedule_->epochs(); e += 17) {
    for (std::size_t c = 0; c < util::paper_cities().size(); ++c) {
      for (const auto& cand : schedule_->candidates(util::EpochIdx{e}, util::CityId{static_cast<std::uint32_t>(c)})) {
        EXPECT_GE(cand.sat.value(), 0);
        EXPECT_LT(cand.sat.value(), shell_->size());
        // One-way GSL delay at 550 km with a 25-degree mask: 1.8 - 5 ms.
        EXPECT_GT(cand.gsl_one_way_ms, 1.7F);
        EXPECT_LT(cand.gsl_one_way_ms, 5.5F);
      }
    }
  }
}

TEST_F(SchedulerTest, MidLatitudeCitiesAlwaysCovered) {
  for (std::size_t e = 0; e < schedule_->epochs(); ++e) {
    for (std::size_t c = 0; c < util::paper_cities().size(); ++c) {
      EXPECT_FALSE(schedule_->candidates(util::EpochIdx{e}, util::CityId{static_cast<std::uint32_t>(c)}).empty())
          << "city " << c << " uncovered at epoch " << e;
    }
  }
}

TEST_F(SchedulerTest, PaperReportsManySatellitesInView) {
  // §3.1.2: "a Starlink client often has 10+ satellites in view". With the
  // top-K cap at 10 the mean should be close to the cap at these latitudes.
  EXPECT_GT(schedule_->mean_candidates(), 5.0);
}

TEST_F(SchedulerTest, FirstContactStableWithinEpoch) {
  const auto a = schedule_->first_contact(util::EpochIdx{5}, util::CityId{2}, 7);
  const auto b = schedule_->first_contact(util::EpochIdx{5}, util::CityId{2}, 7);
  EXPECT_EQ(a.sat, b.sat);
}

TEST_F(SchedulerTest, FirstContactReshufflesAcrossEpochs) {
  // The Starlink scheduler reconfigures every 15 s; over many epochs one
  // user must not stay pinned to a single satellite.
  std::set<int> sats;
  for (std::size_t e = 0; e < schedule_->epochs(); ++e) {
    sats.insert(schedule_->first_contact(util::EpochIdx{e}, util::CityId{0}, 7).sat.value());
  }
  EXPECT_GT(sats.size(), 5u);
}

TEST_F(SchedulerTest, UsersSpreadOverCandidates) {
  // Within one epoch, different users must land on different satellites
  // (the multi-satellite redundancy challenge, §3.1.2).
  std::set<int> sats;
  for (std::uint64_t user = 0; user < 64; ++user) {
    sats.insert(schedule_->first_contact(util::EpochIdx{10}, util::CityId{4}, user).sat.value());
  }
  EXPECT_GT(sats.size(), 3u);
}

TEST(Scheduler, EmptyCellForUncoveredCity) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const std::vector<util::City> arctic = {
      {"Alert", {82.5, -62.3}, 1.0, "en"}};
  const LinkSchedule schedule(shell, arctic, util::Seconds{60.0});
  EXPECT_TRUE(schedule.candidates(util::EpochIdx{0}, util::CityId{0}).empty());
  EXPECT_EQ(schedule.first_contact(util::EpochIdx{0}, util::CityId{0}, 1).sat.value(), -1);
}

TEST(Scheduler, CustomParams) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  SchedulerParams params;
  params.epoch = util::Seconds{60.0};
  params.candidates_per_cell = 2;
  const LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{600.0}, params);
  EXPECT_EQ(schedule.epochs(), 10u);
  for (std::size_t c = 0; c < util::paper_cities().size(); ++c) {
    EXPECT_LE(schedule.candidates(util::EpochIdx{0}, util::CityId{static_cast<std::uint32_t>(c)}).size(), 2u);
  }
}

}  // namespace
}  // namespace starcdn::sched
