#include "net/link.h"

#include <gtest/gtest.h>

#include "util/geo.h"

namespace starcdn::net {
namespace {

TEST(Link, NamesAndBandwidths) {
  EXPECT_STREQ(to_string(LinkType::kGsl), "GSL");
  EXPECT_DOUBLE_EQ(util::to_gbps(nominal_bandwidth(LinkType::kIntraOrbitIsl)), 100.0);
  EXPECT_DOUBLE_EQ(util::to_gbps(nominal_bandwidth(LinkType::kInterOrbitIsl)), 100.0);
  EXPECT_DOUBLE_EQ(util::to_gbps(nominal_bandwidth(LinkType::kGsl)), 20.0);
}

TEST(Link, MeasuredDelaysMatchTable1) {
  // Table 1: intra-orbit ISL avg 8.03 ms; inter-orbit avg 2.15 ms; GSL avg
  // 2.94 ms min 1.82 ms. Our geometric model should land within ~15%.
  const orbit::Constellation shell{orbit::WalkerParams{}};
  std::vector<util::GeoCoord> grounds;
  for (const auto& c : util::paper_cities()) grounds.push_back(c.coord);
  const auto stats =
      measure_link_delays(shell, grounds, util::Seconds{600.0}, util::Seconds{60.0});  // 10 min @ 1/min

  EXPECT_NEAR(stats.intra_orbit_isl.mean(), 8.03, 0.4);
  EXPECT_NEAR(stats.inter_orbit_isl.mean(), 2.15, 0.7);
  EXPECT_GT(stats.gsl.min(), 1.7);
  EXPECT_LT(stats.gsl.mean(), 4.0);
  EXPECT_GT(stats.gsl.count(), 0u);
}

TEST(Link, IntraOrbitDelayIsConstant) {
  // Slots in one plane are rigidly spaced; the delay has ~zero variance.
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const auto stats = measure_link_delays(shell, {}, util::Seconds{300.0}, util::Seconds{60.0});
  EXPECT_LT(stats.intra_orbit_isl.stddev(), 0.01);
}

TEST(Link, InterOrbitDelayVariesWithLatitude) {
  // Adjacent planes converge toward the inclination extremes, so the
  // inter-orbit delay has visible spread (Table 1 std 0.49 ms).
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const auto stats = measure_link_delays(shell, {}, util::Seconds{300.0}, util::Seconds{60.0});
  EXPECT_GT(stats.inter_orbit_isl.stddev(), 0.1);
  EXPECT_LT(stats.inter_orbit_isl.stddev(), 1.5);
}

TEST(Link, InactiveSatellitesNotSampled) {
  orbit::Constellation shell{orbit::WalkerParams{}};
  for (int i = 0; i < shell.size(); ++i) {
    shell.set_active(shell.id_of(util::SatId{i}), i == 0);  // only one satellite alive
  }
  const auto stats = measure_link_delays(shell, {}, util::Seconds{60.0}, util::Seconds{60.0});
  EXPECT_EQ(stats.intra_orbit_isl.count(), 0u);
  EXPECT_EQ(stats.inter_orbit_isl.count(), 0u);
}

}  // namespace
}  // namespace starcdn::net
