#include "orbit/visibility.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "orbit/propagator.h"
#include "util/geo.h"

namespace starcdn::orbit {
namespace {

TEST(Visibility, OverheadSatelliteIsAtNinetyDegrees) {
  const Vec3 ground = geodetic_to_ecef({10.0, 20.0});
  const Vec3 sat = geodetic_to_ecef({10.0, 20.0}, util::Km{550.0});
  EXPECT_NEAR(elevation(ground, sat).value(), 90.0, 1e-6);
}

TEST(Visibility, HorizonSatelliteIsNearZero) {
  // A satellite whose ground point is at the geometric horizon distance for
  // 550 km altitude (~26 degrees of arc) sits near 0 elevation.
  const Vec3 ground = geodetic_to_ecef({0.0, 0.0});
  const Vec3 sat = geodetic_to_ecef({0.0, 23.9}, util::Km{550.0});
  EXPECT_NEAR(elevation(ground, sat).value(), 0.0, 1.5);
}

TEST(Visibility, AntipodalSatelliteIsBelowHorizon) {
  const Vec3 ground = geodetic_to_ecef({0.0, 0.0});
  const Vec3 sat = geodetic_to_ecef({0.0, 180.0}, util::Km{550.0});
  EXPECT_LT(elevation(ground, sat).value(), -80.0);
}

TEST(Visibility, SlantRangeOverhead) {
  const Vec3 ground = geodetic_to_ecef({45.0, 45.0});
  const Vec3 sat = geodetic_to_ecef({45.0, 45.0}, util::Km{550.0});
  EXPECT_NEAR(slant_range(ground, sat).value(), 550.0, 1e-6);
}

class VisibilityLatitudeTest : public ::testing::TestWithParam<double> {};

TEST_P(VisibilityLatitudeTest, MidLatitudeUsersSeeManySatellites) {
  // The paper relies on Starlink users seeing 10+ satellites (§3.1.2);
  // at the shell's inclination band the full 72x18 shell provides that.
  const Constellation shell{WalkerParams{}};
  const VisibilityOracle oracle(util::Degrees{25.0});
  const util::GeoCoord user{GetParam(), -74.0};
  const auto pos = shell.all_positions_ecef(util::Seconds{0.0});
  const auto visible = oracle.visible(user, shell, pos);
  EXPECT_GE(visible.size(), 3u) << "latitude " << GetParam();
  // Sorted by elevation descending.
  for (std::size_t i = 1; i < visible.size(); ++i) {
    EXPECT_LE(visible[i].elevation.value(), visible[i - 1].elevation.value());
  }
  for (const auto& v : visible) {
    EXPECT_GE(v.elevation.value(), 25.0);
    EXPECT_GT(v.range.value(), 540.0);
    EXPECT_LT(v.range.value(), 1'500.0);  // 25-degree mask bounds the range
  }
}

INSTANTIATE_TEST_SUITE_P(Latitudes, VisibilityLatitudeTest,
                         ::testing::Values(0.0, 19.4, 33.7, 41.0, 48.2, 51.5));

TEST(Visibility, PolarUserSeesNothingFromInclinedShell) {
  // A 53-degree shell never covers the poles at a 25-degree mask.
  const Constellation shell{WalkerParams{}};
  const VisibilityOracle oracle(util::Degrees{25.0});
  const auto pos = shell.all_positions_ecef(util::Seconds{0.0});
  EXPECT_TRUE(oracle.visible({89.0, 0.0}, shell, pos).empty());
}

TEST(Visibility, InactiveSatellitesExcluded) {
  Constellation shell{WalkerParams{}};
  const VisibilityOracle oracle(util::Degrees{25.0});
  const util::GeoCoord user{40.7, -74.0};
  const auto pos = shell.all_positions_ecef(util::Seconds{0.0});
  const auto before = oracle.visible(user, shell, pos);
  ASSERT_FALSE(before.empty());
  shell.set_active(shell.id_of(before.front().sat), false);
  const auto after = oracle.visible(user, shell, pos);
  for (const auto& v : after) {
    EXPECT_NE(v.sat, before.front().sat);
  }
}

TEST(Visibility, HorizonSlantRangeMatchesClosedForm) {
  // 550 km shell, spherical ground, 25-degree mask:
  //   sqrt(6921^2 - (6371 cos 25)^2) - 6371 sin 25 = 1123.3 km.
  EXPECT_NEAR(horizon_slant_range(util::Km{6921.0}, util::Km{6371.0},
                                  util::Degrees{25.0})
                  .value(),
              1123.3, 1.0);
  // At a 0-degree mask the bound degenerates to the geometric horizon
  // distance sqrt(r^2 - R^2).
  const double r = 6921.0, R = 6371.0;
  EXPECT_NEAR(horizon_slant_range(util::Km{r}, util::Km{R},
                                  util::Degrees{0.0})
                  .value(),
              std::sqrt(r * r - R * R), 1e-9);
  // An orbit entirely below the mask cone can never be visible.
  EXPECT_EQ(horizon_slant_range(util::Km{5000.0}, util::Km{6371.0},
                                util::Degrees{25.0})
                .value(),
            0.0);
}

TEST(Visibility, HighAltitudeShellIsNotCulledByCheapReject) {
  // Regression for the old hardcoded 3,500 km cheap-reject radius: a
  // satellite on a 2,500 km shell sitting at 30 degrees elevation and
  // 3,600 km slant range is genuinely visible (the derived bound for that
  // shell is ~3,761 km) but the old constant would have culled it.
  const Constellation shell{WalkerParams{
      .planes = 1, .slots_per_plane = 1, .altitude = util::Km{2500.0}}};
  const Vec3 g = geodetic_to_ecef({0.0, 0.0});
  const Vec3 up = g.normalized();
  const Vec3 tangent{0.0, 0.0, 1.0};  // perpendicular to `up` at the equator
  const double el = 30.0 * std::numbers::pi / 180.0;
  const double slant = 3600.0;
  const Vec3 sat = g + (up * std::sin(el) + tangent * std::cos(el)) * slant;
  ASSERT_NEAR(elevation(g, sat).value(), 30.0, 1e-6);

  const VisibilityOracle oracle(util::Degrees{25.0});
  const auto seen = oracle.visible_from_ecef(g, shell, {sat});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_NEAR(seen[0].range.value(), slant, 1e-6);
  EXPECT_NEAR(seen[0].elevation.value(), 30.0, 1e-6);
}

TEST(Visibility, HigherMaskSeesFewer) {
  const Constellation shell{WalkerParams{}};
  const auto pos = shell.all_positions_ecef(util::Seconds{0.0});
  const util::GeoCoord user{40.7, -74.0};
  const auto lo = VisibilityOracle(util::Degrees{25.0}).visible(user, shell, pos);
  const auto hi = VisibilityOracle(util::Degrees{50.0}).visible(user, shell, pos);
  EXPECT_LE(hi.size(), lo.size());
}

}  // namespace
}  // namespace starcdn::orbit
