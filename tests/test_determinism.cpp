// The parallel engine's contract: simulation results are a function of the
// configuration and seed only — never of the thread count. These tests run
// the same scenario with STARCDN_THREADS-equivalent overrides of 1 and 8
// and require bitwise-identical outputs.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "sched/scheduler.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/parallel.h"

namespace starcdn {
namespace {

struct ThreadOverrideGuard {
  explicit ThreadOverrideGuard(int n) { util::set_parallel_threads(n); }
  ~ThreadOverrideGuard() { util::set_parallel_threads(0); }
};

TEST(Determinism, LinkScheduleIdenticalAcrossThreadCounts) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const double horizon_s = 30 * util::kMinute.value();

  auto build = [&](int threads) {
    ThreadOverrideGuard guard(threads);
    return sched::LinkSchedule(shell, util::paper_cities(), util::Seconds{horizon_s});
  };
  const sched::LinkSchedule serial = build(1);
  const sched::LinkSchedule parallel = build(8);

  ASSERT_EQ(serial.epochs(), parallel.epochs());
  for (std::size_t e = 0; e < serial.epochs(); ++e) {
    for (std::size_t c = 0; c < util::paper_cities().size(); ++c) {
      const auto& a =
          serial.candidates(util::EpochIdx{e},
                            util::CityId{static_cast<std::uint32_t>(c)});
      const auto& b =
          parallel.candidates(util::EpochIdx{e},
                              util::CityId{static_cast<std::uint32_t>(c)});
      ASSERT_EQ(a.size(), b.size()) << "epoch " << e << " city " << c;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].sat, b[i].sat)
            << "epoch " << e << " city " << c << " rank " << i;
        // Bitwise, not approximate: identical code on identical inputs.
        ASSERT_EQ(a[i].gsl_one_way_ms, b[i].gsl_one_way_ms)
            << "epoch " << e << " city " << c << " rank " << i;
      }
    }
  }
  EXPECT_DOUBLE_EQ(serial.mean_candidates(), parallel.mean_candidates());
}

void expect_identical(const core::VariantMetrics& a,
                      const core::VariantMetrics& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.routed_hits, b.routed_hits);
  EXPECT_EQ(a.relay_west_hits, b.relay_west_hits);
  EXPECT_EQ(a.relay_east_hits, b.relay_east_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.unreachable, b.unreachable);
  EXPECT_EQ(a.transient_misses, b.transient_misses);
  EXPECT_EQ(a.bytes_requested, b.bytes_requested);
  EXPECT_EQ(a.bytes_hit, b.bytes_hit);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.isl_bytes, b.isl_bytes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_EQ(a.relay.west_only_requests, b.relay.west_only_requests);
  EXPECT_EQ(a.relay.east_only_requests, b.relay.east_only_requests);
  EXPECT_EQ(a.relay.both_requests, b.relay.both_requests);
  ASSERT_EQ(a.latency_ms.count(), b.latency_ms.count());
  // Latency samples come from each variant's private RNG stream; they must
  // not shift when other variants run on other threads.
  EXPECT_EQ(a.latency_ms.median(), b.latency_ms.median());
  EXPECT_EQ(a.latency_ms.quantile(0.99), b.latency_ms.quantile(0.99));
  ASSERT_EQ(a.sat_requests.size(), b.sat_requests.size());
  for (std::size_t i = 0; i < a.sat_requests.size(); ++i) {
    ASSERT_EQ(a.sat_requests[i], b.sat_requests[i]) << "satellite " << i;
    ASSERT_EQ(a.sat_hits[i], b.sat_hits[i]) << "satellite " << i;
  }
}

TEST(Determinism, SimulatorIdenticalAcrossThreadCounts) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 10'000;
  p.requests_per_weight = 4'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(workload.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});

  const std::vector<core::Variant> variants = {
      core::Variant::kStatic, core::Variant::kStarCdn,
      core::Variant::kHashOnly, core::Variant::kRelayOnly,
      core::Variant::kVanillaLru, core::Variant::kPrefetch};

  auto simulate = [&](int threads) {
    ThreadOverrideGuard guard(threads);
    core::SimConfig cfg;
    cfg.cache_capacity = util::mib(256);
    cfg.buckets = 4;
    cfg.track_per_satellite = true;
    cfg.transient_down_prob = 0.02;  // exercise the per-variant outage model
    auto sim = std::make_unique<core::Simulator>(shell, schedule, cfg);
    for (const auto v : variants) sim->add_variant(v);
    sim->run(requests);
    return sim;
  };

  const auto serial = simulate(1);
  const auto parallel = simulate(8);
  for (const auto v : variants) {
    SCOPED_TRACE(core::to_string(v));
    expect_identical(serial->metrics(v), parallel->metrics(v));
  }
}

TEST(Determinism, StreamedChunksMatchWholeRunInParallel) {
  // Streaming a trace in chunks under the parallel engine must agree with
  // one whole-trace run: per-variant request counters keep the user
  // rotation aligned across run() calls.
  ThreadOverrideGuard guard(8);
  const orbit::Constellation shell{orbit::WalkerParams{}};
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 5'000;
  p.requests_per_weight = 2'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel workload(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(workload.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});

  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(128);
  core::Simulator whole(shell, schedule, cfg);
  whole.add_variant(core::Variant::kStarCdn);
  whole.run(requests);

  core::Simulator chunked(shell, schedule, cfg);
  chunked.add_variant(core::Variant::kStarCdn);
  const std::size_t third = requests.size() / 3;
  chunked.run({requests.begin(), requests.begin() + third});
  chunked.run({requests.begin() + third, requests.begin() + 2 * third});
  chunked.run({requests.begin() + 2 * third, requests.end()});

  const auto& a = whole.metrics(core::Variant::kStarCdn);
  const auto& b = chunked.metrics(core::Variant::kStarCdn);
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.isl_bytes, b.isl_bytes);
}

TEST(Determinism, KnockOutClampTerminates) {
  // Satellite-task regression: over-asking must clamp, not spin forever.
  orbit::Constellation shell{orbit::WalkerParams{}};
  util::Rng rng(3);
  shell.knock_out_random(0.9, rng);
  shell.knock_out_random(0.9, rng);  // second call exceeds remaining actives
  EXPECT_EQ(shell.active_count(), 0);

  orbit::Constellation small{orbit::WalkerParams{}};
  util::Rng rng2(4);
  small.knock_out_random(2.0, rng2);  // fraction > 1 clamps to everything
  EXPECT_EQ(small.active_count(), 0);
}

}  // namespace
}  // namespace starcdn
