#include "core/bucket_mapper.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace starcdn::core {
namespace {

orbit::WalkerParams shell_params() {
  orbit::WalkerParams p;
  p.planes = 12;
  p.slots_per_plane = 6;
  return p;
}

TEST(BucketMapper, RejectsNonSquareBucketCounts) {
  const orbit::Constellation c{shell_params()};
  EXPECT_THROW(BucketMapper(c, 5), std::invalid_argument);
  EXPECT_THROW(BucketMapper(c, 0), std::invalid_argument);
  EXPECT_THROW(BucketMapper(c, -4), std::invalid_argument);
  EXPECT_NO_THROW(BucketMapper(c, 1));
  EXPECT_NO_THROW(BucketMapper(c, 4));
  EXPECT_NO_THROW(BucketMapper(c, 9));
}

TEST(BucketMapper, ObjectHashingUniform) {
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  int counts[4] = {};
  for (cache::ObjectId id = 0; id < 40'000; ++id) {
    const int b = m.bucket_of_object(id).value();
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ++counts[b];
  }
  for (const int n : counts) EXPECT_NEAR(n, 10'000, 500);
}

TEST(BucketMapper, SlotTilingPattern) {
  // Fig. 5a: each sqrt(L) x sqrt(L) tile holds all L distinct buckets.
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  for (int p = 0; p < c.planes(); p += 2) {
    for (int s = 0; s < c.slots_per_plane(); s += 2) {
      std::set<int> tile;
      for (int dp = 0; dp < 2; ++dp) {
        for (int ds = 0; ds < 2; ++ds) {
          tile.insert(m.bucket_of_slot({p + dp, s + ds}).value());
        }
      }
      EXPECT_EQ(tile.size(), 4u) << "tile at " << p << "," << s;
    }
  }
}

class BucketHopBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketHopBoundTest, EveryBucketWithinWorstCaseHops) {
  // §3.2: any bucket reachable within 2*floor(sqrt(L)/2) hops.
  const int L = GetParam();
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, L);
  const int bound = m.worst_case_hops();
  for (int p = 0; p < c.planes(); ++p) {
    for (int s = 0; s < c.slots_per_plane(); ++s) {
      const orbit::SatelliteId from{p, s};
      for (int b = 0; b < L; ++b) {
        const auto owner = m.nominal_owner(from, util::BucketId{b});
        EXPECT_EQ(m.bucket_of_slot(owner).value(), b)
            << "L=" << L << " from=" << p << "," << s << " bucket=" << b;
        EXPECT_LE(c.grid_hops(from, owner), bound);
      }
    }
  }
}

// L=4 and L=9 divide the 12x6 grid evenly (the Starlink-compatible values
// the paper uses, §3.2).
INSTANTIATE_TEST_SUITE_P(SquareCounts, BucketHopBoundTest,
                         ::testing::Values(1, 4, 9));

TEST(BucketMapper, WorstCaseHopsFormula) {
  const orbit::Constellation c{shell_params()};
  EXPECT_EQ(BucketMapper(c, 1).worst_case_hops(), 0);
  EXPECT_EQ(BucketMapper(c, 4).worst_case_hops(), 2);
  EXPECT_EQ(BucketMapper(c, 9).worst_case_hops(), 2);   // same as L=4 (§5.3)
  EXPECT_EQ(BucketMapper(c, 16).worst_case_hops(), 4);
  EXPECT_EQ(BucketMapper(c, 25).worst_case_hops(), 4);
}

TEST(BucketMapper, OwnerIsNominalWhenHealthy) {
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  const auto owner = m.owner({3, 3}, util::BucketId{2});
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, m.nominal_owner({3, 3}, util::BucketId{2}));
}

TEST(BucketMapper, RemapPicksNearestActive) {
  orbit::Constellation c{shell_params()};
  c.set_active({2, 2}, false);
  const BucketMapper m(c, 4);
  const auto target = m.remap({2, 2});
  ASSERT_TRUE(target.has_value());
  EXPECT_TRUE(c.active(c.index_of(*target)));
  EXPECT_EQ(c.grid_hops({2, 2}, *target), 1);  // a direct neighbour is alive
}

TEST(BucketMapper, RemapIsDeterministicAcrossRequesters) {
  // §3.4: all requesters must agree on the substitute owner.
  orbit::Constellation c{shell_params()};
  util::Rng rng(3);
  c.knock_out_random(0.2, rng);
  const BucketMapper m(c, 9);
  for (int i = 0; i < c.size(); ++i) {
    const auto a = m.remap(c.id_of(util::SatId{i}));
    const auto b = m.remap(c.id_of(util::SatId{i}));
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(BucketMapper, RemapOfActiveSatelliteIsIdentity) {
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  for (int i = 0; i < c.size(); ++i) {
    const auto t = m.remap(c.id_of(util::SatId{i}));
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, c.id_of(util::SatId{i}));
  }
}

TEST(BucketMapper, AllDownYieldsNullopt) {
  orbit::Constellation c{shell_params()};
  for (int i = 0; i < c.size(); ++i) c.set_active(c.id_of(util::SatId{i}), false);
  const BucketMapper m(c, 4);
  EXPECT_FALSE(m.remap({0, 0}).has_value());
  EXPECT_FALSE(m.owner({0, 0}, util::BucketId{1}).has_value());
}

TEST(BucketMapper, ReplicasAreSameBucketAndDistinct) {
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  const orbit::SatelliteId owner{4, 2};
  const auto west = m.west_replica(owner);
  const auto east = m.east_replica(owner);
  ASSERT_TRUE(west && east);
  // Replicas sit sqrt(L) planes away: same bucket column (§3.3).
  EXPECT_EQ(m.bucket_of_slot(*west), m.bucket_of_slot(owner));
  EXPECT_EQ(m.bucket_of_slot(*east), m.bucket_of_slot(owner));
  EXPECT_FALSE(*west == owner);
  EXPECT_FALSE(*east == owner);
  // "West" = trailing (+RAAN) plane, "east" = leading (-RAAN) plane.
  EXPECT_EQ(west->plane.value(), 6);
  EXPECT_EQ(east->plane.value(), 2);
}

TEST(BucketMapper, ReplicaRemapsAroundFailure) {
  orbit::Constellation c{shell_params()};
  c.set_active({6, 2}, false);  // the nominal west replica of (4,2)
  const BucketMapper m(c, 4);
  const auto west = m.west_replica({4, 2});
  ASSERT_TRUE(west.has_value());
  EXPECT_TRUE(c.active(c.index_of(*west)));
  EXPECT_FALSE(*west == (orbit::SatelliteId{4, 2}));
}

TEST(BucketMapper, ReplicaNeverReturnsOwnerItself) {
  // Kill everything except one satellite: replicas must be nullopt, not
  // the owner.
  orbit::Constellation c{shell_params()};
  for (int i = 1; i < c.size(); ++i) c.set_active(c.id_of(util::SatId{i}), false);
  const BucketMapper m(c, 4);
  EXPECT_FALSE(m.west_replica({0, 0}).has_value());
  EXPECT_FALSE(m.east_replica({0, 0}).has_value());
}

TEST(BucketMapper, HopSplitToroidal) {
  const orbit::Constellation c{shell_params()};
  const BucketMapper m(c, 4);
  const auto [inter, intra] = m.hop_split({0, 0}, {11, 5});
  EXPECT_EQ(inter, 1);  // wraps
  EXPECT_EQ(intra, 1);  // wraps
  const auto [i2, a2] = m.hop_split({0, 0}, {6, 3});
  EXPECT_EQ(i2, 6);
  EXPECT_EQ(a2, 3);
}

}  // namespace
}  // namespace starcdn::core
