// Compile-time and value tests for the Strong<> unit/ID layer.
//
// The static_asserts are the real teeth: each `!std::is_*_v` line is a
// negative-compilation family — if someone adds an implicit conversion or
// cross-family operator to strong.h, this TU stops compiling before any
// test runs.
#include "util/strong.h"

#include <gtest/gtest.h>

#include <concepts>
#include <type_traits>
#include <unordered_map>

#include "util/ids.h"
#include "util/units.h"

namespace starcdn::util {
namespace {

// --- Negative-compilation families ------------------------------------------
// Family 1: angle units never interconvert implicitly (deg-for-rad swap was
// the motivating bug class; only to_radians/to_degrees cross).
static_assert(!std::is_convertible_v<Degrees, Radians>);
static_assert(!std::is_convertible_v<Radians, Degrees>);
static_assert(!std::is_constructible_v<Radians, Degrees>);
static_assert(!std::is_constructible_v<Degrees, Radians>);

// Family 2: id families never stand in for each other (a satellite index
// must not subscript a city table).
static_assert(!std::is_convertible_v<SatId, CityId>);
static_assert(!std::is_convertible_v<CityId, SatId>);
static_assert(!std::is_constructible_v<CityId, SatId>);
static_assert(!std::is_constructible_v<BucketId, EpochIdx>);
static_assert(!std::is_constructible_v<PlaneIdx, SlotIdx>);

// Family 3: distance and time never cross (km-for-ms is the latency-table
// corruption scenario; only propagation_delay crosses).
static_assert(!std::is_convertible_v<Km, Millis>);
static_assert(!std::is_convertible_v<Millis, Km>);
static_assert(!std::is_constructible_v<Millis, Km>);
static_assert(!std::is_constructible_v<Seconds, Km>);

// Raw scalars never convert in either direction without naming the type or
// calling .value().
static_assert(!std::is_convertible_v<double, Km>);
static_assert(!std::is_convertible_v<Km, double>);
static_assert(!std::is_convertible_v<int, SatId>);
static_assert(!std::is_convertible_v<SatId, int>);

// Cross-unit arithmetic does not exist: Km + Millis, Degrees + Radians and
// friends must fail overload resolution entirely.
template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
template <class A, class B>
concept Subtractable = requires(A a, B b) { a - b; };
static_assert(!Addable<Km, Millis>);
static_assert(!Addable<Degrees, Radians>);
static_assert(!Subtractable<Seconds, Millis>);
static_assert(Addable<Km, Km>);
static_assert(Subtractable<Seconds, Seconds>);

// Ids are ordinals, not quantities: no +, no scalar *, but ++ works.
static_assert(!Addable<SatId, SatId>);
template <class T>
concept ScalarScalable = requires(T t) { t * 2.0; };
static_assert(ScalarScalable<Km>);
static_assert(!ScalarScalable<SatId>);
template <class T>
concept PreIncrementable = requires(T t) { ++t; };
static_assert(PreIncrementable<EpochIdx>);
static_assert(!PreIncrementable<Km>);  // quantities don't "step"

// Zero-overhead claim: same size and triviality as the raw representation.
static_assert(sizeof(Km) == sizeof(double));
static_assert(sizeof(SatId) == sizeof(std::int32_t));
static_assert(std::is_trivially_copyable_v<Km>);
static_assert(std::is_trivially_copyable_v<EpochIdx>);

// --- Round-trip value tests for every units.h conversion --------------------

TEST(StrongUnits, DegreesRadiansRoundTrip) {
  for (const double d : {-180.0, -90.0, 0.0, 23.4, 90.0, 180.0, 360.0}) {
    const Radians r = to_radians(Degrees{d});
    EXPECT_NEAR(to_degrees(r).value(), d, 1e-12) << "deg " << d;
  }
  EXPECT_NEAR(to_radians(Degrees{180.0}).value(), kPi, 1e-15);
  EXPECT_NEAR(to_degrees(Radians{kPi / 2.0}).value(), 90.0, 1e-12);
}

TEST(StrongUnits, MetersKmRoundTrip) {
  for (const double km : {0.0, 0.001, 1.0, 550.0, 6371.0, 40'000.0}) {
    const Meters m = to_meters(Km{km});
    EXPECT_DOUBLE_EQ(m.value(), km * 1000.0);
    EXPECT_DOUBLE_EQ(to_km(m).value(), km);
  }
}

TEST(StrongUnits, MillisSecondsRoundTrip) {
  for (const double s : {0.0, 0.015, 1.0, 60.0, 86'400.0}) {
    const Millis ms = to_millis(Seconds{s});
    EXPECT_DOUBLE_EQ(ms.value(), s * 1000.0);
    EXPECT_DOUBLE_EQ(to_seconds(ms).value(), s);
  }
}

TEST(StrongUnits, PropagationDelayMatchesSpeedOfLight) {
  // 550 km straight up: 550 / 299792.458 * 1000 ms ~ 1.834 ms.
  EXPECT_NEAR(propagation_delay(Km{550.0}).value(), 1.8346, 1e-3);
  EXPECT_DOUBLE_EQ(propagation_delay(Km{0.0}).value(), 0.0);
  // Linearity: delay scales with distance.
  EXPECT_DOUBLE_EQ(propagation_delay(Km{2000.0}).value(),
                   Km{2000.0}.value() / kSpeedOfLightKmPerS * 1000.0);
}

TEST(StrongUnits, GbpsRoundTrip) {
  for (const double g : {0.0, 0.1, 4.0, 20.0, 100.0}) {
    const BytesPerSec r = gbps(g);
    EXPECT_DOUBLE_EQ(to_gbps(r), g) << "gbps " << g;
  }
  EXPECT_DOUBLE_EQ(gbps(8.0).value(), 1e9);  // 8 Gbit/s == 1 GB/s
}

TEST(StrongUnits, TimeConstantsConsistent) {
  EXPECT_DOUBLE_EQ((kHour / kMinute), 60.0);
  EXPECT_DOUBLE_EQ((kDay / kHour), 24.0);
  EXPECT_DOUBLE_EQ(to_millis(kMinute).value(), 60'000.0);
}

// --- Behavioral checks on the Strong<> operations themselves ----------------

TEST(StrongUnits, QuantityArithmetic) {
  const Km a{100.0}, b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((-a).value(), -100.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);  // ratio is dimensionless
  Km c{1.0};
  c += a;
  c -= b;
  EXPECT_DOUBLE_EQ(c.value(), 51.0);
}

TEST(StrongIds, OrderingAndStepping) {
  EpochIdx e{4};
  EXPECT_EQ((++e).value(), 5u);
  EXPECT_EQ((e++).value(), 5u);
  EXPECT_EQ(e.value(), 6u);
  EXPECT_EQ((--e).value(), 5u);
  EXPECT_LT(SatId{3}, SatId{7});
  EXPECT_EQ(kNoSat.value(), -1);
  EXPECT_TRUE(SatId{-1} == kNoSat);
}

TEST(StrongIds, AsIndexAndHashing) {
  EXPECT_EQ(as_index(CityId{12}), 12u);
  EXPECT_EQ(as_index(SatId{0}), 0u);
  // std::hash forwards to the rep's hash: identical bucket placement.
  EXPECT_EQ(std::hash<SatId>{}(SatId{42}), std::hash<std::int32_t>{}(42));
  std::unordered_map<BucketId, int> m;
  m[BucketId{3}] = 30;
  m[BucketId{1}] = 10;
  EXPECT_EQ(m.at(BucketId{3}), 30);
  EXPECT_EQ(m.size(), 2u);
}

}  // namespace
}  // namespace starcdn::util
