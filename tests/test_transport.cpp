#include "net/transport.h"

#include <gtest/gtest.h>

#include <thread>

namespace starcdn::net {
namespace {

Message make_msg(std::uint64_t id) {
  Message m;
  m.type = MessageType::kRequest;
  m.request_id = id;
  m.object_id = id * 7;
  m.payload = "payload-" + std::to_string(id);
  return m;
}

TEST(InprocChannel, PingPong) {
  auto [a, b] = make_inproc_pair();
  a->send(make_msg(1));
  const auto got = b->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, make_msg(1));
  b->send(make_msg(2));
  const auto back = a->recv();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->request_id, 2u);
}

TEST(InprocChannel, TryRecvNonBlocking) {
  auto [a, b] = make_inproc_pair();
  EXPECT_FALSE(b->try_recv().has_value());
  a->send(make_msg(3));
  const auto got = b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->request_id, 3u);
}

TEST(InprocChannel, OrderPreserved) {
  auto [a, b] = make_inproc_pair();
  for (std::uint64_t i = 0; i < 100; ++i) a->send(make_msg(i));
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto got = b->recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->request_id, i);
  }
}

TEST(InprocChannel, CloseUnblocksReceiver) {
  auto [a, b] = make_inproc_pair();
  std::thread t([&] {
    const auto got = b->recv();
    EXPECT_FALSE(got.has_value());
  });
  a->close();
  t.join();
}

TEST(InprocChannel, SendOnClosedThrows) {
  auto [a, b] = make_inproc_pair();
  b->close();
  EXPECT_THROW(a->send(make_msg(1)), std::runtime_error);
}

TEST(TcpChannel, LoopbackEcho) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    auto ch = listener.accept();
    for (;;) {
      auto m = ch->recv();
      if (!m) return;
      m->flags |= kFlagHit;  // "echo with a hit flag"
      ch->send(*m);
      if (m->type == MessageType::kControl) return;
    }
  });

  auto client = TcpChannel::connect("127.0.0.1", listener.port());
  for (std::uint64_t i = 0; i < 50; ++i) {
    client->send(make_msg(i));
    const auto echoed = client->recv();
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->request_id, i);
    EXPECT_TRUE(echoed->flags & kFlagHit);
  }
  Message bye;
  bye.type = MessageType::kControl;
  client->send(bye);
  EXPECT_TRUE(client->recv().has_value());
  server.join();
}

TEST(TcpChannel, LargePayloadSurvives) {
  TcpListener listener(0);
  std::thread server([&] {
    auto ch = listener.accept();
    const auto m = ch->recv();
    ASSERT_TRUE(m.has_value());
    ch->send(*m);
  });
  auto client = TcpChannel::connect("127.0.0.1", listener.port());
  Message big = make_msg(9);
  big.payload.assign(2 * 1024 * 1024, 'z');  // forces many TCP segments
  client->send(big);
  const auto back = client->recv();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload.size(), big.payload.size());
  EXPECT_EQ(*back, big);
  server.join();
}

TEST(TcpChannel, PeerCloseYieldsNullopt) {
  TcpListener listener(0);
  std::thread server([&] { auto ch = listener.accept(); /* drop */ });
  auto client = TcpChannel::connect("127.0.0.1", listener.port());
  server.join();
  EXPECT_FALSE(client->recv().has_value());
  EXPECT_TRUE(client->closed());
}

TEST(TcpChannel, ConnectRefusedThrows) {
  // Port 1 is essentially never listening on loopback.
  EXPECT_THROW((void)TcpChannel::connect("127.0.0.1", 1), std::runtime_error);
}

TEST(TcpChannel, BadAddressThrows) {
  EXPECT_THROW((void)TcpChannel::connect("not-an-ip", 80), std::runtime_error);
}

}  // namespace
}  // namespace starcdn::net
