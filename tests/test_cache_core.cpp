// Unit tests for the shared cache-core layer: the flat hash index
// (open addressing, backward-shift deletion) and the entry slab with its
// intrusive lists. Policy-level behaviour is covered by the differential
// harness in test_cache_policies.cpp; these tests pin down the primitives.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/detail/flat_index.h"
#include "cache/detail/slab.h"
#include "util/rng.h"

namespace starcdn::cache::detail {
namespace {

TEST(FlatIndex, EmptyIndexFindsNothing) {
  FlatIndex idx;
  EXPECT_EQ(idx.find(0), kNullSlot);
  EXPECT_EQ(idx.find(42), kNullSlot);
  EXPECT_FALSE(idx.contains(42));
  EXPECT_FALSE(idx.erase(42));
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.bucket_count(), 0u);
  idx.clear();  // clear on a never-used index is a no-op
  EXPECT_EQ(idx.size(), 0u);
}

TEST(FlatIndex, InsertFindErase) {
  FlatIndex idx;
  idx.insert(7, 3);
  EXPECT_EQ(idx.find(7), 3u);
  EXPECT_TRUE(idx.contains(7));
  EXPECT_EQ(idx.find(8), kNullSlot);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.erase(7));
  EXPECT_EQ(idx.find(7), kNullSlot);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.erase(7));
}

TEST(FlatIndex, GrowsPastAnyReserve) {
  FlatIndex idx;
  idx.reserve(8);
  const auto buckets_before = idx.bucket_count();
  for (std::uint64_t k = 0; k < 1'000; ++k) idx.insert(k, std::uint32_t(k));
  EXPECT_GT(idx.bucket_count(), buckets_before);
  for (std::uint64_t k = 0; k < 1'000; ++k) {
    ASSERT_EQ(idx.find(k), std::uint32_t(k)) << "lost key " << k;
  }
}

TEST(FlatIndex, ReserveAvoidsRehash) {
  FlatIndex idx;
  idx.reserve(1'000);
  const auto buckets = idx.bucket_count();
  for (std::uint64_t k = 0; k < 1'000; ++k) idx.insert(k, std::uint32_t(k));
  EXPECT_EQ(idx.bucket_count(), buckets);
  // Load factor stays at or under 3/4 by construction.
  EXPECT_LE(idx.size() * 4, idx.bucket_count() * 3);
}

TEST(FlatIndex, LoadFactorBoundedUnderGrowth) {
  FlatIndex idx;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    idx.insert(k * 977, std::uint32_t(k));
    ASSERT_LE(idx.size() * 4, idx.bucket_count() * 3);
    // Power-of-two bucket counts are a structural invariant.
    ASSERT_EQ(idx.bucket_count() & (idx.bucket_count() - 1), 0u);
  }
}

TEST(FlatIndex, BackwardShiftKeepsClustersReachable) {
  // Dense sequential keys produce overlapping probe clusters; deleting from
  // the middle of a cluster must never strand the keys displaced past the
  // hole. Erase every third key and verify every survivor stays findable.
  FlatIndex idx;
  constexpr std::uint64_t kN = 4'096;
  for (std::uint64_t k = 0; k < kN; ++k) idx.insert(k, std::uint32_t(k));
  for (std::uint64_t k = 0; k < kN; k += 3) EXPECT_TRUE(idx.erase(k));
  for (std::uint64_t k = 0; k < kN; ++k) {
    if (k % 3 == 0) {
      ASSERT_EQ(idx.find(k), kNullSlot) << "ghost key " << k;
    } else {
      ASSERT_EQ(idx.find(k), std::uint32_t(k)) << "stranded key " << k;
    }
  }
}

TEST(FlatIndex, ClearKeepsCapacityAndStaysUsable) {
  FlatIndex idx;
  for (std::uint64_t k = 0; k < 500; ++k) idx.insert(k, 1);
  const auto buckets = idx.bucket_count();
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.bucket_count(), buckets);  // arena is retained
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_EQ(idx.find(k), kNullSlot);
  idx.insert(3, 9);
  EXPECT_EQ(idx.find(3), 9u);
}

TEST(FlatIndex, RandomizedDifferentialAgainstUnorderedMap) {
  // 200k random insert/erase/find ops against std::unordered_map, spanning
  // growth from empty through several rehashes, with adversarially dense
  // and sparse key ranges mixed.
  FlatIndex idx;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  util::Rng rng(7);
  for (int step = 0; step < 200'000; ++step) {
    const auto op = rng.below(10);
    // Two key ranges: dense low ids and sparse scattered ids.
    const std::uint64_t key =
        rng.below(2) ? rng.below(2'000) : rng.below(1'000'000) * 2'654'435'761ull;
    if (op < 5) {
      if (!ref.contains(key)) {
        const auto slot = static_cast<std::uint32_t>(rng.below(1 << 20));
        idx.insert(key, slot);
        ref.emplace(key, slot);
      }
    } else if (op < 8) {
      ASSERT_EQ(idx.erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const auto it = ref.find(key);
      ASSERT_EQ(idx.find(key), it == ref.end() ? kNullSlot : it->second)
          << "step " << step << " key " << key;
    }
    ASSERT_EQ(idx.size(), ref.size());
  }
  // Full sweep: every reference entry must be present with the right slot.
  for (const auto& [key, slot] : ref) {
    ASSERT_EQ(idx.find(key), slot) << "final sweep key " << key;
  }
}

struct TestEntry {
  std::uint64_t id = 0;
  std::uint32_t prev = kNullSlot, next = kNullSlot;
};

TEST(Slab, AllocateGrowsReleaseRecycles) {
  Slab<TestEntry> slab;
  const auto a = slab.allocate();
  const auto b = slab.allocate();
  const auto c = slab.allocate();
  EXPECT_EQ(slab.live(), 3u);
  EXPECT_EQ(slab.arena_size(), 3u);
  slab.release(b);
  EXPECT_EQ(slab.live(), 2u);
  EXPECT_EQ(slab.arena_size(), 3u);  // memory is retained
  // LIFO recycling: the freed slot comes back before the arena grows.
  EXPECT_EQ(slab.allocate(), b);
  EXPECT_EQ(slab.arena_size(), 3u);
  slab.release(a);
  slab.release(c);
  EXPECT_EQ(slab.allocate(), c);
  EXPECT_EQ(slab.allocate(), a);
  EXPECT_EQ(slab.arena_size(), 3u);
}

TEST(Slab, SteadyStateChurnsWithoutGrowth) {
  // The zero-allocations-after-warm-up property: N live slots churned many
  // times never grow the arena past N.
  Slab<TestEntry> slab;
  std::vector<std::uint32_t> live;
  for (int i = 0; i < 64; ++i) live.push_back(slab.allocate());
  util::Rng rng(5);
  for (int step = 0; step < 10'000; ++step) {
    const auto pick = rng.below(live.size());
    slab.release(live[pick]);
    live[pick] = slab.allocate();
  }
  EXPECT_EQ(slab.arena_size(), 64u);
  EXPECT_EQ(slab.live(), 64u);
}

TEST(Slab, ClearResetsEverything) {
  Slab<TestEntry> slab;
  (void)slab.allocate();
  (void)slab.allocate();
  slab.clear();
  EXPECT_EQ(slab.live(), 0u);
  EXPECT_EQ(slab.arena_size(), 0u);
  EXPECT_EQ(slab.allocate(), 0u);  // fresh arena starts at slot 0
}

std::vector<std::uint64_t> ids_front_to_back(const Slab<TestEntry>& slab,
                                             const IntrusiveList<TestEntry>& l) {
  std::vector<std::uint64_t> out;
  for (auto s = l.head; s != kNullSlot; s = slab[s].next) {
    out.push_back(slab[s].id);
  }
  return out;
}

std::vector<std::uint64_t> ids_back_to_front(const Slab<TestEntry>& slab,
                                             const IntrusiveList<TestEntry>& l) {
  std::vector<std::uint64_t> out;
  for (auto s = l.tail; s != kNullSlot; s = slab[s].prev) {
    out.push_back(slab[s].id);
  }
  return out;
}

TEST(IntrusiveList, PushUnlinkMoveOrdering) {
  Slab<TestEntry> slab;
  IntrusiveList<TestEntry> list;
  EXPECT_TRUE(list.empty());

  std::uint32_t s[4];
  for (std::uint64_t i = 0; i < 4; ++i) {
    s[i] = slab.allocate();
    slab[s[i]].id = i;
    list.push_front(slab, s[i]);
  }
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{3, 2, 1, 0}));
  EXPECT_EQ(ids_back_to_front(slab, list),
            (std::vector<std::uint64_t>{0, 1, 2, 3}));

  list.move_front(slab, s[1]);  // middle -> front
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{1, 3, 2, 0}));
  list.move_front(slab, s[1]);  // already front: no-op
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{1, 3, 2, 0}));
  list.move_front(slab, s[0]);  // tail -> front
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{0, 1, 3, 2}));
  EXPECT_EQ(ids_back_to_front(slab, list),
            (std::vector<std::uint64_t>{2, 3, 1, 0}));

  list.unlink(slab, s[3]);  // unlink middle
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{0, 1, 2}));
  list.unlink(slab, s[2]);  // unlink tail
  list.unlink(slab, s[0]);  // unlink head
  EXPECT_EQ(ids_front_to_back(slab, list), (std::vector<std::uint64_t>{1}));
  list.unlink(slab, s[1]);  // unlink the last element
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.tail, kNullSlot);
}

TEST(IntrusiveList, InsertAfterMaintainsTail) {
  Slab<TestEntry> slab;
  IntrusiveList<TestEntry> list;
  const auto a = slab.allocate();
  slab[a].id = 0;
  list.push_front(slab, a);

  const auto b = slab.allocate();
  slab[b].id = 1;
  list.insert_after(slab, a, b);  // after tail -> becomes tail
  EXPECT_EQ(list.tail, b);
  EXPECT_EQ(ids_front_to_back(slab, list), (std::vector<std::uint64_t>{0, 1}));

  const auto c = slab.allocate();
  slab[c].id = 2;
  list.insert_after(slab, a, c);  // in the middle
  EXPECT_EQ(ids_front_to_back(slab, list),
            (std::vector<std::uint64_t>{0, 2, 1}));
  EXPECT_EQ(ids_back_to_front(slab, list),
            (std::vector<std::uint64_t>{1, 2, 0}));
  EXPECT_EQ(list.tail, b);
}

TEST(IntrusiveList, TwoListsShareOneSlab) {
  // SLRU's layout: one slab, two lists, entries spliced between them.
  Slab<TestEntry> slab;
  IntrusiveList<TestEntry> probation, protected_;
  std::uint32_t s[3];
  for (std::uint64_t i = 0; i < 3; ++i) {
    s[i] = slab.allocate();
    slab[s[i]].id = i;
    probation.push_front(slab, s[i]);
  }
  // Promote slot 1: unlink from one list, push onto the other.
  probation.unlink(slab, s[1]);
  protected_.push_front(slab, s[1]);
  EXPECT_EQ(ids_front_to_back(slab, probation),
            (std::vector<std::uint64_t>{2, 0}));
  EXPECT_EQ(ids_front_to_back(slab, protected_),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(slab.live(), 3u);
}

}  // namespace
}  // namespace starcdn::cache::detail
