#include "util/hash.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>

namespace starcdn::util {
namespace {

TEST(Hash, SplitmixIsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Hash, SplitmixIsBijectiveOnSmallRange) {
  // A bijection never collides; check a window of adjacent inputs, which is
  // exactly the object-id pattern the bucket mapper feeds it.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(Hash, SplitmixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (std::uint64_t i = 1; i < 1'000; ++i) {
    total += std::popcount(splitmix64(i) ^ splitmix64(i ^ 1ULL));
  }
  const double mean_flips = total / 999.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, CombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, BucketUniformity) {
  // splitmix64 % L must spread sequential ids evenly (the consistent
  // hashing property §3.2 relies on).
  constexpr int kBuckets = 9;
  int counts[kBuckets] = {};
  constexpr int kN = 90'000;
  for (std::uint64_t i = 0; i < kN; ++i) ++counts[splitmix64(i) % kBuckets];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.05);
  }
}

}  // namespace
}  // namespace starcdn::util
