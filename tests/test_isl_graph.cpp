#include "net/isl_graph.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace starcdn::net {
namespace {

orbit::WalkerParams small_shell() {
  orbit::WalkerParams p;
  p.planes = 8;
  p.slots_per_plane = 6;
  return p;
}

TEST(IslGraph, HealthyGridHasTwoEdgesPerSatellite) {
  // A toroidal 4-regular graph has exactly 2N undirected edges.
  const orbit::Constellation c{small_shell()};
  const IslGraph g(c);
  EXPECT_EQ(g.edges().size(), static_cast<std::size_t>(2 * c.size()));
  EXPECT_EQ(g.broken_edge_count(), 0);
}

TEST(IslGraph, NeighborsOfHealthySatellite) {
  const orbit::Constellation c{small_shell()};
  const IslGraph g(c);
  const auto nbrs = g.neighbors(c.index_of({2, 3}));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(IslGraph, SingleFailureBreaksFourIsls) {
  orbit::Constellation c{small_shell()};
  c.set_active({2, 3}, false);
  const IslGraph g(c);
  EXPECT_EQ(g.broken_edge_count(), 4);
  EXPECT_EQ(g.edges().size(), static_cast<std::size_t>(2 * c.size()) - 4);
  EXPECT_TRUE(g.neighbors(c.index_of({2, 3})).empty());
}

TEST(IslGraph, PaperScaleBrokenIslCount) {
  // §5.4: 126 of 1296 inactive slots led to 438 broken ISLs. With uniform
  // random knockouts, expected broken edges = 4*K*(active/(N-1))-ish; the
  // measured count should be in the hundreds, not thousands.
  orbit::Constellation c{orbit::WalkerParams{}};
  util::Rng rng(4);
  c.knock_out_random(0.097, rng);
  const IslGraph g(c);
  EXPECT_GT(g.broken_edge_count(), 350);
  EXPECT_LT(g.broken_edge_count(), 520);
}

TEST(IslGraph, ShortestHopsMatchesGridDistanceOnHealthyGrid) {
  const orbit::Constellation c{small_shell()};
  const IslGraph g(c);
  for (const auto& [a, b] : std::vector<std::pair<orbit::SatelliteId,
                                                  orbit::SatelliteId>>{
           {{0, 0}, {0, 0}}, {{0, 0}, {1, 0}}, {{0, 0}, {7, 5}},
           {{3, 2}, {6, 4}}, {{0, 0}, {4, 3}}}) {
    const auto hops = g.shortest_hops(c.index_of(a), c.index_of(b));
    ASSERT_TRUE(hops.has_value());
    EXPECT_EQ(*hops, c.grid_hops(a, b));
  }
}

TEST(IslGraph, PathEndpointsAndContinuity) {
  const orbit::Constellation c{small_shell()};
  const IslGraph g(c);
  const auto from = c.index_of({1, 1});
  const auto to = c.index_of({5, 4});
  const auto path = g.shortest_path(from, to);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), from);
  EXPECT_EQ(path->back(), to);
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_EQ(c.grid_hops(c.id_of((*path)[i]), c.id_of((*path)[i + 1])), 1);
  }
}

TEST(IslGraph, RoutesAroundFailures) {
  orbit::Constellation c{small_shell()};
  // Block the L-path from (0,0) to (2,0) by killing (1,0) — BFS must detour.
  c.set_active({1, 0}, false);
  const IslGraph g(c);
  const auto hops = g.shortest_hops(c.index_of({0, 0}), c.index_of({2, 0}));
  ASSERT_TRUE(hops.has_value());
  EXPECT_EQ(*hops, 4);  // detour around the dead satellite
}

TEST(IslGraph, DisconnectedReturnsNullopt) {
  orbit::Constellation c{small_shell()};
  // Isolate (0,0) by killing all four neighbours.
  for (const auto id : {c.intra_next({0, 0}), c.intra_prev({0, 0}),
                        c.inter_east({0, 0}), c.inter_west({0, 0})}) {
    c.set_active(id, false);
  }
  const IslGraph g(c);
  EXPECT_FALSE(
      g.shortest_hops(c.index_of({0, 0}), c.index_of({4, 3})).has_value());
}

TEST(IslGraph, InactiveEndpointsRejected) {
  orbit::Constellation c{small_shell()};
  c.set_active({0, 0}, false);
  const IslGraph g(c);
  EXPECT_FALSE(
      g.shortest_hops(c.index_of({0, 0}), c.index_of({1, 1})).has_value());
  EXPECT_FALSE(
      g.shortest_hops(c.index_of({1, 1}), c.index_of({0, 0})).has_value());
}

TEST(IslGraph, PathDelayScalesWithHops) {
  const orbit::Constellation c{orbit::WalkerParams{}};
  const IslGraph g(c);
  const auto one_inter =
      g.path_delay(c.index_of({0, 0}), c.index_of({1, 0}), util::Seconds{0.0});
  const auto one_intra =
      g.path_delay(c.index_of({0, 0}), c.index_of({0, 1}), util::Seconds{0.0});
  ASSERT_TRUE(one_inter && one_intra);
  // Table 1: intra-orbit hop ~8 ms, inter-orbit ~2 ms.
  EXPECT_NEAR(one_intra->value(), 8.0, 0.5);
  EXPECT_LT(one_inter->value(), 3.5);
  const auto same = g.path_delay(c.index_of({3, 3}), c.index_of({3, 3}), util::Seconds{0.0});
  ASSERT_TRUE(same.has_value());
  EXPECT_DOUBLE_EQ(same->value(), 0.0);
}

TEST(IslGraph, BfsFallbackDelayStillFinite) {
  orbit::Constellation c{small_shell()};
  c.set_active({1, 0}, false);
  const IslGraph g(c);
  const auto delay =
      g.path_delay(c.index_of({0, 0}), c.index_of({2, 0}), util::Seconds{0.0});
  ASSERT_TRUE(delay.has_value());
  EXPECT_GT(delay->value(), 0.0);
}

}  // namespace
}  // namespace starcdn::net
