// Parameterized cross-module sweeps: every traffic class through the
// workload/SpaceGEN pipeline, and every cache policy through the full
// StarCDN simulator — broad invariants that must hold at any point of the
// configuration space.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/simulator.h"
#include "trace/spacegen.h"
#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn {
namespace {

// --- traffic-class sweep --------------------------------------------------------

class TrafficClassTest
    : public ::testing::TestWithParam<trace::TrafficClass> {};

TEST_P(TrafficClassTest, WorkloadStructurallySound) {
  auto p = trace::default_params(GetParam());
  p.object_count = 10'000;
  p.requests_per_weight = 4'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto traces = w.generate();
  ASSERT_EQ(traces.size(), util::paper_cities().size());
  for (const auto& t : traces) {
    ASSERT_FALSE(t.requests.empty());
    for (const auto& r : t.requests) {
      ASSERT_GE(r.size, 1u);
      ASSERT_LT(r.object, p.object_count);
      ASSERT_GE(r.timestamp_s, 0.0);
      ASSERT_LT(r.timestamp_s, p.duration_s);
    }
  }
}

TEST_P(TrafficClassTest, SpaceGenRoundTripsTheClass) {
  auto p = trace::default_params(GetParam());
  p.object_count = 8'000;
  p.requests_per_weight = 3'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto production = w.generate();
  const auto gen = trace::SpaceGen::fit(production);
  trace::SpaceGenConfig cfg;
  cfg.target_requests_per_location = 2'000;
  const auto synthetic = gen.generate(cfg);
  ASSERT_EQ(synthetic.size(), production.size());
  // Mean object size must carry through the GPD within a factor.
  const auto mean_size = [](const trace::MultiTrace& ts) {
    double bytes = 0.0, n = 0.0;
    for (const auto& t : ts) {
      for (const auto& r : t.requests) {
        bytes += static_cast<double>(r.size);
        n += 1.0;
      }
    }
    return bytes / std::max(1.0, n);
  };
  const double prod = mean_size(production);
  const double synth = mean_size(synthetic);
  EXPECT_GT(synth, prod * 0.5);
  EXPECT_LT(synth, prod * 2.0);
}

TEST_P(TrafficClassTest, StarCdnBeatsLruForEveryClass) {
  auto p = trace::default_params(GetParam());
  p.object_count = 10'000;
  p.requests_per_weight = 5'000;
  p.duration_s = util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(w.generate());

  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{p.duration_s});
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(128);
  cfg.buckets = 9;
  cfg.sample_latency = false;
  core::Simulator sim(shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.add_variant(core::Variant::kVanillaLru);
  sim.run(requests);
  EXPECT_GT(sim.metrics(core::Variant::kStarCdn).request_hit_rate(),
            sim.metrics(core::Variant::kVanillaLru).request_hit_rate());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TrafficClassTest,
                         ::testing::Values(trace::TrafficClass::kVideo,
                                           trace::TrafficClass::kWeb,
                                           trace::TrafficClass::kDownload),
                         [](const auto& name_info) {
                           return std::string(to_string(name_info.param));
                         });

// --- cache-policy sweep through the simulator -----------------------------------

class SimPolicyTest : public ::testing::TestWithParam<cache::Policy> {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    auto p = trace::default_params(trace::TrafficClass::kVideo);
    p.object_count = 15'000;
    p.requests_per_weight = 6'000;
    p.duration_s = util::kHour.value();
    const trace::WorkloadModel w(util::paper_cities(), p);
    requests_ = new std::vector<trace::Request>(
        trace::merge_by_time(w.generate()));
    schedule_ = new sched::LinkSchedule(*shell_, util::paper_cities(),
                                        util::Seconds{p.duration_s});
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete schedule_;
    delete shell_;
    requests_ = nullptr;
    schedule_ = nullptr;
    shell_ = nullptr;
  }
  static orbit::Constellation* shell_;
  static std::vector<trace::Request>* requests_;
  static sched::LinkSchedule* schedule_;
};

orbit::Constellation* SimPolicyTest::shell_ = nullptr;
std::vector<trace::Request>* SimPolicyTest::requests_ = nullptr;
sched::LinkSchedule* SimPolicyTest::schedule_ = nullptr;

TEST_P(SimPolicyTest, ConservationUnderEveryPolicy) {
  // §3.2: "our consistent hashing scheme accommodates any cache
  // replacement scheme". All invariants must hold regardless of policy.
  core::SimConfig cfg;
  cfg.policy = GetParam();
  cfg.cache_capacity = util::mib(128);
  cfg.buckets = 4;
  cfg.sample_latency = false;
  core::Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.add_variant(core::Variant::kVanillaLru);
  sim.run(*requests_);
  for (const auto v : {core::Variant::kStarCdn, core::Variant::kVanillaLru}) {
    const auto& m = sim.metrics(v);
    EXPECT_EQ(m.requests, requests_->size());
    EXPECT_EQ(m.hits() + m.misses, m.requests);
    EXPECT_EQ(m.bytes_hit + m.uplink_bytes, m.bytes_requested);
  }
  EXPECT_GT(sim.metrics(core::Variant::kStarCdn).request_hit_rate(),
            sim.metrics(core::Variant::kVanillaLru).request_hit_rate());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimPolicyTest,
                         ::testing::Values(cache::Policy::kLru,
                                           cache::Policy::kLfu,
                                           cache::Policy::kFifo,
                                           cache::Policy::kSieve,
                                           cache::Policy::kSlru,
                                           cache::Policy::kGdsf),
                         [](const auto& name_info) {
                           return std::string(to_string(name_info.param));
                         });

// --- bucket-count sweep -----------------------------------------------------------

class BucketSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketSweepTest, HashedVariantsValidAtEveryL) {
  const orbit::Constellation shell{orbit::WalkerParams{}};
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 8'000;
  p.requests_per_weight = 2'500;
  p.duration_s = util::kHour.value() / 2;
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(w.generate());
  const sched::LinkSchedule schedule(shell, util::paper_cities(),
                                     util::Seconds{p.duration_s});
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(128);
  cfg.buckets = GetParam();
  cfg.sample_latency = false;
  core::Simulator sim(shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.run(requests);
  const auto& m = sim.metrics(core::Variant::kStarCdn);
  EXPECT_EQ(m.hits() + m.misses, m.requests);
  EXPECT_GT(m.request_hit_rate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SquareL, BucketSweepTest,
                         ::testing::Values(1, 4, 9, 16, 25));

}  // namespace
}  // namespace starcdn
