#include "orbit/constellation.h"

#include <gtest/gtest.h>

#include "orbit/tle.h"
#include "util/rng.h"
#include "util/units.h"

namespace starcdn::orbit {
namespace {

WalkerParams small_shell() {
  WalkerParams p;
  p.planes = 12;
  p.slots_per_plane = 6;
  return p;
}

TEST(Constellation, StarlinkShellShape) {
  const Constellation c{WalkerParams{}};
  EXPECT_EQ(c.planes(), 72);
  EXPECT_EQ(c.slots_per_plane(), 18);
  EXPECT_EQ(c.size(), 1296);  // the 1296 slots of §5.4
  EXPECT_EQ(c.active_count(), 1296);
}

TEST(Constellation, IndexIdRoundTrip) {
  const Constellation c{small_shell()};
  for (int i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.index_of(c.id_of(util::SatId{i})).value(), i);
  }
}

TEST(Constellation, RaanSpreadOverFullCircle) {
  const Constellation c{small_shell()};
  const double raan0 = c.elements({0, 0}).raan.value();
  const double raan6 = c.elements({6, 0}).raan.value();
  EXPECT_NEAR(raan6 - raan0, M_PI, 1e-9);  // half the planes = half circle
}

TEST(Constellation, AltitudeApplied) {
  const Constellation c{WalkerParams{}};
  EXPECT_NEAR(c.elements({3, 5}).semi_major_axis.value(),
              util::kEarthRadiusKm + 550.0, 1e-9);
}

TEST(Constellation, NeighborsWrapToroidally) {
  const Constellation c{small_shell()};
  EXPECT_EQ(c.intra_next({0, 5}), (SatelliteId{0, 0}));
  EXPECT_EQ(c.intra_prev({0, 0}), (SatelliteId{0, 5}));
  EXPECT_EQ(c.inter_east({11, 3}), (SatelliteId{0, 3}));
  EXPECT_EQ(c.inter_west({0, 3}), (SatelliteId{11, 3}));
  EXPECT_EQ(c.plane_offset({1, 1}, -3), (SatelliteId{10, 1}));
  EXPECT_EQ(c.slot_offset({1, 1}, 7), (SatelliteId{1, 2}));
}

TEST(Constellation, GridHopsToroidal) {
  const Constellation c{small_shell()};
  EXPECT_EQ(c.grid_hops({0, 0}, {0, 0}), 0);
  EXPECT_EQ(c.grid_hops({0, 0}, {1, 1}), 2);
  EXPECT_EQ(c.grid_hops({0, 0}, {11, 5}), 2);  // wraps both axes
  EXPECT_EQ(c.grid_hops({0, 0}, {6, 3}), 9);   // max distance on this grid
}

TEST(Constellation, AdjacentSlotsAreAboutOneSpacingApart) {
  // 18 slots on a 6,921 km radius orbit: chord ~ 2,400 km -> 8 ms (Table 1).
  const Constellation c{WalkerParams{}};
  const double d = distance(c.position_ecef({0, 0}, util::Seconds{0.0}),
                            c.position_ecef({0, 1}, util::Seconds{0.0}));
  EXPECT_NEAR(d, 2.0 * (util::kEarthRadiusKm + 550.0) *
                     std::sin(M_PI / 18.0),
              1.0);
}

TEST(Constellation, KnockOutRandomFraction) {
  Constellation c{WalkerParams{}};
  util::Rng rng(1);
  c.knock_out_random(0.097, rng);  // the paper's 9.7% out-of-slot rate
  EXPECT_EQ(c.active_count(), 1296 - 126);
}

TEST(Constellation, KnockOutIsDeterministic) {
  Constellation a{small_shell()}, b{small_shell()};
  util::Rng ra(9), rb(9);
  a.knock_out_random(0.25, ra);
  b.knock_out_random(0.25, rb);
  for (int i = 0; i < a.size(); ++i) EXPECT_EQ(a.active(util::SatId{i}), b.active(util::SatId{i}));
}

TEST(Constellation, SetActiveToggle) {
  Constellation c{small_shell()};
  c.set_active({2, 3}, false);
  EXPECT_FALSE(c.active({2, 3}));
  EXPECT_EQ(c.active_count(), c.size() - 1);
  c.set_active({2, 3}, true);
  EXPECT_TRUE(c.active({2, 3}));
}

TEST(Constellation, FromTlesRecoversGrid) {
  // Generate a Walker shell, serialize every slot to TLE text, re-ingest,
  // and check the recovered elements match slot for slot.
  const WalkerParams p = small_shell();
  const Constellation original{p};
  std::vector<Tle> tles;
  for (int i = 0; i < original.size(); ++i) {
    const auto& e = original.elements(original.id_of(util::SatId{i}));
    Tle t;
    t.catalog_number = 50'000 + i;
    t.inclination_deg = util::to_degrees(e.inclination).value();
    t.raan_deg = util::to_degrees(e.raan).value();
    t.arg_perigee_deg = 0.0;
    t.mean_anomaly_deg = util::to_degrees(e.arg_latitude_epoch).value();
    t.mean_motion_rev_day =
        util::kDay / orbital_period(e);
    tles.push_back(t);
  }
  const Constellation rebuilt(p, tles);
  EXPECT_EQ(rebuilt.active_count(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(rebuilt.elements(rebuilt.id_of(util::SatId{i})).raan.value(),
                original.elements(original.id_of(util::SatId{i})).raan.value(), 1e-6);
  }
}

TEST(Constellation, FromPartialTlesMarksMissingInactive) {
  const WalkerParams p = small_shell();
  const Constellation full{p};
  std::vector<Tle> tles;
  // Only provide TLEs for plane 0.
  for (int s = 0; s < p.slots_per_plane; ++s) {
    const auto& e = full.elements({0, s});
    Tle t;
    t.catalog_number = s;
    t.inclination_deg = util::to_degrees(e.inclination).value();
    t.raan_deg = util::to_degrees(e.raan).value();
    t.mean_anomaly_deg = util::to_degrees(e.arg_latitude_epoch).value();
    t.mean_motion_rev_day = util::kDay / orbital_period(e);
    tles.push_back(t);
  }
  const Constellation partial(p, tles);
  EXPECT_EQ(partial.active_count(), p.slots_per_plane);
  EXPECT_TRUE(partial.active({0, 0}));
  EXPECT_FALSE(partial.active({1, 0}));
}

TEST(Constellation, InvalidShapeThrows) {
  WalkerParams p;
  p.planes = 0;
  EXPECT_THROW(Constellation{p}, std::invalid_argument);
}

}  // namespace
}  // namespace starcdn::orbit
