// Traffic-model persistence round trip: a loaded model must generate the
// exact trace the original would (the "published models" artifact of §4.1).
#include "trace/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::trace {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto p = default_params(TrafficClass::kVideo);
    p.object_count = 8'000;
    p.requests_per_weight = 3'000;
    p.duration_s = util::kHour.value();
    const WorkloadModel w(util::paper_cities(), p);
    gen_ = new SpaceGen(SpaceGen::fit(w.generate()));
  }
  static void TearDownTestSuite() {
    delete gen_;
    gen_ = nullptr;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ = (std::filesystem::temp_directory_path() /
                       "starcdn_models_test.bin")
                          .string();
  static SpaceGen* gen_;
};

SpaceGen* ModelIoTest::gen_ = nullptr;

TEST_F(ModelIoTest, RoundTripPreservesModelStatistics) {
  save_models(*gen_, path_);
  const SpaceGen loaded = load_models(path_);

  EXPECT_EQ(loaded.gpd().object_count(), gen_->gpd().object_count());
  EXPECT_EQ(loaded.gpd().locations(), gen_->gpd().locations());
  EXPECT_EQ(loaded.location_names(), gen_->location_names());
  ASSERT_EQ(loaded.pfds().size(), gen_->pfds().size());
  for (std::size_t i = 0; i < loaded.pfds().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.pfds()[i].request_rate_per_s(),
                     gen_->pfds()[i].request_rate_per_s());
    EXPECT_EQ(loaded.pfds()[i].max_finite_stack_distance(),
              gen_->pfds()[i].max_finite_stack_distance());
    EXPECT_EQ(loaded.pfds()[i].observed_reuses(),
              gen_->pfds()[i].observed_reuses());
  }
}

TEST_F(ModelIoTest, LoadedModelGeneratesIdenticalTrace) {
  save_models(*gen_, path_);
  const SpaceGen loaded = load_models(path_);

  SpaceGenConfig cfg;
  cfg.target_requests_per_location = 2'000;
  const auto a = gen_->generate(cfg);
  const auto b = loaded.generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].requests.size(), b[i].requests.size()) << "location " << i;
    for (std::size_t k = 0; k < a[i].requests.size(); ++k) {
      ASSERT_EQ(a[i].requests[k].object, b[i].requests[k].object);
      ASSERT_EQ(a[i].requests[k].size, b[i].requests[k].size);
      ASSERT_EQ(a[i].requests[k].timestamp_s, b[i].requests[k].timestamp_s);
    }
  }
}

TEST_F(ModelIoTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTAMODELFILE";
  }
  EXPECT_THROW((void)load_models(path_), std::runtime_error);
}

TEST_F(ModelIoTest, TruncatedFileRejected) {
  save_models(*gen_, path_);
  std::filesystem::resize_file(path_, 200);
  EXPECT_THROW((void)load_models(path_), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_models("/nonexistent/models.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace starcdn::trace
