#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace starcdn::util {
namespace {

/// Restores the default chunk count when a test body returns or throws.
struct ThreadOverrideGuard {
  explicit ThreadOverrideGuard(int n) { set_parallel_threads(n); }
  ~ThreadOverrideGuard() { set_parallel_threads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadOverrideGuard guard(8);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> touched(n);
  parallel_for(n, [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadOverrideGuard guard(8);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadOverrideGuard guard(16);
  std::vector<std::atomic<int>> touched(3);
  parallel_for(3, [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ParallelFor, ChunksAreStaticAndContiguous) {
  // The determinism contract: chunk boundaries depend only on (n, threads).
  ThreadOverrideGuard guard(4);
  constexpr std::size_t n = 10;  // 4 chunks: 3, 3, 2, 2
  std::vector<int> chunk_of(n, -1);
  std::atomic<int> next_chunk{0};
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    const int c = next_chunk.fetch_add(1);
    for (std::size_t i = begin; i < end; ++i) chunk_of[i] = c;
  });
  // Every index assigned, and each chunk is one contiguous run.
  for (std::size_t i = 0; i < n; ++i) ASSERT_GE(chunk_of[i], 0);
  int runs = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (chunk_of[i] != chunk_of[i - 1]) ++runs;
  }
  EXPECT_EQ(runs, 4);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadOverrideGuard guard(8);
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must still be usable after a failed loop.
  std::atomic<int> sum{0};
  parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  ThreadOverrideGuard guard(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  parallel_for(5, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  ThreadOverrideGuard guard(8);
  std::vector<std::atomic<int>> touched(64);
  parallel_for(8, [&](std::size_t outer) {
    parallel_for(8, [&](std::size_t inner) {
      touched[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelFor, AccumulatesIntoDisjointSlots) {
  ThreadOverrideGuard guard(8);
  constexpr std::size_t n = 4096;
  std::vector<std::uint64_t> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(), 0ULL);
  EXPECT_EQ(sum, (n - 1) * n * (2 * n - 1) / 6);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // Destructor drains the queue; check after scope instead of busy-waiting.
  while (done.load(std::memory_order_relaxed) < 16) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, WorkerThreadFlagIsVisibleInsideTasks) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<bool> inside{false};
  std::atomic<bool> ran{false};
  global_pool().submit([&] {
    inside.store(ThreadPool::on_worker_thread());
    ran.store(true);
  });
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(inside.load());
}

TEST(ParallelThreads, ParseThreadCount) {
  EXPECT_EQ(parse_thread_count(nullptr), 0);
  EXPECT_EQ(parse_thread_count(""), 0);
  EXPECT_EQ(parse_thread_count("8"), 8);
  EXPECT_EQ(parse_thread_count("1"), 1);
  EXPECT_EQ(parse_thread_count("0"), 0);
  EXPECT_EQ(parse_thread_count("-4"), 0);
  EXPECT_EQ(parse_thread_count("many"), 0);
  EXPECT_EQ(parse_thread_count("8x"), 0);
  EXPECT_EQ(parse_thread_count("999999"), 0);  // over the sanity cap
}

TEST(ParallelThreads, OverrideAndRestore) {
  {
    ThreadOverrideGuard guard(3);
    EXPECT_EQ(parallel_threads(), 3);
  }
  EXPECT_GE(parallel_threads(), 1);
}

}  // namespace
}  // namespace starcdn::util
