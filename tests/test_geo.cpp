#include "util/geo.h"

#include <gtest/gtest.h>

namespace starcdn::util {
namespace {

TEST(Geo, HaversineKnownDistances) {
  // New York <-> London is about 5,570 km.
  const GeoCoord ny{40.71, -74.01};
  const GeoCoord london{51.51, -0.13};
  EXPECT_NEAR(haversine(ny, london).value(), 5570.0, 60.0);
  // Antipodal points: half the circumference.
  const GeoCoord a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(haversine(a, b).value(), 20'015.0, 10.0);
}

TEST(Geo, HaversineZeroForSamePoint) {
  const GeoCoord p{48.2, 16.4};
  EXPECT_DOUBLE_EQ(haversine(p, p).value(), 0.0);
}

TEST(Geo, HaversineSymmetric) {
  const GeoCoord a{10.0, 20.0}, b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(haversine(a, b).value(), haversine(b, a).value());
}

TEST(Geo, WrapLongitude) {
  EXPECT_DOUBLE_EQ(wrap_lon_deg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(wrap_lon_deg(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(wrap_lon_deg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_lon_deg(-180.0), -180.0);
}

TEST(Geo, DegRadRoundTrip) {
  EXPECT_NEAR(to_degrees(to_radians(Degrees{53.0})).value(), 53.0, 1e-12);
}

TEST(Geo, PaperCitiesMatchSection311) {
  const auto& cities = paper_cities();
  ASSERT_EQ(cities.size(), 9u);  // the nine Akamai trace cities
  // All coordinates must be valid and weights positive.
  for (const auto& c : cities) {
    EXPECT_GE(c.coord.lat_deg, -90.0);
    EXPECT_LE(c.coord.lat_deg, 90.0);
    EXPECT_GE(c.coord.lon_deg, -180.0);
    EXPECT_LE(c.coord.lon_deg, 180.0);
    EXPECT_GT(c.traffic_weight, 0.0);
    EXPECT_FALSE(c.region.empty());
  }
  // Frankfurt and Vienna share the German content region (Table 2 setup).
  EXPECT_EQ(cities[6].region, cities[7].region);
}

TEST(Geo, GlobalCitiesSupersetOfPaperCities) {
  const auto& global = global_cities();
  EXPECT_GT(global.size(), paper_cities().size());
  for (std::size_t i = 0; i < paper_cities().size(); ++i) {
    EXPECT_EQ(global[i].name, paper_cities()[i].name);
  }
}

}  // namespace
}  // namespace starcdn::util
