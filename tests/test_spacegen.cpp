// SpaceGEN fidelity tests: Algorithm 1's output must reproduce the
// production trace's structure (§4.3 / Fig. 6) well enough for cache
// simulation.
#include "trace/spacegen.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "cache/lru.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/histogram.h"

namespace starcdn::trace {
namespace {

MultiTrace small_production() {
  auto p = default_params(TrafficClass::kVideo);
  p.object_count = 15'000;
  p.requests_per_weight = 12'000;
  p.duration_s = 4 * util::kHour.value();
  const WorkloadModel w(util::paper_cities(), p);
  return w.generate();
}

class SpaceGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    production_ = new MultiTrace(small_production());
    gen_ = new SpaceGen(SpaceGen::fit(*production_));
    SpaceGenConfig cfg;
    cfg.target_requests_per_location = 10'000;
    synthetic_ = new MultiTrace(gen_->generate(cfg));
  }
  static void TearDownTestSuite() {
    delete production_;
    delete gen_;
    delete synthetic_;
    production_ = nullptr;
    gen_ = nullptr;
    synthetic_ = nullptr;
  }

  static MultiTrace* production_;
  static SpaceGen* gen_;
  static MultiTrace* synthetic_;
};

MultiTrace* SpaceGenTest::production_ = nullptr;
SpaceGen* SpaceGenTest::gen_ = nullptr;
MultiTrace* SpaceGenTest::synthetic_ = nullptr;

TEST_F(SpaceGenTest, AllLocationsGenerated) {
  ASSERT_EQ(synthetic_->size(), production_->size());
  for (std::size_t i = 0; i < synthetic_->size(); ++i) {
    EXPECT_GT((*synthetic_)[i].requests.size(), 1'000u) << "location " << i;
    EXPECT_EQ((*synthetic_)[i].location, i);
  }
}

TEST_F(SpaceGenTest, TimestampsMonotonePerLocation) {
  for (const auto& t : *synthetic_) {
    for (std::size_t i = 1; i < t.requests.size(); ++i) {
      ASSERT_LE(t.requests[i - 1].timestamp_s, t.requests[i].timestamp_s);
    }
  }
}

TEST_F(SpaceGenTest, RelativeRatesPreserved) {
  // New York (idx 4, weight 1.8) vs Vienna (idx 7, weight 0.8): the
  // synthetic trace must keep the ratio roughly.
  const double ratio =
      static_cast<double>((*synthetic_)[4].requests.size()) /
      static_cast<double>((*synthetic_)[7].requests.size());
  const double prod_ratio =
      static_cast<double>((*production_)[4].requests.size()) /
      static_cast<double>((*production_)[7].requests.size());
  EXPECT_NEAR(ratio, prod_ratio, prod_ratio * 0.25);
}

util::Histogram spread_histogram(const MultiTrace& traces, bool weighted) {
  // Fig. 6a/6b: number of locations each object is accessed from,
  // optionally weighted by bytes requested (traffic spread).
  std::unordered_map<ObjectId, std::unordered_set<std::uint16_t>> locs;
  std::unordered_map<ObjectId, double> bytes;
  for (const auto& t : traces) {
    for (const auto& r : t.requests) {
      locs[r.object].insert(t.location);
      bytes[r.object] += static_cast<double>(r.size);
    }
  }
  util::Histogram h(0.5, 9.5, 9);
  for (const auto& [id, set] : locs) {
    h.add(static_cast<double>(set.size()), weighted ? bytes[id] : 1.0);
  }
  return h;
}

TEST_F(SpaceGenTest, ObjectSpreadMatchesProduction) {
  const auto prod = spread_histogram(*production_, false);
  const auto synth = spread_histogram(*synthetic_, false);
  // Fig. 6a: the two CDFs nearly coincide; total-variation distance small.
  EXPECT_LT(prod.tv_distance(synth), 0.15);
}

TEST_F(SpaceGenTest, TrafficSpreadMatchesProduction) {
  const auto prod = spread_histogram(*production_, true);
  const auto synth = spread_histogram(*synthetic_, true);
  EXPECT_LT(prod.tv_distance(synth), 0.20);
}

double lru_hit_rate(const LocationTrace& trace, Bytes capacity) {
  cache::LruCache c(capacity);
  for (const auto& r : trace.requests) c.access(r.object, r.size);
  return c.stats().request_hit_rate();
}

TEST_F(SpaceGenTest, SingleCacheHitRatesTrackProduction) {
  // Fig. 6c: terrestrial LRU simulation per location; paper reports a 0.4%
  // average gap. Our tolerance is wider at this scale but still tight.
  double total_gap = 0.0;
  int cells = 0;
  for (const Bytes cap : {util::gib(0.5), util::gib(2), util::gib(8)}) {
    const double p = lru_hit_rate((*production_)[4], cap);
    const double s = lru_hit_rate((*synthetic_)[4], cap);
    total_gap += std::abs(p - s);
    ++cells;
  }
  EXPECT_LT(total_gap / cells, 0.08);
}

TEST_F(SpaceGenTest, PopularityBudgetsRespected) {
  // Algorithm 1 retires an object at a location once its sampled popularity
  // is exhausted; no synthetic object may wildly exceed the production
  // maximum popularity.
  std::unordered_map<ObjectId, std::size_t> counts;
  for (const auto& r : (*synthetic_)[0].requests) ++counts[r.object];
  std::size_t prod_max = 0;
  {
    std::unordered_map<ObjectId, std::size_t> pc;
    for (const auto& r : (*production_)[0].requests) ++pc[r.object];
    for (const auto& [id, n] : pc) prod_max = std::max(prod_max, n);
  }
  for (const auto& [id, n] : counts) {
    EXPECT_LE(n, prod_max + 1) << "synthetic object " << id
                               << " exceeds production popularity ceiling";
  }
}

TEST(SpaceGen, MismatchedInputsThrow) {
  const auto prod = small_production();
  auto gpd = GlobalPopularityDistribution::extract(prod);
  std::vector<FootprintDescriptor> too_few(2);
  EXPECT_THROW(SpaceGen(std::move(gpd), std::move(too_few)),
               std::invalid_argument);
}

TEST(SpaceGen, DeterministicForSeed) {
  const auto prod = small_production();
  const auto gen = SpaceGen::fit(prod);
  SpaceGenConfig cfg;
  cfg.target_requests_per_location = 2'000;
  const auto a = gen.generate(cfg);
  const auto b = gen.generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].requests.size(), b[i].requests.size());
    for (std::size_t k = 0; k < a[i].requests.size(); ++k) {
      ASSERT_EQ(a[i].requests[k].object, b[i].requests[k].object);
    }
  }
}

}  // namespace
}  // namespace starcdn::trace
