#include "net/latency_model.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace starcdn::net {
namespace {

TEST(LatencyModel, HitCompositionArithmetic) {
  const LatencyModel m;
  EXPECT_DOUBLE_EQ(m.hit_local(util::Millis{3.0}).value(), 6.0);
  EXPECT_DOUBLE_EQ(m.hit_routed(util::Millis{3.0}, util::Millis{4.0}).value(), 14.0);
  EXPECT_DOUBLE_EQ(m.hit_relayed(util::Millis{3.0}, util::Millis{4.0}, util::Millis{2.0}).value(), 18.0);
}

TEST(LatencyModel, GridHopsUseTable1Delays) {
  const LatencyModel m;
  // Defaults are Table 1's means: 2.15 ms inter-orbit, 8.03 ms intra-orbit.
  EXPECT_NEAR(m.grid_hops_delay(1, 0).value(), 2.15, 1e-9);
  EXPECT_NEAR(m.grid_hops_delay(0, 1).value(), 8.03, 1e-9);
  EXPECT_NEAR(m.grid_hops_delay(2, 1).value(), 2 * 2.15 + 8.03, 1e-9);
}

TEST(LatencyModel, MissExceedsHit) {
  const LatencyModel m;
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(
        m.miss(util::Millis{3.0}, util::Millis{2.0}, util::Millis{2.9}, rng)
            .value(),
        m.hit_routed(util::Millis{3.0}, util::Millis{2.0}).value());
  }
}

TEST(LatencyModel, BaselineMediansMatchPaper) {
  // Fig. 10's baselines: bent-pipe Starlink median ~55 ms, terrestrial CDN
  // single-digit-to-low-tens median, StarCDN ~22 ms.
  const LatencyModel m;
  util::Rng rng(2);
  util::QuantileSampler terrestrial, bentpipe;
  for (int i = 0; i < 50'000; ++i) {
    terrestrial.add(m.terrestrial_cdn(rng).value());
    bentpipe.add(m.bentpipe_starlink(util::Millis{2.94}, rng).value());
  }
  EXPECT_GT(terrestrial.median(), 4.0);
  EXPECT_LT(terrestrial.median(), 20.0);
  EXPECT_NEAR(bentpipe.median(), 55.0, 8.0);
  EXPECT_LT(terrestrial.median(), bentpipe.median());
}

TEST(LatencyModel, StarCdnHitBeatsBentPipe) {
  // A local or routed hit (a handful of GSL/ISL traversals) must beat the
  // bent-pipe median by a wide margin — the 2.5x improvement of §5.3.
  const LatencyModel m;
  util::Rng rng(3);
  util::QuantileSampler bentpipe;
  for (int i = 0; i < 20'000; ++i) bentpipe.add(m.bentpipe_starlink(util::Millis{2.94}, rng).value());
  const double routed_hit =
      m.hit_routed(util::Millis{2.94}, m.grid_hops_delay(2, 0)).value();
  EXPECT_LT(routed_hit, bentpipe.median() / 2.0);
}

TEST(LatencyModel, CustomParams) {
  LatencyModelParams p;
  p.inter_orbit_hop = util::Millis{10.0};
  const LatencyModel m(p);
  EXPECT_DOUBLE_EQ(m.grid_hops_delay(3, 0).value(), 30.0);
  EXPECT_DOUBLE_EQ(m.params().inter_orbit_hop.value(), 10.0);
}

}  // namespace
}  // namespace starcdn::net
