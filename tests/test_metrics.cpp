#include "core/metrics.h"

#include <gtest/gtest.h>

#include "cache/cache.h"

namespace starcdn::core {
namespace {

TEST(VariantMetrics, RatesFromCounters) {
  VariantMetrics m;
  m.requests = 100;
  m.local_hits = 40;
  m.routed_hits = 20;
  m.relay_west_hits = 8;
  m.relay_east_hits = 2;
  m.misses = 30;
  EXPECT_EQ(m.hits(), 70u);
  EXPECT_DOUBLE_EQ(m.request_hit_rate(), 0.7);

  m.bytes_requested = 1'000;
  m.bytes_hit = 600;
  m.uplink_bytes = 400;
  EXPECT_DOUBLE_EQ(m.byte_hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(m.normalized_uplink(), 0.4);
}

TEST(VariantMetrics, EmptyIsZeroNotNan) {
  const VariantMetrics m;
  EXPECT_EQ(m.request_hit_rate(), 0.0);
  EXPECT_EQ(m.byte_hit_rate(), 0.0);
  EXPECT_EQ(m.normalized_uplink(), 0.0);
}

TEST(CacheStats, MergeAccumulates) {
  starcdn::cache::CacheStats a, b;
  a.requests = 10;
  a.hits = 5;
  a.bytes_requested = 100;
  a.bytes_hit = 40;
  a.evictions = 2;
  b = a;
  a.merge(b);
  EXPECT_EQ(a.requests, 20u);
  EXPECT_EQ(a.hits, 10u);
  EXPECT_EQ(a.bytes_hit, 80u);
  EXPECT_EQ(a.evictions, 4u);
  EXPECT_DOUBLE_EQ(a.request_hit_rate(), 0.5);
}

}  // namespace
}  // namespace starcdn::core
