#include "trace/stack_distance.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace starcdn::trace {
namespace {

/// O(n^2) reference implementation: unique bytes of objects accessed
/// between consecutive accesses of the same object.
class NaiveTracker {
 public:
  double access(ObjectId id, Bytes size) {
    double dist = kInfiniteStackDistance;
    const auto it = last_index_.find(id);
    if (it != last_index_.end()) {
      std::unordered_map<ObjectId, Bytes> uniq;
      for (std::size_t i = it->second + 1; i < history_.size(); ++i) {
        uniq[history_[i].first] = history_[i].second;
      }
      uniq.erase(id);
      double d = 0.0;
      for (const auto& [o, s] : uniq) d += static_cast<double>(s);
      dist = d;
    }
    history_.emplace_back(id, size);
    last_index_[id] = history_.size() - 1;
    return dist;
  }

 private:
  std::vector<std::pair<ObjectId, Bytes>> history_;
  std::unordered_map<ObjectId, std::size_t> last_index_;
};

TEST(StackDistance, ColdAccessesAreInfinite) {
  StackDistanceTracker t;
  EXPECT_EQ(t.access(1, 10), kInfiniteStackDistance);
  EXPECT_EQ(t.access(2, 10), kInfiniteStackDistance);
  EXPECT_EQ(t.unique_objects(), 2u);
}

TEST(StackDistance, ImmediateReuseIsZero) {
  StackDistanceTracker t;
  t.access(1, 10);
  EXPECT_DOUBLE_EQ(t.access(1, 10), 0.0);
}

TEST(StackDistance, CountsUniqueBytesBetweenAccesses) {
  StackDistanceTracker t;
  t.access(1, 10);
  t.access(2, 20);
  t.access(3, 30);
  t.access(2, 20);                     // d = 30 (only object 3 in between)
  EXPECT_DOUBLE_EQ(t.access(1, 10), 50.0);  // objects 2 and 3
}

TEST(StackDistance, RepeatedIntermediateCountedOnce) {
  StackDistanceTracker t;
  t.access(1, 10);
  t.access(2, 20);
  t.access(2, 20);
  t.access(2, 20);
  EXPECT_DOUBLE_EQ(t.access(1, 10), 20.0);  // 2 counted once
}

TEST(StackDistance, MatchesNaiveOnRandomTrace) {
  StackDistanceTracker fast;
  NaiveTracker naive;
  util::Rng rng(21);
  for (int i = 0; i < 3'000; ++i) {
    const ObjectId id = rng.below(80);
    const Bytes size = 1 + rng.below(100);
    // Sizes must stay stable per object for the semantics to agree.
    const Bytes stable_size = 1 + id % 97;
    (void)size;
    const double a = fast.access(id, stable_size);
    const double b = naive.access(id, stable_size);
    if (a == kInfiniteStackDistance) {
      ASSERT_EQ(b, kInfiniteStackDistance) << "step " << i;
    } else {
      ASSERT_NEAR(a, b, 1e-6) << "step " << i;
    }
  }
}

TEST(StackDistance, CompactionPreservesAnswers) {
  // Push enough accesses to trigger internal Fenwick compaction (> 2^20
  // positions) over a small object population and check distances stay
  // consistent with the live working-set size.
  StackDistanceTracker t;
  constexpr int kObjects = 64;
  for (int i = 0; i < (1 << 20) + 4'096; ++i) {
    const ObjectId id = static_cast<ObjectId>(i % kObjects);
    const double d = t.access(id, 1);
    if (i >= kObjects) {
      // Cyclic access: exactly the other 63 objects in between.
      ASSERT_DOUBLE_EQ(d, kObjects - 1.0) << "iteration " << i;
    }
  }
  EXPECT_EQ(t.unique_objects(), static_cast<std::size_t>(kObjects));
}

}  // namespace
}  // namespace starcdn::trace
