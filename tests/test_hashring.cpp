#include "cache/hashring.h"

#include <gtest/gtest.h>

#include <map>

namespace starcdn::cache {
namespace {

TEST(HashRing, EmptyAndCounts) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  ring.add_server(1);
  ring.add_server(2);
  EXPECT_EQ(ring.server_count(), 2u);
  ring.add_server(1);  // duplicate ignored
  EXPECT_EQ(ring.server_count(), 2u);
}

TEST(HashRing, OwnerIsDeterministic) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 8; ++s) ring.add_server(s);
  for (ObjectId o = 0; o < 100; ++o) {
    EXPECT_EQ(ring.owner(o), ring.owner(o));
  }
}

TEST(HashRing, LoadIsRoughlyBalanced) {
  HashRing ring(128);
  constexpr int kServers = 10;
  for (std::uint32_t s = 0; s < kServers; ++s) ring.add_server(s);
  std::map<std::uint32_t, int> load;
  constexpr int kObjects = 50'000;
  for (ObjectId o = 0; o < kObjects; ++o) ++load[ring.owner(o)];
  for (const auto& [server, n] : load) {
    EXPECT_GT(n, kObjects / kServers / 2) << "server " << server;
    EXPECT_LT(n, kObjects / kServers * 2) << "server " << server;
  }
}

TEST(HashRing, MinimalRemappingOnRemoval) {
  // Consistent hashing's defining property (§3.2 / Karger): removing one of
  // S servers remaps ~1/S of the keys and nothing else.
  HashRing ring(128);
  constexpr int kServers = 10;
  for (std::uint32_t s = 0; s < kServers; ++s) ring.add_server(s);
  constexpr int kObjects = 20'000;
  std::vector<std::uint32_t> before(kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) before[o] = ring.owner(o);

  ring.remove_server(3);
  int moved = 0;
  for (ObjectId o = 0; o < kObjects; ++o) {
    const auto now = ring.owner(o);
    EXPECT_NE(now, 3u);
    if (before[o] != 3 && now != before[o]) {
      FAIL() << "object " << o << " moved despite its server surviving";
    }
    if (before[o] == 3) ++moved;
  }
  EXPECT_NEAR(moved, kObjects / kServers, kObjects / kServers * 0.5);
}

TEST(HashRing, AddingServerStealsOnlyFromOthers) {
  HashRing ring(64);
  for (std::uint32_t s = 0; s < 5; ++s) ring.add_server(s);
  std::vector<std::uint32_t> before(5'000);
  for (ObjectId o = 0; o < before.size(); ++o) before[o] = ring.owner(o);
  ring.add_server(99);
  for (ObjectId o = 0; o < before.size(); ++o) {
    const auto now = ring.owner(o);
    EXPECT_TRUE(now == before[o] || now == 99u);
  }
}

TEST(HashRing, OwnersReturnsDistinctServers) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 6; ++s) ring.add_server(s);
  const auto owners = ring.owners(1234, 3);
  ASSERT_EQ(owners.size(), 3u);
  EXPECT_NE(owners[0], owners[1]);
  EXPECT_NE(owners[1], owners[2]);
  EXPECT_NE(owners[0], owners[2]);
  EXPECT_EQ(owners[0], ring.owner(1234));
}

TEST(HashRing, OwnersClampedToServerCount) {
  HashRing ring;
  ring.add_server(1);
  ring.add_server(2);
  EXPECT_EQ(ring.owners(7, 10).size(), 2u);
  HashRing empty;
  EXPECT_TRUE(empty.owners(7, 3).empty());
}

TEST(HashRing, RemoveNonexistentIsNoop) {
  HashRing ring;
  ring.add_server(1);
  ring.remove_server(42);
  EXPECT_EQ(ring.server_count(), 1u);
}

}  // namespace
}  // namespace starcdn::cache
