#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace starcdn::util {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(QuantileSampler, ExactQuantilesWithoutReservoir) {
  QuantileSampler q;
  for (int i = 100; i >= 1; --i) q.add(i);  // insert unsorted
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.median(), 50.5, 1e-9);
  EXPECT_NEAR(q.quantile(0.25), 25.75, 1e-9);
}

TEST(QuantileSampler, CdfMonotone) {
  QuantileSampler q;
  for (int i = 1; i <= 10; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(q.cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(q.cdf(10.0), 1.0);
  EXPECT_LE(q.cdf(3.0), q.cdf(7.0));
}

TEST(QuantileSampler, ReservoirApproximatesMedian) {
  QuantileSampler q(1'000);
  for (int i = 0; i < 100'000; ++i) q.add(i % 1'000);
  EXPECT_EQ(q.count(), 100'000u);
  EXPECT_NEAR(q.median(), 500.0, 60.0);
}

TEST(QuantileSampler, EmptyReturnsZero) {
  const QuantileSampler q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.quantile(0.5), 0.0);
  EXPECT_EQ(q.cdf(1.0), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, a), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, AntiCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, MismatchedOrShortInputs) {
  EXPECT_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_EQ(pearson({1}, {1}), 0.0);
}

}  // namespace
}  // namespace starcdn::util
