// Tests for the design-ablation extensions: the hottest() cache API, the
// proactive-prefetch variant (§3.3's rejected alternative), and the
// transient failure model (§3.4).
#include <gtest/gtest.h>

#include "cache/lfu.h"
#include "cache/lru.h"
#include "cache/slru.h"
#include "core/failure.h"
#include "core/simulator.h"
#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn {
namespace {

// --- hottest() ----------------------------------------------------------------

TEST(Hottest, LruReturnsMostRecentFirst) {
  cache::LruCache c(1'000);
  c.admit(1, 10);
  c.admit(2, 20);
  c.admit(3, 30);
  c.touch(1);
  const auto hot = c.hottest(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].first, 1u);
  EXPECT_EQ(hot[0].second, 10u);
  EXPECT_EQ(hot[1].first, 3u);
}

TEST(Hottest, LfuReturnsMostFrequentFirst) {
  cache::LfuCache c(1'000);
  c.admit(1, 10);
  c.admit(2, 10);
  c.touch(2);
  c.touch(2);
  const auto hot = c.hottest(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].first, 2u);
}

TEST(Hottest, SlruPrefersProtected) {
  cache::SlruCache c(1'000, 0.5);
  c.admit(1, 10);   // probation
  c.admit(2, 10);
  c.touch(2);       // protected
  const auto hot = c.hottest(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].first, 2u);
}

class HottestPolicyTest : public ::testing::TestWithParam<cache::Policy> {};

TEST_P(HottestPolicyTest, BoundedAndResident) {
  const auto c = cache::make_cache(GetParam(), 10'000);
  for (cache::ObjectId i = 0; i < 50; ++i) c->admit(i, 100);
  const auto hot = c->hottest(10);
  EXPECT_EQ(hot.size(), 10u);
  for (const auto& [id, size] : hot) {
    EXPECT_TRUE(c->peek(id));
    EXPECT_EQ(size, 100u);
  }
  EXPECT_TRUE(c->hottest(0).empty());
  EXPECT_EQ(c->hottest(1'000).size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, HottestPolicyTest,
                         ::testing::Values(cache::Policy::kLru,
                                           cache::Policy::kLfu,
                                           cache::Policy::kFifo,
                                           cache::Policy::kSieve,
                                           cache::Policy::kSlru,
                                           cache::Policy::kGdsf));

// --- TransientFailureModel ------------------------------------------------------

TEST(TransientFailure, ZeroProbabilityNeverDown) {
  const core::TransientFailureModel model(0.0);
  for (int s = 0; s < 100; ++s) {
    EXPECT_FALSE(model.down(util::SatId{s}, util::Seconds{12'345.0}));
  }
}

TEST(TransientFailure, FrequencyMatchesProbability) {
  const core::TransientFailureModel model(0.2, util::Seconds{300.0});
  int downs = 0, total = 0;
  for (int s = 0; s < 200; ++s) {
    for (double t = 0.0; t < 86'400.0; t += 300.0) {
      downs += model.down(util::SatId{s}, util::Seconds{t});
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(downs) / total, 0.2, 0.01);
}

TEST(TransientFailure, StableWithinWindow) {
  const core::TransientFailureModel model(0.5, util::Seconds{300.0});
  for (int s = 0; s < 50; ++s) {
    const bool at_start = model.down(util::SatId{s}, util::Seconds{600.0});
    EXPECT_EQ(model.down(util::SatId{s}, util::Seconds{601.0}), at_start);
    EXPECT_EQ(model.down(util::SatId{s}, util::Seconds{899.9}), at_start);
  }
}

TEST(TransientFailure, DeterministicForSeed) {
  const core::TransientFailureModel a(0.3, util::Seconds{300.0}, 42);
  const core::TransientFailureModel b(0.3, util::Seconds{300.0}, 42);
  const core::TransientFailureModel c(0.3, util::Seconds{300.0}, 43);
  int diff = 0;
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(a.down(util::SatId{s}, util::Seconds{1'000.0}), b.down(util::SatId{s}, util::Seconds{1'000.0}));
    diff += a.down(util::SatId{s}, util::Seconds{1'000.0}) != c.down(util::SatId{s}, util::Seconds{1'000.0});
  }
  EXPECT_GT(diff, 0);
}

// --- Prefetch variant & transient outages in the simulator ---------------------

class ExtensionSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    auto p = trace::default_params(trace::TrafficClass::kVideo);
    p.object_count = 20'000;
    p.requests_per_weight = 10'000;
    p.duration_s = 2 * util::kHour.value();
    const trace::WorkloadModel workload(util::paper_cities(), p);
    requests_ = new std::vector<trace::Request>(
        trace::merge_by_time(workload.generate()));
    schedule_ = new sched::LinkSchedule(*shell_, util::paper_cities(),
                                        util::Seconds{p.duration_s});
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete schedule_;
    delete shell_;
    requests_ = nullptr;
    schedule_ = nullptr;
    shell_ = nullptr;
  }
  static orbit::Constellation* shell_;
  static std::vector<trace::Request>* requests_;
  static sched::LinkSchedule* schedule_;
};

orbit::Constellation* ExtensionSimTest::shell_ = nullptr;
std::vector<trace::Request>* ExtensionSimTest::requests_ = nullptr;
sched::LinkSchedule* ExtensionSimTest::schedule_ = nullptr;

TEST_F(ExtensionSimTest, PrefetchMovesSpeculativeBytes) {
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(256);
  cfg.buckets = 4;
  cfg.sample_latency = false;
  core::Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(core::Variant::kPrefetch);
  sim.add_variant(core::Variant::kStarCdn);
  sim.run(*requests_);

  const auto& pf = sim.metrics(core::Variant::kPrefetch);
  const auto& star = sim.metrics(core::Variant::kStarCdn);
  EXPECT_GT(pf.prefetch_bytes, 0u);
  EXPECT_EQ(star.prefetch_bytes, 0u);
  // §3.3: prefetch burns far more ISL bandwidth than miss-triggered relay
  // and does not beat it on hit rate.
  EXPECT_GT(pf.isl_bytes, star.isl_bytes);
  EXPECT_LE(pf.request_hit_rate(), star.request_hit_rate() + 0.01);
  // Conservation still holds.
  EXPECT_EQ(pf.hits() + pf.misses, pf.requests);
  EXPECT_EQ(pf.bytes_hit + pf.uplink_bytes, pf.bytes_requested);
}

TEST_F(ExtensionSimTest, PrefetchBeatsPlainHashingSometimesNotRelay) {
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(256);
  cfg.buckets = 4;
  cfg.sample_latency = false;
  core::Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(core::Variant::kPrefetch);
  sim.add_variant(core::Variant::kHashOnly);
  sim.run(*requests_);
  // Prefetch is a (wasteful) form of content backflow: it should at least
  // not fall far below hashing-only.
  EXPECT_GT(sim.metrics(core::Variant::kPrefetch).request_hit_rate(),
            sim.metrics(core::Variant::kHashOnly).request_hit_rate() - 0.05);
}

TEST_F(ExtensionSimTest, TransientOutagesDegradeGracefully) {
  const auto hit_rate_at = [&](double p) {
    core::SimConfig cfg;
    cfg.cache_capacity = util::mib(256);
    cfg.buckets = 4;
    cfg.sample_latency = false;
    cfg.transient_down_prob = p;
    core::Simulator sim(*shell_, *schedule_, cfg);
    sim.add_variant(core::Variant::kStarCdn);
    sim.run(*requests_);
    const auto& m = sim.metrics(core::Variant::kStarCdn);
    EXPECT_EQ(m.hits() + m.misses, m.requests);
    if (p == 0.0) {
      EXPECT_EQ(m.transient_misses, 0u);
    }
    if (p > 0.0) {
      EXPECT_GT(m.transient_misses, 0u);
    }
    return m.request_hit_rate();
  };
  const double healthy = hit_rate_at(0.0);
  const double degraded = hit_rate_at(0.10);
  EXPECT_GT(healthy, degraded);
  // ~10% downtime must not cost much more than ~10 points of hit rate.
  EXPECT_LT(healthy - degraded, 0.15);
}

TEST_F(ExtensionSimTest, TransientMissCountTracksProbability) {
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(256);
  cfg.buckets = 4;
  cfg.sample_latency = false;
  cfg.transient_down_prob = 0.25;
  core::Simulator sim(*shell_, *schedule_, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.run(*requests_);
  const auto& m = sim.metrics(core::Variant::kStarCdn);
  const double fraction =
      static_cast<double>(m.transient_misses) / static_cast<double>(m.requests);
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

}  // namespace
}  // namespace starcdn
