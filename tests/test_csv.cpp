#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace starcdn::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "starcdn_csv_test.csv")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, RoundTripSimple) {
  {
    CsvWriter w(path_);
    w.row({"a", "b", "c"});
    w.row({"1", "2", "3"});
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvTest, QuotingRoundTrip) {
  {
    CsvWriter w(path_);
    w.row({"with,comma", "with\"quote", "plain"});
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "with,comma");
  EXPECT_EQ(rows[0][1], "with\"quote");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST(Csv, ParseLineBasics) {
  EXPECT_EQ(parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(parse_csv_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Csv, ParseQuotedFields) {
  EXPECT_EQ(parse_csv_line(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line(R"("he said ""hi""",x)"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(Csv, ParseStripsCarriageReturn) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_csv("/nonexistent/starcdn.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace starcdn::util
