// End-to-end integration: production workload -> SpaceGEN fit/regenerate ->
// full constellation simulation, checking the paper's headline claims hold
// through the whole pipeline.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "trace/spacegen.h"
#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn {
namespace {

TEST(EndToEnd, SpaceGenTraceDrivesSimulatorLikeProduction) {
  // 1. Production workload.
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 15'000;
  p.requests_per_weight = 8'000;
  p.duration_s = 2 * util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto production = w.generate();

  // 2. Fit SpaceGEN and regenerate a synthetic trace of similar length.
  const auto gen = trace::SpaceGen::fit(production);
  trace::SpaceGenConfig gen_cfg;
  gen_cfg.target_requests_per_location = 15'000;  // ~ production volume
  auto synthetic = gen.generate(gen_cfg);
  // Stretch synthetic timestamps to the same wall-clock span so orbital
  // dynamics are comparable.
  double max_ts = 1.0;
  for (const auto& t : synthetic) {
    if (!t.requests.empty()) {
      max_ts = std::max(max_ts, t.requests.back().timestamp_s);
    }
  }
  for (auto& t : synthetic) {
    for (auto& r : t.requests) r.timestamp_s *= p.duration_s / (max_ts + 1.0);
  }

  // 3. Simulate both against the same constellation (the Fig. 6e/6f check).
  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});
  core::SimConfig cfg;
  cfg.cache_capacity = util::mib(512);
  cfg.sample_latency = false;

  const auto hit_rate = [&](const trace::MultiTrace& traces) {
    core::Simulator sim(shell, schedule, cfg);
    sim.add_variant(core::Variant::kVanillaLru);
    sim.run(trace::merge_by_time(traces));
    return sim.metrics(core::Variant::kVanillaLru).request_hit_rate();
  };
  const double prod_hr = hit_rate(production);
  const double synth_hr = hit_rate(synthetic);
  // The paper reports a ~2% gap for satellite LRU simulations (§4.3) at
  // 400M requests/day; at our thousand-times-smaller scale the synthetic
  // trace underestimates cross-location temporal clustering (§7 limitation)
  // so the band is wider.
  EXPECT_NEAR(prod_hr, synth_hr, 0.13);
  EXPECT_GT(prod_hr, 0.1);
}

TEST(EndToEnd, HeadlineClaimsAtTargetConfiguration) {
  // §5 headline numbers (scaled): StarCDN lifts the hit rate well above
  // naive LRU, saves a large fraction of uplink, and improves median
  // latency over bent-pipe Starlink by >2x.
  auto p = trace::default_params(trace::TrafficClass::kVideo);
  p.object_count = 40'000;
  p.requests_per_weight = 30'000;
  p.duration_s = 4 * util::kHour.value();
  const trace::WorkloadModel w(util::paper_cities(), p);
  const auto requests = trace::merge_by_time(w.generate());

  const orbit::Constellation shell{orbit::WalkerParams{}};
  const sched::LinkSchedule schedule(shell, util::paper_cities(), util::Seconds{p.duration_s});
  core::SimConfig cfg;
  cfg.cache_capacity = util::gib(1);
  cfg.buckets = 9;
  core::Simulator sim(shell, schedule, cfg);
  sim.add_variant(core::Variant::kStarCdn);
  sim.add_variant(core::Variant::kVanillaLru);
  sim.run(requests);

  const auto& star = sim.metrics(core::Variant::kStarCdn);
  const auto& lru = sim.metrics(core::Variant::kVanillaLru);

  EXPECT_GT(star.request_hit_rate(), lru.request_hit_rate() + 0.05);
  EXPECT_LT(star.normalized_uplink(), lru.normalized_uplink());

  // Median latency: StarCDN vs the 55 ms bent-pipe baseline.
  net::LatencyModel lat;
  util::Rng rng(5);
  util::QuantileSampler bentpipe;
  for (int i = 0; i < 20'000; ++i) {
    bentpipe.add(lat.bentpipe_starlink(util::Millis{2.94}, rng).value());
  }
  EXPECT_LT(star.latency_ms.median() * 2.0, bentpipe.median());
}

}  // namespace
}  // namespace starcdn
