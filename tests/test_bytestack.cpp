#include "trace/bytestack.h"

#include <gtest/gtest.h>

#include <deque>

#include "util/rng.h"

namespace starcdn::trace {
namespace {

StackItem item(ObjectId id, Bytes size) {
  StackItem it;
  it.object = id;
  it.size = size;
  it.popularity = 1;
  return it;
}

TEST(ByteStack, PushPopFifoOrder) {
  ByteStack s;
  EXPECT_TRUE(s.empty());
  s.push_back(item(1, 10));
  s.push_back(item(2, 20));
  s.push_front(item(0, 5));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.total_bytes(), 35u);
  EXPECT_EQ(s.pop_front().object, 0u);
  EXPECT_EQ(s.pop_front().object, 1u);
  EXPECT_EQ(s.pop_front().object, 2u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_bytes(), 0u);
}

TEST(ByteStack, InsertAtDepthZeroIsFront) {
  ByteStack s;
  s.push_back(item(1, 10));
  s.insert_at_depth(0, item(2, 5));
  EXPECT_EQ(s.pop_front().object, 2u);
}

TEST(ByteStack, InsertBeyondTotalIsBack) {
  ByteStack s;
  s.push_back(item(1, 10));
  s.push_back(item(2, 10));
  s.insert_at_depth(10'000, item(3, 5));
  s.pop_front();
  s.pop_front();
  EXPECT_EQ(s.pop_front().object, 3u);
}

TEST(ByteStack, InsertAtExactBoundary) {
  ByteStack s;
  s.push_back(item(1, 10));
  s.push_back(item(2, 10));
  // depth 10: exactly after object 1.
  s.insert_at_depth(10, item(3, 5));
  EXPECT_EQ(s.pop_front().object, 1u);
  EXPECT_EQ(s.pop_front().object, 3u);
  EXPECT_EQ(s.pop_front().object, 2u);
}

TEST(ByteStack, MoveSemantics) {
  ByteStack a;
  a.push_back(item(1, 10));
  ByteStack b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  ByteStack c;
  c = std::move(b);
  EXPECT_EQ(c.pop_front().object, 1u);
}

/// Reference model: std::deque with linear insertion.
class NaiveStack {
 public:
  void push_front(const StackItem& it) { d_.push_front(it); }
  void push_back(const StackItem& it) { d_.push_back(it); }
  StackItem pop_front() {
    StackItem it = d_.front();
    d_.pop_front();
    return it;
  }
  void insert_at_depth(Bytes depth, const StackItem& it) {
    Bytes acc = 0;
    auto pos = d_.begin();
    while (pos != d_.end() && acc < depth) {
      acc += pos->size;
      ++pos;
    }
    d_.insert(pos, it);
  }
  std::size_t size() const { return d_.size(); }
  Bytes total() const {
    Bytes b = 0;
    for (const auto& it : d_) b += it.size;
    return b;
  }

 private:
  std::deque<StackItem> d_;
};

TEST(ByteStack, MatchesNaiveModelUnderRandomOps) {
  ByteStack fast;
  NaiveStack naive;
  util::Rng rng(33);
  ObjectId next = 0;
  for (int step = 0; step < 20'000; ++step) {
    const int op = static_cast<int>(rng.below(4));
    if (op == 0 || fast.empty()) {
      const StackItem it = item(next++, 1 + rng.below(50));
      fast.push_back(it);
      naive.push_back(it);
    } else if (op == 1) {
      const StackItem a = fast.pop_front();
      const StackItem b = naive.pop_front();
      ASSERT_EQ(a.object, b.object) << "step " << step;
    } else {
      const Bytes depth = rng.below(fast.total_bytes() + 100);
      const StackItem it = item(next++, 1 + rng.below(50));
      fast.insert_at_depth(depth, it);
      naive.insert_at_depth(depth, it);
    }
    ASSERT_EQ(fast.size(), naive.size());
    ASSERT_EQ(fast.total_bytes(), naive.total());
  }
  // Drain and compare complete order.
  while (!fast.empty()) {
    ASSERT_EQ(fast.pop_front().object, naive.pop_front().object);
  }
}

}  // namespace
}  // namespace starcdn::trace
