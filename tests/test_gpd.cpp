#include "trace/gpd.h"

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::trace {
namespace {

MultiTrace two_location_trace() {
  MultiTrace t(2);
  t[0].location = 0;
  t[1].location = 1;
  // Object 1: popular in both; object 2: only location 0; object 3: only 1.
  for (int i = 0; i < 10; ++i) t[0].requests.push_back({1.0 * i, 1, 100, 0});
  for (int i = 0; i < 5; ++i) t[1].requests.push_back({1.0 * i, 1, 100, 1});
  for (int i = 0; i < 3; ++i) t[0].requests.push_back({20.0 + i, 2, 50, 0});
  t[1].requests.push_back({30.0, 3, 25, 1});
  return t;
}

TEST(Gpd, ExtractCountsPopularityPerLocation) {
  const auto gpd = GlobalPopularityDistribution::extract(two_location_trace());
  EXPECT_EQ(gpd.locations(), 2u);
  EXPECT_EQ(gpd.object_count(), 3u);

  // Find object 1's tuple via its size.
  bool found_shared = false;
  for (const auto& t : gpd.tuples()) {
    if (t.size == 100) {
      found_shared = true;
      EXPECT_EQ(t.spread(), 2u);
      EXPECT_EQ(t.popularity_at(0), 10u);
      EXPECT_EQ(t.popularity_at(1), 5u);
      EXPECT_EQ(t.popularity_at(7), 0u);
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(Gpd, SpreadOfLocalObjectsIsOne) {
  const auto gpd = GlobalPopularityDistribution::extract(two_location_trace());
  int singles = 0;
  for (const auto& t : gpd.tuples()) singles += t.spread() == 1;
  EXPECT_EQ(singles, 2);
}

TEST(Gpd, SampleReturnsExistingTuples) {
  const auto gpd = GlobalPopularityDistribution::extract(two_location_trace());
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto& t = gpd.sample(rng);
    EXPECT_TRUE(t.size == 100 || t.size == 50 || t.size == 25);
  }
}

TEST(Gpd, WorkloadSpreadStructure) {
  // The production workload's GPD must show: most objects regional (low
  // spread), some shared broadly — the Fig. 6a "object spread" shape.
  auto p = default_params(TrafficClass::kVideo);
  p.object_count = 20'000;
  p.requests_per_weight = 10'000;
  p.duration_s = util::kHour.value();
  const WorkloadModel w(util::paper_cities(), p);
  const auto gpd = GlobalPopularityDistribution::extract(w.generate());

  std::size_t spread1 = 0, spread_all = 0;
  for (const auto& t : gpd.tuples()) {
    if (t.spread() == 1) ++spread1;
    if (t.spread() == gpd.locations()) ++spread_all;
  }
  EXPECT_GT(spread1, gpd.object_count() / 4);  // regional majority
  EXPECT_GT(spread_all, 0u);                   // some global objects
  EXPECT_LT(spread_all, spread1);
}

}  // namespace
}  // namespace starcdn::trace
