#include "orbit/tle.h"

#include <gtest/gtest.h>

#include "util/geo.h"
#include "util/units.h"

namespace starcdn::orbit {
namespace {

// A real ISS TLE (checksums valid).
constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

TEST(Tle, ChecksumOfRealLine) {
  EXPECT_EQ(tle_checksum(kIssL1), 7);
  EXPECT_EQ(tle_checksum(kIssL2), 7);
}

TEST(Tle, ParseRealTle) {
  const auto t = parse_tle(kIssL1, kIssL2, "ISS (ZARYA)");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->name, "ISS (ZARYA)");
  EXPECT_EQ(t->catalog_number, 25544);
  EXPECT_NEAR(t->inclination_deg, 51.6416, 1e-4);
  EXPECT_NEAR(t->raan_deg, 247.4627, 1e-4);
  EXPECT_NEAR(t->eccentricity, 0.0006703, 1e-7);
  EXPECT_NEAR(t->mean_motion_rev_day, 15.72125391, 1e-6);
}

TEST(Tle, ParseRejectsBadChecksum) {
  std::string bad{kIssL1};
  bad[68] = '0';  // corrupt the checksum digit
  EXPECT_FALSE(parse_tle(bad, kIssL2).has_value());
}

TEST(Tle, ParseRejectsShortLines) {
  EXPECT_FALSE(parse_tle("1 25544", kIssL2).has_value());
}

TEST(Tle, ParseRejectsSwappedLines) {
  EXPECT_FALSE(parse_tle(kIssL2, kIssL1).has_value());
}

TEST(Tle, ToCircularAltitude) {
  const auto t = parse_tle(kIssL1, kIssL2);
  ASSERT_TRUE(t.has_value());
  const auto e = t->to_circular();
  // The ISS orbits around 350-420 km altitude.
  const double alt = e.semi_major_axis.value() - util::kEarthRadiusKm;
  EXPECT_GT(alt, 300.0);
  EXPECT_LT(alt, 450.0);
  EXPECT_NEAR(e.inclination.value(), util::to_radians(util::Degrees{51.6416}).value(), 1e-6);
}

TEST(Tle, FormatRoundTrip) {
  Tle t;
  t.name = "STARCDN-TEST";
  t.catalog_number = 90001;
  t.inclination_deg = 53.0;
  t.raan_deg = 123.4567;
  t.eccentricity = 0.0001234;
  t.arg_perigee_deg = 90.0;
  t.mean_anomaly_deg = 45.5;
  t.mean_motion_rev_day = 15.05;

  const std::string text = format_tle(t);
  const auto parsed = parse_tle_file(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "STARCDN-TEST");
  EXPECT_EQ(parsed[0].catalog_number, 90001);
  EXPECT_NEAR(parsed[0].inclination_deg, 53.0, 1e-3);
  EXPECT_NEAR(parsed[0].raan_deg, 123.4567, 1e-3);
  EXPECT_NEAR(parsed[0].eccentricity, 0.0001234, 1e-7);
  EXPECT_NEAR(parsed[0].mean_motion_rev_day, 15.05, 1e-6);
}

TEST(Tle, ParseFileSkipsMalformedEntries) {
  std::string text = std::string("GOOD\n") + kIssL1 + "\n" + kIssL2 + "\n" +
                     "BAD\n1 corrupted line\n2 also corrupted\n";
  const auto parsed = parse_tle_file(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "GOOD");
}

TEST(Tle, ParseFileHandlesMissingNames) {
  const std::string text = std::string(kIssL1) + "\n" + kIssL2 + "\n";
  const auto parsed = parse_tle_file(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].name.empty());
}

}  // namespace
}  // namespace starcdn::orbit
