// Observability-layer tests (DESIGN.md §11): registry/shard determinism
// across thread counts, EpochSeries golden CSV, chrome-trace JSON schema,
// profiler bitwise-neutrality, and the SimConfig::Builder validations.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_report.h"
#include "core/simulator.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/series.h"
#include "obs/tracer.h"
#include "trace/workload.h"
#include "util/geo.h"
#include "util/parallel.h"

namespace starcdn {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader, just enough to validate the
// tracer / RunReport exports without pulling in a dependency. Numbers are
// kept as raw text (the tests only check presence and a few exact values).
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string scalar;  // number text or string value
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  void literal(const std::string& word) {
    skip_ws();
    if (s_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
  }

  Json boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    Json v;
    v.type = Json::Type::kNumber;
    v.scalar = s_.substr(start, pos_ - start);
    return v;
  }

  Json string_value() {
    expect('"');
    Json v;
    v.type = Json::Type::kString;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case 'n': v.scalar += '\n'; break;
          case 't': v.scalar += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;  // validated, not decoded; tests use ASCII
            v.scalar += '?';
            break;
          default: v.scalar += e; break;
        }
      } else {
        v.scalar += c;
      }
    }
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const Json key = string_value();
      expect(':');
      v.object.emplace(key.scalar, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

// ---------------------------------------------------------------------------
// Registry + Shard unit tests.

TEST(Registry, ReRegisteringByNameReturnsSameHandle) {
  obs::Registry r;
  const obs::CounterId a = r.counter("requests", "help");
  const obs::CounterId b = r.counter("requests", "ignored on re-fetch");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(r.counters(), 1u);
  EXPECT_EQ(r.name_of(a), "requests");
}

TEST(Registry, KindCollisionThrows) {
  obs::Registry r;
  (void)r.counter("x", "");
  EXPECT_THROW((void)r.gauge("x", ""), std::invalid_argument);
  EXPECT_THROW((void)r.histogram("x", "", {1.0}), std::invalid_argument);
}

TEST(Registry, UnsortedHistogramBoundsThrow) {
  obs::Registry r;
  EXPECT_THROW((void)r.histogram("h", "", {10.0, 5.0}), std::invalid_argument);
}

TEST(Registry, MergeFoldsShardsInArgumentOrder) {
  obs::Registry r;
  const obs::CounterId c = r.counter("c", "");
  const obs::GaugeId g = r.gauge("g", "");
  const obs::HistogramId h = r.histogram("h", "", {1.0, 2.0});

  obs::Shard a(r);
  obs::Shard b(r);
  a.add(c, 3);
  b.add(c, 4);
  a.set(g, 1.0);
  b.set(g, 2.0);
  a.observe(h, 0.5);
  b.observe(h, 1.5);

  const obs::Shard merged = obs::merge(r, {&a, &b});
  EXPECT_EQ(merged.value(c), 7u);
  // Gauges are last-writer-wins in merge order: b set it last.
  EXPECT_EQ(merged.value(g), 2.0);
  const auto& cells = merged.cells(h);
  EXPECT_EQ(cells.count, 2u);
  EXPECT_DOUBLE_EQ(cells.sum, 2.0);
  EXPECT_EQ(cells.counts[0], 1u);  // <= 1.0
  EXPECT_EQ(cells.counts[1], 1u);  // <= 2.0

  // Swapping the order changes only the gauge (last writer), nothing else.
  const obs::Shard swapped = obs::merge(r, {&b, &a});
  EXPECT_EQ(swapped.value(c), 7u);
  EXPECT_EQ(swapped.value(g), 1.0);
}

// ---------------------------------------------------------------------------
// EpochSeries golden CSV.

TEST(EpochSeries, GoldenCsv) {
  obs::Registry r;
  const obs::CounterId a = r.counter("a", "");
  const obs::CounterId b = r.counter("b", "");
  obs::Shard shard(r);
  obs::EpochSeries series(&r, {a, b});

  series.advance_to(0, shard);  // no-op: epoch 0 is already open
  shard.add(a, 1);
  shard.add(b, 10);
  series.advance_to(1, shard);  // closes epoch 0
  shard.add(a, 2);
  shard.add(b, 20);
  series.advance_to(3, shard);  // closes epochs 1 and 2 (2 is empty)
  shard.add(a, 4);
  shard.add(b, 40);
  series.finish(shard);  // closes the partial epoch 3
  series.finish(shard);  // idempotent

  const obs::SeriesTable t = series.table(15.0);
  ASSERT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.at(3, 0), 7u);    // cumulative
  EXPECT_EQ(t.delta(2, 1), 0u);  // quiet epoch

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "epoch,t_end_s,a,b\n"
            "0,15.000000,1,10\n"
            "1,30.000000,2,20\n"
            "2,45.000000,0,0\n"
            "3,60.000000,4,40\n");
}

TEST(EpochSeries, DerivedColumnsAppendAtExport) {
  obs::Registry r;
  const obs::CounterId hits = r.counter("hits", "");
  const obs::CounterId reqs = r.counter("reqs", "");
  obs::Shard shard(r);
  obs::EpochSeries series(&r, {hits, reqs});
  shard.add(hits, 1);
  shard.add(reqs, 4);
  series.finish(shard);

  const obs::SeriesTable t = series.table(15.0);
  const std::size_t hc = t.column("hits");
  const std::size_t rc = t.column("reqs");
  std::ostringstream csv;
  t.write_csv(csv, {{"hit_rate", [hc, rc](const obs::SeriesTable& tt,
                                          std::size_t row) {
                       const double d = static_cast<double>(tt.delta(row, rc));
                       return d == 0.0
                                  ? 0.0
                                  : static_cast<double>(tt.delta(row, hc)) / d;
                     }}});
  EXPECT_EQ(csv.str(),
            "epoch,t_end_s,hits,reqs,hit_rate\n"
            "0,15.000000,1,4,0.250000\n");
}

// ---------------------------------------------------------------------------
// Tracer: chrome://tracing JSON object-format schema.

TEST(Tracer, ChromeTraceSchema) {
  obs::Tracer tracer;
  tracer.complete("phase_a", "core", 10, 25,
                  {obs::arg("requests", std::uint64_t{42})});
  tracer.instant("epoch", "sim", {obs::arg("idx", std::uint64_t{7})});
  {
    obs::TraceSpan span(&tracer, "scoped", "core");
  }
  EXPECT_EQ(tracer.events(), 3u);

  std::ostringstream os;
  tracer.write_json(os);
  const Json root = parse_json(os.str());
  ASSERT_EQ(root.type, Json::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  EXPECT_EQ(root.at("displayTimeUnit").scalar, "ms");

  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.type, Json::Type::kArray);
  ASSERT_EQ(events.array.size(), 3u);
  for (const Json& e : events.array) {
    ASSERT_EQ(e.type, Json::Type::kObject);
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("cat"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").scalar;
    EXPECT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    if (ph == "X") {
      EXPECT_TRUE(e.has("dur"));
    }
  }

  const Json& first = events.array[0];
  EXPECT_EQ(first.at("name").scalar, "phase_a");
  EXPECT_EQ(first.at("ts").scalar, "10");
  EXPECT_EQ(first.at("dur").scalar, "25");
  EXPECT_EQ(first.at("args").at("requests").scalar, "42");

  const Json& second = events.array[1];
  EXPECT_EQ(second.at("ph").scalar, "i");
  EXPECT_EQ(second.at("args").at("idx").scalar, "7");
}

TEST(Tracer, NullTracerIsSafe) {
  obs::set_tracer(nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
  // Spans on a null tracer are no-ops (the hot wiring relies on this).
  obs::TraceSpan span(nullptr, "noop", "core");
  span.set_args({obs::arg("k", "v")});
}

// ---------------------------------------------------------------------------
// Simulator-level fixture: a small scenario shared by the determinism,
// profiler-neutrality, series and sink tests.

class ObsSimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    shell_ = new orbit::Constellation{orbit::WalkerParams{}};
    auto p = trace::default_params(trace::TrafficClass::kVideo);
    p.object_count = 10'000;
    p.requests_per_weight = 4'000;
    p.duration_s = 1 * util::kHour.value();
    const trace::WorkloadModel workload(util::paper_cities(), p);
    requests_ = new std::vector<trace::Request>(
        trace::merge_by_time(workload.generate()));
    schedule_ = new sched::LinkSchedule(*shell_, util::paper_cities(),
                                        util::Seconds{p.duration_s});
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete schedule_;
    delete shell_;
    requests_ = nullptr;
    schedule_ = nullptr;
    shell_ = nullptr;
  }

  static core::SimConfig small_config() {
    return core::SimConfig::Builder{}
        .cache_capacity(util::mib(128))
        .buckets(4)
        .variants({core::Variant::kStarCdn, core::Variant::kVanillaLru,
                   core::Variant::kStatic})
        .build();
  }

  static core::RunReport run_report(const core::SimConfig& cfg) {
    core::Simulator sim(*shell_, *schedule_, cfg);
    sim.run(*requests_);
    return sim.finish();
  }

  static orbit::Constellation* shell_;
  static std::vector<trace::Request>* requests_;
  static sched::LinkSchedule* schedule_;
};

orbit::Constellation* ObsSimTest::shell_ = nullptr;
std::vector<trace::Request>* ObsSimTest::requests_ = nullptr;
sched::LinkSchedule* ObsSimTest::schedule_ = nullptr;

void expect_reports_bitwise_equal(const core::RunReport& a,
                                  const core::RunReport& b) {
  ASSERT_EQ(a.variants.size(), b.variants.size());
  ASSERT_EQ(a.totals, b.totals);
  for (std::size_t i = 0; i < a.variants.size(); ++i) {
    const core::VariantReport& va = a.variants[i];
    const core::VariantReport& vb = b.variants[i];
    EXPECT_EQ(va.variant, vb.variant);
    EXPECT_EQ(va.counters, vb.counters) << "variant " << va.name;
    EXPECT_EQ(va.series.columns, vb.series.columns);
    EXPECT_EQ(va.series.epochs, vb.series.epochs) << "variant " << va.name;
    EXPECT_EQ(va.series.values, vb.series.values) << "variant " << va.name;
    EXPECT_EQ(va.metrics.latency_ms.samples(), vb.metrics.latency_ms.samples())
        << "variant " << va.name;
  }
}

// The ISSUE's headline contract: merged registry output is bitwise
// identical for any STARCDN_THREADS value.
TEST_F(ObsSimTest, RegistryBitwiseIdenticalAcrossThreadCounts) {
  util::set_parallel_threads(1);
  const core::RunReport baseline = run_report(small_config());
  EXPECT_GT(baseline.totals.size(), 0u);
  for (const int threads : {2, 4, 8}) {
    util::set_parallel_threads(threads);
    const core::RunReport r = run_report(small_config());
    expect_reports_bitwise_equal(baseline, r);
  }
  util::set_parallel_threads(0);
}

// Timers observe the clock only; toggling them must not move a single bit
// of simulation output. (In default builds the scopes are compiled out and
// this degenerates to a repeat-run determinism check — still useful.)
TEST_F(ObsSimTest, ProfilerTogglingIsBitwiseNeutral) {
  obs::set_prof_enabled(false);
  const core::RunReport off = run_report(small_config());
  obs::set_prof_enabled(true);
  obs::profile_reset();
  const core::RunReport on = run_report(small_config());
  expect_reports_bitwise_equal(off, on);

  EXPECT_EQ(on.profile.compiled, obs::prof_compiled());
  if (!obs::prof_compiled()) {
    EXPECT_TRUE(on.profile.entries.empty());
  } else {
    EXPECT_FALSE(on.profile.entries.empty());
  }
}

TEST_F(ObsSimTest, SeriesMatchesFinalTotalsAndTracksHandovers) {
  const core::RunReport report = run_report(small_config());
  for (const core::VariantReport& vr : report.variants) {
    ASSERT_GT(vr.series.rows(), 0u) << vr.name;
    const std::size_t req = vr.series.column("requests");
    const std::size_t hand = vr.series.column("handovers");
    ASSERT_NE(req, std::string::npos);
    ASSERT_NE(hand, std::string::npos);
    // Cumulative last row == end-of-run totals: one source of truth.
    EXPECT_EQ(vr.series.at(vr.series.rows() - 1, req), vr.metrics.requests);
    EXPECT_EQ(vr.series.at(vr.series.rows() - 1, hand),
              vr.metrics.handovers);
  }
  // LEO first-contact satellites change every few epochs; the static
  // baseline never hands over by construction.
  EXPECT_GT(report.variant(core::Variant::kStarCdn).metrics.handovers, 0u);
  EXPECT_EQ(report.variant(core::Variant::kStatic).metrics.handovers, 0u);
}

TEST_F(ObsSimTest, RecordEpochSeriesOffDisablesRows) {
  auto cfg = small_config();
  cfg.record_epoch_series = false;
  const core::RunReport report = run_report(cfg);
  for (const core::VariantReport& vr : report.variants) {
    EXPECT_EQ(vr.series.rows(), 0u);
  }
  // Metrics still flow through the registry regardless.
  EXPECT_GT(report.variant(core::Variant::kStarCdn).metrics.requests, 0u);
}

TEST_F(ObsSimTest, RunReportJsonIsWellFormed) {
  const core::RunReport report = run_report(small_config());
  std::ostringstream os;
  report.write_json(os);
  const Json root = parse_json(os.str());
  ASSERT_TRUE(root.has("variants"));
  const Json& variants = root.at("variants");
  ASSERT_EQ(variants.type, Json::Type::kObject);
  ASSERT_EQ(variants.object.size(), report.variants.size());
  for (const core::VariantReport& vr : report.variants) {
    ASSERT_TRUE(variants.has(vr.name)) << vr.name;
    const Json& v = variants.at(vr.name);
    EXPECT_TRUE(v.has("counters"));
    EXPECT_TRUE(v.has("summary"));
    EXPECT_TRUE(v.has("series"));
    EXPECT_EQ(v.at("counters").at("requests").scalar,
              std::to_string(vr.metrics.requests));
  }
  ASSERT_TRUE(root.has("totals"));
  EXPECT_TRUE(root.at("totals").has("requests"));
}

TEST_F(ObsSimTest, SinksFireOnFinishInRegistrationOrder) {
  core::Simulator sim(*shell_, *schedule_, small_config());
  std::ostringstream summary_out;
  core::SummarySink summary(summary_out);
  sim.add_sink(summary);
  sim.run(*requests_);
  const core::RunReport report = sim.finish();
  EXPECT_NE(summary_out.str().find("StarCDN"), std::string::npos);
  EXPECT_NE(summary_out.str().find("req hit rate"), std::string::npos);
  EXPECT_GT(report.variant(core::Variant::kStarCdn).metrics.requests, 0u);
}

// ---------------------------------------------------------------------------
// SimConfig::Builder validation + the latency reservoir knob.

TEST(SimConfigBuilder, RejectsNonSquareBuckets) {
  EXPECT_THROW((void)core::SimConfig::Builder{}.buckets(5).build(),
               std::invalid_argument);
}

TEST(SimConfigBuilder, RejectsZeroCapacity) {
  EXPECT_THROW(
      (void)core::SimConfig::Builder{}.cache_capacity(util::Bytes{0}).build(),
      std::invalid_argument);
}

TEST(SimConfigBuilder, RejectsTransientProbabilityOutOfRange) {
  EXPECT_THROW((void)core::SimConfig::Builder{}
                   .transient_failures(1.5, util::Seconds{300.0})
                   .build(),
               std::invalid_argument);
  EXPECT_THROW((void)core::SimConfig::Builder{}
                   .transient_failures(0.1, util::Seconds{0.0})
                   .build(),
               std::invalid_argument);
}

TEST(SimConfigBuilder, RejectsPrefetchWithoutPrefetchVariant) {
  EXPECT_THROW((void)core::SimConfig::Builder{}
                   .prefetch_objects_per_epoch(16)
                   .variants({core::Variant::kVanillaLru})
                   .build(),
               std::invalid_argument);
  // ...and accepts it once kPrefetch is actually in the variant list.
  const auto cfg = core::SimConfig::Builder{}
                       .prefetch_objects_per_epoch(16)
                       .variants({core::Variant::kVanillaLru,
                                  core::Variant::kPrefetch})
                       .build();
  EXPECT_EQ(cfg.prefetch_objects_per_epoch, 16);
}

TEST(SimConfigBuilder, FluentSettersLandInConfig) {
  const auto cfg = core::SimConfig::Builder{}
                       .cache_capacity(util::mib(64))
                       .buckets(9)
                       .seed(77)
                       .sample_latency(false)
                       .latency_reservoir(1'000)
                       .record_epoch_series(false)
                       .variant(core::Variant::kStarCdn)
                       .build();
  EXPECT_EQ(cfg.cache_capacity, util::mib(64));
  EXPECT_EQ(cfg.buckets, 9);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_FALSE(cfg.sample_latency);
  EXPECT_EQ(cfg.latency_reservoir, 1'000u);
  EXPECT_FALSE(cfg.record_epoch_series);
  ASSERT_EQ(cfg.variants.size(), 1u);
  EXPECT_EQ(cfg.variants[0], core::Variant::kStarCdn);
}

TEST(SimConfigBuilder, DefaultReservoirMatchesDocumentedConstant) {
  const core::SimConfig cfg;
  EXPECT_EQ(cfg.latency_reservoir, core::kDefaultLatencyReservoir);
}

TEST_F(ObsSimTest, LatencyReservoirKnobCapsSampleMemory) {
  auto cfg = small_config();
  cfg.latency_reservoir = 64;
  const core::RunReport report = run_report(cfg);
  const auto& m = report.variant(core::Variant::kStarCdn).metrics;
  EXPECT_LE(m.latency_ms.samples().size(), 64u);
  // count() still reflects every observation, only storage is capped.
  EXPECT_GT(m.latency_ms.count(), 64u);
}

}  // namespace
}  // namespace starcdn
