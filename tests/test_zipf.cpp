#include "trace/zipf.h"

#include <gtest/gtest.h>

namespace starcdn::trace {
namespace {

TEST(Zipf, PmfSumsToOneAndDecreases) {
  const ZipfSampler z(1'000, 1.0);
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    const double p = z.pmf(k);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(z.pmf(5'000), 0.0);
}

TEST(Zipf, HeadDominatesForLargeAlpha) {
  const ZipfSampler z(100'000, 1.2);
  // Top 100 ranks should hold a large share of mass at alpha 1.2.
  double head = 0.0;
  for (std::size_t k = 0; k < 100; ++k) head += z.pmf(k);
  EXPECT_GT(head, 0.5);
}

TEST(Zipf, SampleMatchesPmf) {
  const ZipfSampler z(50, 0.8);
  util::Rng rng(3);
  std::vector<int> counts(50, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kN), z.pmf(k),
                0.02 * z.pmf(0) + 0.002);
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
}

TEST(Zipf, EmptyThrows) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DiscreteSampler, RespectsWeights) {
  const DiscreteSampler s({1.0, 0.0, 3.0});
  util::Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[s.sample(rng)];
  EXPECT_NEAR(counts[0], 10'000, 500);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2], 30'000, 500);
}

TEST(DiscreteSampler, NegativeWeightsClampToZero) {
  const DiscreteSampler s({-5.0, 2.0});
  util::Rng rng(5);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(s.sample(rng), 1u);
}

TEST(DiscreteSampler, AllZeroThrows) {
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace starcdn::trace
