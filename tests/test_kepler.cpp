// Elliptical (full Keplerian) propagation and the uplink bandwidth meter.
#include <gtest/gtest.h>

#include "net/bandwidth.h"
#include "orbit/propagator.h"
#include "orbit/tle.h"
#include "util/units.h"

namespace starcdn {
namespace {

using orbit::KeplerianElements;

TEST(Kepler, SolverOnCircularOrbitIsIdentity) {
  for (double M = -3.0; M <= 3.0; M += 0.37) {
    EXPECT_NEAR(orbit::solve_kepler(util::Radians{M}, 0.0).value(), M, 1e-12);
  }
}

TEST(Kepler, SolverSatisfiesEquation) {
  for (const double e : {0.01, 0.1, 0.4, 0.7, 0.85}) {
    for (double M = 0.0; M < 6.28; M += 0.41) {
      const double E = orbit::solve_kepler(util::Radians{M}, e).value();
      EXPECT_NEAR(E - e * std::sin(E), M, 1e-10)
          << "e=" << e << " M=" << M;
    }
  }
}

KeplerianElements molniya_like() {
  KeplerianElements e;
  e.semi_major_axis = util::Km{26'600.0};
  e.eccentricity = 0.74;
  e.inclination = util::Radians{util::to_radians(util::Degrees{63.4}).value()};
  e.arg_perigee = util::Radians{util::to_radians(util::Degrees{270.0}).value()};
  return e;
}

TEST(Kepler, RadiusBoundedByApsides) {
  const auto e = molniya_like();
  const double perigee = e.semi_major_axis.value() * (1.0 - e.eccentricity);
  const double apogee = e.semi_major_axis.value() * (1.0 + e.eccentricity);
  const double T = 2.0 * M_PI / orbit::mean_motion_rad_s(e);
  double rmin = 1e18, rmax = 0.0;
  for (double t = 0.0; t < T; t += T / 500.0) {
    const double r = orbit::eci_position(e, util::Seconds{t}).norm();
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
    ASSERT_GE(r, perigee - 1.0);
    ASSERT_LE(r, apogee + 1.0);
  }
  EXPECT_NEAR(rmin, perigee, 5.0);
  EXPECT_NEAR(rmax, apogee, 5.0);
}

TEST(Kepler, ReducesToCircularAtZeroEccentricity) {
  orbit::CircularElements c;
  c.semi_major_axis = util::Km{6'921.0};
  c.inclination = util::Radians{util::to_radians(util::Degrees{53.0}).value()};
  c.raan = util::Radians{0.7};
  c.arg_latitude_epoch = util::Radians{1.3};
  KeplerianElements k;
  k.semi_major_axis = util::Km{c.semi_major_axis.value()};
  k.eccentricity = 0.0;
  k.inclination = util::Radians{c.inclination.value()};
  k.raan = util::Radians{c.raan.value()};
  k.arg_perigee = util::Radians{0.9};
  k.mean_anomaly_epoch = util::Radians{0.4};  // w + M = 1.3 = u0
  for (double t = 0.0; t < 6'000.0; t += 500.0) {
    const auto a = orbit::eci_position(c, util::Seconds{t});
    const auto b = orbit::eci_position(k, util::Seconds{t});
    EXPECT_NEAR(orbit::distance(a, b), 0.0, 0.5) << "t=" << t;
  }
}

TEST(Kepler, TleToKeplerianKeepsEccentricity) {
  orbit::Tle t;
  t.eccentricity = 0.0006703;
  t.inclination_deg = 51.64;
  t.arg_perigee_deg = 130.5;
  t.mean_anomaly_deg = 325.0;
  t.mean_motion_rev_day = 15.72;
  const auto e = t.to_keplerian();
  EXPECT_DOUBLE_EQ(e.eccentricity, 0.0006703);
  EXPECT_NEAR(e.arg_perigee.value(), util::to_radians(util::Degrees{130.5}).value(), 1e-12);
  // Same semi-major axis as the circular reduction.
  EXPECT_NEAR(e.semi_major_axis.value(), t.to_circular().semi_major_axis.value(), 1e-9);
}

// --- UplinkMeter ---------------------------------------------------------------

TEST(UplinkMeter, ThroughputArithmetic) {
  net::UplinkMeter meter(util::Seconds{15.0}, util::gbps(20.0));
  // 1 GB in one epoch = 8 Gb / 15 s ≈ 0.533 Gbps.
  meter.add(util::SatId{7}, util::EpochIdx{0}, 1'000'000'000);
  meter.flush();
  EXPECT_EQ(meter.throughput_gbps().count(), 1u);
  EXPECT_NEAR(meter.throughput_gbps().mean(), 0.533, 0.01);
  EXPECT_EQ(meter.overloaded_cells(), 0u);
  EXPECT_EQ(meter.total_bytes(), 1'000'000'000u);
}

TEST(UplinkMeter, AccumulatesWithinEpochSplitsAcross) {
  net::UplinkMeter meter(util::Seconds{15.0}, util::gbps(20.0));
  meter.add(util::SatId{1}, util::EpochIdx{0}, 500);
  meter.add(util::SatId{1}, util::EpochIdx{0}, 500);   // same cell
  meter.add(util::SatId{1}, util::EpochIdx{1}, 500);   // next epoch: first cell flushed
  meter.flush();
  EXPECT_EQ(meter.throughput_gbps().count(), 2u);
}

TEST(UplinkMeter, DetectsOverload) {
  net::UplinkMeter meter(util::Seconds{15.0}, util::gbps(20.0));
  // 20 Gbps * 15 s = 37.5 GB; exceed it.
  meter.add(util::SatId{3}, util::EpochIdx{0}, 40'000'000'000ULL);
  meter.flush();
  EXPECT_EQ(meter.overloaded_cells(), 1u);
}

TEST(UplinkMeter, SeparateSatellitesSeparateCells) {
  net::UplinkMeter meter;
  meter.add(util::SatId{1}, util::EpochIdx{0}, 100);
  meter.add(util::SatId{2}, util::EpochIdx{0}, 100);
  meter.flush();
  EXPECT_EQ(meter.throughput_gbps().count(), 2u);
}

}  // namespace
}  // namespace starcdn
