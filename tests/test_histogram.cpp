#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace starcdn::util {
namespace {

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, AddAndClamp) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(-5.0);   // clamps to first bin
  h.add(99.0);   // clamps to last bin
  h.add(9.999);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5, 3.0);
  h.add(2.5, 1.0);
  const auto pmf = h.pmf();
  EXPECT_DOUBLE_EQ(pmf[0], 0.75);
  EXPECT_DOUBLE_EQ(pmf[2], 0.25);
}

TEST(Histogram, CdfEndsAtOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  const auto cdf = h.cdf();
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Histogram, TvDistanceIdenticalIsZero) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9}) {
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(a.tv_distance(b), 0.0);
}

TEST(Histogram, TvDistanceDisjointIsOne) {
  Histogram a(0.0, 1.0, 2), b(0.0, 1.0, 2);
  a.add(0.25);
  b.add(0.75);
  EXPECT_DOUBLE_EQ(a.tv_distance(b), 1.0);
}

TEST(Histogram, TvDistanceMismatchedBinsThrows) {
  Histogram a(0.0, 1.0, 2);
  const Histogram b(0.0, 1.0, 3);
  EXPECT_THROW((void)a.tv_distance(b), std::invalid_argument);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace starcdn::util
