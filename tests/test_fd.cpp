#include "trace/fd.h"

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/geo.h"

namespace starcdn::trace {
namespace {

LocationTrace simple_trace() {
  LocationTrace t;
  t.location = 0;
  double ts = 0.0;
  // Three objects with distinct popularity; deterministic interleaving.
  for (int round = 0; round < 50; ++round) {
    t.requests.push_back({ts += 1.0, 1, 100, 0});
    t.requests.push_back({ts += 1.0, 2, 200, 0});
    if (round % 2 == 0) t.requests.push_back({ts += 1.0, 3, 400, 0});
  }
  return t;
}

TEST(FootprintDescriptor, BinningIsMonotone) {
  EXPECT_EQ(FootprintDescriptor::pop_bin(1), 0);
  EXPECT_LE(FootprintDescriptor::pop_bin(2), FootprintDescriptor::pop_bin(5));
  EXPECT_LT(FootprintDescriptor::pop_bin(10), FootprintDescriptor::pop_bin(1000));
  EXPECT_LE(FootprintDescriptor::size_bin(1), FootprintDescriptor::size_bin(1024));
  EXPECT_LT(FootprintDescriptor::size_bin(10 * 1024),
            FootprintDescriptor::size_bin(10 * 1024 * 1024));
}

TEST(FootprintDescriptor, ExtractBasicStatistics) {
  const auto trace = simple_trace();
  const auto fd = FootprintDescriptor::extract(trace);
  EXPECT_GT(fd.observed_reuses(), 0u);
  EXPECT_GT(fd.max_finite_stack_distance(), 0u);
  EXPECT_GT(fd.request_rate_per_s(), 0.0);
  EXPECT_GT(fd.mean_interarrival_s(), 0.0);
  // Rate: 125 requests over ~124 seconds of span.
  EXPECT_NEAR(fd.request_rate_per_s(), 1.0, 0.1);
}

TEST(FootprintDescriptor, EmptyTraceIsSafe) {
  const LocationTrace empty;
  const auto fd = FootprintDescriptor::extract(empty);
  EXPECT_EQ(fd.observed_reuses(), 0u);
  util::Rng rng(1);
  EXPECT_EQ(fd.sample_stack_distance(5, 100, rng), 0u);
}

TEST(FootprintDescriptor, SampledDistancesAreObservedValues) {
  const auto trace = simple_trace();
  const auto fd = FootprintDescriptor::extract(trace);
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Bytes d = fd.sample_stack_distance(50, 100, rng);
    EXPECT_LE(d, fd.max_finite_stack_distance());
  }
}

TEST(FootprintDescriptor, FallbackForUnseenCells) {
  const auto trace = simple_trace();
  const auto fd = FootprintDescriptor::extract(trace);
  util::Rng rng(3);
  // A popularity/size combination never observed: must fall back, not crash
  // or return garbage beyond the observed range.
  const Bytes d = fd.sample_stack_distance(1'000'000, 1'000'000'000, rng);
  EXPECT_LE(d, fd.max_finite_stack_distance());
}

TEST(FootprintDescriptor, RealWorkloadExtraction) {
  auto p = default_params(TrafficClass::kVideo);
  p.object_count = 10'000;
  p.duration_s = util::kHour.value();
  const WorkloadModel w(util::paper_cities(), p);
  const auto trace = w.generate_city(0, 20'000);
  const auto fd = FootprintDescriptor::extract(trace);
  // A heavy-tailed workload has substantial reuse.
  EXPECT_GT(fd.observed_reuses(), trace.requests.size() / 4);
  EXPECT_NEAR(fd.request_rate_per_s(),
              20'000.0 / util::kHour.value(),
              20'000.0 / util::kHour.value() * 0.2);
}

}  // namespace
}  // namespace starcdn::trace
