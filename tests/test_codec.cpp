#include "net/codec.h"

#include <gtest/gtest.h>

namespace starcdn::net {
namespace {

Message sample_message() {
  Message m;
  m.type = MessageType::kRelayProbe;
  m.src = 17;
  m.dst = 1295;
  m.object_id = 0xDEADBEEFCAFEBABEULL;
  m.size_bytes = 123'456'789;
  m.request_id = 42;
  m.flags = kFlagHit;
  m.payload = "starcdn";
  return m;
}

TEST(Codec, RoundTrip) {
  const Message m = sample_message();
  const auto bytes = encode(m);
  FrameDecoder dec;
  dec.feed(bytes);
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Codec, EmptyPayloadRoundTrip) {
  Message m;
  const auto bytes = encode(m);
  FrameDecoder dec;
  dec.feed(bytes);
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST(Codec, ByteAtATimeFeeding) {
  const Message m = sample_message();
  const auto bytes = encode(m);
  FrameDecoder dec;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_FALSE(dec.next().has_value()) << "message completed early at " << i;
    dec.feed({&bytes[i], 1});
  }
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST(Codec, MultipleMessagesInOneBuffer) {
  std::vector<std::uint8_t> buf;
  std::vector<Message> msgs;
  for (int i = 0; i < 5; ++i) {
    Message m = sample_message();
    m.request_id = static_cast<std::uint64_t>(i);
    m.payload = std::string(static_cast<std::size_t>(i * 100), 'x');
    msgs.push_back(m);
    const auto b = encode(m);
    buf.insert(buf.end(), b.begin(), b.end());
  }
  FrameDecoder dec;
  dec.feed(buf);
  for (const auto& expected : msgs) {
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, expected);
  }
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(Codec, CorruptLengthThrows) {
  FrameDecoder dec;
  const std::uint8_t bogus[] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  dec.feed(bogus);
  EXPECT_THROW((void)dec.next(), std::runtime_error);
}

TEST(Codec, WrongVersionThrows) {
  auto bytes = encode(sample_message());
  bytes[5] = 99;  // version low byte
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW((void)dec.next(), std::runtime_error);
}

TEST(Codec, PayloadLengthMismatchThrows) {
  auto bytes = encode(sample_message());
  bytes[4 + 43] ^= 0x01;  // corrupt payload_length low byte
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW((void)dec.next(), std::runtime_error);
}

TEST(Codec, OversizedPayloadRejectedAtEncode) {
  Message m;
  m.payload.assign(FrameDecoder::kMaxFrameBytes, 'a');
  EXPECT_THROW((void)encode(m), std::runtime_error);
}

class CodecTypeTest : public ::testing::TestWithParam<MessageType> {};

TEST_P(CodecTypeTest, AllTypesRoundTrip) {
  Message m = sample_message();
  m.type = GetParam();
  FrameDecoder dec;
  dec.feed(encode(m));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CodecTypeTest,
    ::testing::Values(MessageType::kRequest, MessageType::kResponse,
                      MessageType::kRelayProbe, MessageType::kRelayReply,
                      MessageType::kGroundFetch, MessageType::kGroundReply,
                      MessageType::kControl));

TEST(Codec, CompactionKeepsStreamIntact) {
  // Push enough traffic through one decoder to trigger internal compaction.
  FrameDecoder dec;
  Message m = sample_message();
  m.payload = std::string(1'000, 'p');
  const auto bytes = encode(m);
  for (int i = 0; i < 100; ++i) {
    dec.feed(bytes);
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, m.payload);
  }
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace starcdn::net
