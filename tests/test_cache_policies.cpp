// Parameterized behaviour + invariant tests shared by all eviction policies,
// plus policy-specific semantics for LRU, LFU, SIEVE and SLRU.
#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/gdsf.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "cache/sieve.h"
#include "cache/slru.h"
#include "util/rng.h"

namespace starcdn::cache {
namespace {

class PolicyTest : public ::testing::TestWithParam<Policy> {
 protected:
  std::unique_ptr<Cache> make(Bytes capacity) const {
    return make_cache(GetParam(), capacity);
  }
};

TEST_P(PolicyTest, FactoryReportsPolicy) {
  EXPECT_EQ(make(100)->policy(), GetParam());
}

TEST_P(PolicyTest, MissThenHit) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 10), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(1, 10), AccessResult::kHit);
  EXPECT_EQ(c->stats().requests, 2u);
  EXPECT_EQ(c->stats().hits, 1u);
  EXPECT_EQ(c->stats().bytes_requested, 20u);
  EXPECT_EQ(c->stats().bytes_hit, 10u);
}

TEST_P(PolicyTest, PeekHasNoSideEffects) {
  auto c = make(100);
  c->admit(1, 10);
  const auto before_count = c->object_count();
  EXPECT_TRUE(c->peek(1));
  EXPECT_FALSE(c->peek(2));
  EXPECT_EQ(c->object_count(), before_count);
  EXPECT_EQ(c->stats().requests, 0u);  // peek must not count as a request
}

TEST_P(PolicyTest, CapacityNeverExceeded) {
  auto c = make(1'000);
  util::Rng rng(11);
  for (int i = 0; i < 5'000; ++i) {
    const ObjectId id = rng.below(500);
    const Bytes size = 1 + rng.below(300);
    c->access(id, size);
    ASSERT_LE(c->used_bytes(), c->capacity())
        << to_string(GetParam()) << " overflowed at step " << i;
  }
  EXPECT_GT(c->stats().evictions, 0u);
}

TEST_P(PolicyTest, HitPlusMissEqualsRequests) {
  auto c = make(2'000);
  util::Rng rng(12);
  std::uint64_t hits = 0, misses = 0;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = c->access(rng.below(200), 1 + rng.below(100));
    (r == AccessResult::kHit ? hits : misses) += 1;
  }
  EXPECT_EQ(hits + misses, 3'000u);
  EXPECT_EQ(c->stats().hits, hits);
  EXPECT_EQ(c->stats().requests, 3'000u);
}

TEST_P(PolicyTest, ObjectLargerThanCapacityNeverAdmitted) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 500), AccessResult::kMissTooLarge);
  EXPECT_FALSE(c->peek(1));
  EXPECT_EQ(c->used_bytes(), 0u);
  // And it must not have evicted residents to try.
  c->admit(2, 50);
  c->admit(3, 1'000);
  EXPECT_TRUE(c->peek(2));
  EXPECT_FALSE(c->peek(3));
}

TEST_P(PolicyTest, EraseRemoves) {
  auto c = make(100);
  c->admit(1, 10);
  c->admit(2, 20);
  c->erase(1);
  EXPECT_FALSE(c->peek(1));
  EXPECT_TRUE(c->peek(2));
  EXPECT_EQ(c->used_bytes(), 20u);
  EXPECT_EQ(c->object_count(), 1u);
  c->erase(99);  // erasing a non-resident is a no-op
  EXPECT_EQ(c->object_count(), 1u);
}

TEST_P(PolicyTest, ClearEmptiesEverything) {
  auto c = make(100);
  for (ObjectId i = 0; i < 5; ++i) c->admit(i, 10);
  c->clear();
  EXPECT_EQ(c->used_bytes(), 0u);
  EXPECT_EQ(c->object_count(), 0u);
  for (ObjectId i = 0; i < 5; ++i) EXPECT_FALSE(c->peek(i));
  // The cache must remain usable after clear.
  EXPECT_EQ(c->access(7, 10), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(7, 10), AccessResult::kHit);
}

TEST_P(PolicyTest, ReAdmitIsIdempotent) {
  auto c = make(100);
  c->admit(1, 10);
  c->admit(1, 10);
  EXPECT_EQ(c->object_count(), 1u);
  EXPECT_EQ(c->used_bytes(), 10u);
}

TEST_P(PolicyTest, EvictionMakesRoomForLargeObject) {
  auto c = make(100);
  for (ObjectId i = 0; i < 10; ++i) c->admit(i, 10);
  EXPECT_EQ(c->used_bytes(), 100u);
  c->admit(100, 95);  // must evict nearly everything
  EXPECT_TRUE(c->peek(100));
  EXPECT_LE(c->used_bytes(), 100u);
}

TEST_P(PolicyTest, CountObjectBookkeeping) {
  auto c = make(1'000);
  util::Rng rng(13);
  for (int i = 0; i < 2'000; ++i) {
    c->access(rng.below(100), 1 + rng.below(50));
    // Recount by peeking all possible ids: used bytes must equal the sum of
    // resident sizes — detected via count monotonicity here; exact byte
    // audit happens in the policy-specific tests.
    ASSERT_LE(c->object_count(), 100u);
  }
}

TEST_P(PolicyTest, ZeroByteObjectsSupported) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 0), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(1, 0), AccessResult::kHit);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(Policy::kLru, Policy::kLfu,
                                           Policy::kFifo, Policy::kSieve,
                                           Policy::kSlru, Policy::kGdsf),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- Policy-specific semantics ------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  EXPECT_TRUE(c.touch(1));  // 2 is now the LRU victim
  c.admit(4, 10);
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(3));
  EXPECT_TRUE(c.peek(4));
}

TEST(Lru, VictimOrderTracksTouches) {
  LruCache c(100);
  c.admit(1, 10);
  c.admit(2, 10);
  EXPECT_EQ(c.lru_victim(), 1u);
  c.touch(1);
  EXPECT_EQ(c.lru_victim(), 2u);
}

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);
  c.touch(1);
  c.touch(3);
  c.admit(4, 10);  // 2 has the lowest frequency
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(3));
}

TEST(Lfu, FrequencyCounting) {
  LfuCache c(100);
  c.admit(1, 10);
  EXPECT_EQ(c.frequency(1), 1u);
  c.touch(1);
  c.touch(1);
  EXPECT_EQ(c.frequency(1), 3u);
  EXPECT_EQ(c.frequency(999), 0u);
}

TEST(Lfu, TieBrokenByRecencyWithinFrequency) {
  LfuCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);  // all at frequency 1; LRU within the bucket is 1
  c.admit(4, 10);
  EXPECT_FALSE(c.peek(1));
}

TEST(Sieve, HitsDoNotReorder) {
  // SIEVE: a hit only marks the visited bit; eviction skips visited entries
  // once, clearing them.
  SieveCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);      // 1 is visited (it is the tail)
  c.admit(4, 10);  // hand clears 1's bit, evicts 2 (first unvisited)
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(3));
  EXPECT_TRUE(c.peek(4));
}

TEST(Sieve, SweepsWholeListWhenAllVisited) {
  SieveCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);
  c.touch(2);
  c.touch(3);
  c.admit(4, 10);  // hand clears all bits then evicts the tail (1)
  EXPECT_FALSE(c.peek(1));
  EXPECT_EQ(c.object_count(), 3u);
}

TEST(Sieve, EraseNextToHandIsSafe) {
  SieveCache c(40);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.admit(4, 10);
  c.touch(1);
  c.admit(5, 10);  // moves hand off the tail
  c.erase(1);      // erase where the hand may sit
  c.admit(6, 10);
  c.admit(7, 10);  // keep evicting; must not crash or corrupt
  EXPECT_LE(c.used_bytes(), c.capacity());
}

TEST(Gdsf, SmallPopularBeatsLargeCold) {
  // GDSF utility = clock + freq/size: a small, re-referenced object must
  // outlive a large one-hit object under pressure.
  GdsfCache c(1'000);
  c.admit(1, 100);   // small
  c.admit(2, 800);   // large
  c.touch(1);
  c.touch(1);
  c.admit(3, 600);   // forces eviction; 2 has the lowest utility
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(3));
}

TEST(Gdsf, ClockInflatesOnEviction) {
  GdsfCache c(100);
  EXPECT_DOUBLE_EQ(c.clock(), 0.0);
  c.admit(1, 100);
  c.admit(2, 100);  // evicts 1
  EXPECT_GT(c.clock(), 0.0);
}

TEST(Gdsf, FrequencyRaisesUtility) {
  GdsfCache c(300);
  c.admit(1, 100);
  c.admit(2, 100);
  c.admit(3, 100);
  c.touch(2);       // 2 now safest among equals
  c.admit(4, 250);  // big object forces multiple evictions
  EXPECT_TRUE(c.peek(2) || c.peek(4));
  EXPECT_FALSE(c.peek(1) && c.peek(3));
}

TEST(Slru, PromotionOnSecondAccess) {
  SlruCache c(100, 0.5);
  c.admit(1, 10);
  EXPECT_EQ(c.protected_bytes(), 0u);
  c.touch(1);
  EXPECT_EQ(c.protected_bytes(), 10u);
}

TEST(Slru, OneHitWondersEvictedFirst) {
  SlruCache c(40, 0.5);
  c.admit(1, 10);
  c.touch(1);      // protected
  c.admit(2, 10);  // probation
  c.admit(3, 10);
  c.admit(4, 10);
  c.admit(5, 10);  // forces eviction from probation, not protected
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
}

TEST(Slru, ProtectedOverflowDemotes) {
  SlruCache c(100, 0.2);  // protected segment only 20 bytes
  c.admit(1, 15);
  c.touch(1);
  c.admit(2, 15);
  c.touch(2);  // promoting 2 (15b) exceeds 20b: 1 demotes to probation
  EXPECT_LE(c.protected_bytes(), 20u + 15u);  // transiently bounded
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(2));
}

}  // namespace
}  // namespace starcdn::cache
