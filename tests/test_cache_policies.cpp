// Parameterized behaviour + invariant tests shared by all eviction policies,
// policy-specific semantics for LRU, LFU, SIEVE and SLRU, and a differential
// harness that locksteps each arena-backed policy against a node-based
// reference model on an adversarial mixed-size trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <list>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "cache/cache.h"
#include "cache/gdsf.h"
#include "cache/lfu.h"
#include "cache/lru.h"
#include "cache/sieve.h"
#include "cache/slru.h"
#include "util/rng.h"

namespace starcdn::cache {
namespace {

class PolicyTest : public ::testing::TestWithParam<Policy> {
 protected:
  std::unique_ptr<Cache> make(Bytes capacity) const {
    return make_cache(GetParam(), capacity);
  }
};

TEST_P(PolicyTest, FactoryReportsPolicy) {
  EXPECT_EQ(make(100)->policy(), GetParam());
}

TEST_P(PolicyTest, MissThenHit) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 10), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(1, 10), AccessResult::kHit);
  EXPECT_EQ(c->stats().requests, 2u);
  EXPECT_EQ(c->stats().hits, 1u);
  EXPECT_EQ(c->stats().bytes_requested, 20u);
  EXPECT_EQ(c->stats().bytes_hit, 10u);
}

TEST_P(PolicyTest, PeekHasNoSideEffects) {
  auto c = make(100);
  c->admit(1, 10);
  const auto before_count = c->object_count();
  EXPECT_TRUE(c->peek(1));
  EXPECT_FALSE(c->peek(2));
  EXPECT_EQ(c->object_count(), before_count);
  EXPECT_EQ(c->stats().requests, 0u);  // peek must not count as a request
}

TEST_P(PolicyTest, CapacityNeverExceeded) {
  auto c = make(1'000);
  util::Rng rng(11);
  for (int i = 0; i < 5'000; ++i) {
    const ObjectId id = rng.below(500);
    const Bytes size = 1 + rng.below(300);
    c->access(id, size);
    ASSERT_LE(c->used_bytes(), c->capacity())
        << to_string(GetParam()) << " overflowed at step " << i;
  }
  EXPECT_GT(c->stats().evictions, 0u);
}

TEST_P(PolicyTest, HitPlusMissEqualsRequests) {
  auto c = make(2'000);
  util::Rng rng(12);
  std::uint64_t hits = 0, misses = 0;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = c->access(rng.below(200), 1 + rng.below(100));
    (r == AccessResult::kHit ? hits : misses) += 1;
  }
  EXPECT_EQ(hits + misses, 3'000u);
  EXPECT_EQ(c->stats().hits, hits);
  EXPECT_EQ(c->stats().requests, 3'000u);
}

TEST_P(PolicyTest, ObjectLargerThanCapacityNeverAdmitted) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 500), AccessResult::kMissTooLarge);
  EXPECT_FALSE(c->peek(1));
  EXPECT_EQ(c->used_bytes(), 0u);
  // And it must not have evicted residents to try.
  c->admit(2, 50);
  c->admit(3, 1'000);
  EXPECT_TRUE(c->peek(2));
  EXPECT_FALSE(c->peek(3));
}

TEST_P(PolicyTest, EraseRemoves) {
  auto c = make(100);
  c->admit(1, 10);
  c->admit(2, 20);
  c->erase(1);
  EXPECT_FALSE(c->peek(1));
  EXPECT_TRUE(c->peek(2));
  EXPECT_EQ(c->used_bytes(), 20u);
  EXPECT_EQ(c->object_count(), 1u);
  c->erase(99);  // erasing a non-resident is a no-op
  EXPECT_EQ(c->object_count(), 1u);
}

TEST_P(PolicyTest, ClearEmptiesEverything) {
  auto c = make(100);
  for (ObjectId i = 0; i < 5; ++i) c->admit(i, 10);
  c->clear();
  EXPECT_EQ(c->used_bytes(), 0u);
  EXPECT_EQ(c->object_count(), 0u);
  for (ObjectId i = 0; i < 5; ++i) EXPECT_FALSE(c->peek(i));
  // The cache must remain usable after clear.
  EXPECT_EQ(c->access(7, 10), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(7, 10), AccessResult::kHit);
}

TEST_P(PolicyTest, ReAdmitIsIdempotent) {
  auto c = make(100);
  c->admit(1, 10);
  c->admit(1, 10);
  EXPECT_EQ(c->object_count(), 1u);
  EXPECT_EQ(c->used_bytes(), 10u);
}

TEST_P(PolicyTest, EvictionMakesRoomForLargeObject) {
  auto c = make(100);
  for (ObjectId i = 0; i < 10; ++i) c->admit(i, 10);
  EXPECT_EQ(c->used_bytes(), 100u);
  c->admit(100, 95);  // must evict nearly everything
  EXPECT_TRUE(c->peek(100));
  EXPECT_LE(c->used_bytes(), 100u);
}

TEST_P(PolicyTest, CountObjectBookkeeping) {
  auto c = make(1'000);
  util::Rng rng(13);
  for (int i = 0; i < 2'000; ++i) {
    c->access(rng.below(100), 1 + rng.below(50));
    // Recount by peeking all possible ids: used bytes must equal the sum of
    // resident sizes — detected via count monotonicity here; exact byte
    // audit happens in the policy-specific tests.
    ASSERT_LE(c->object_count(), 100u);
  }
}

TEST_P(PolicyTest, ZeroByteObjectsSupported) {
  auto c = make(100);
  EXPECT_EQ(c->access(1, 0), AccessResult::kMissInserted);
  EXPECT_EQ(c->access(1, 0), AccessResult::kHit);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(Policy::kLru, Policy::kLfu,
                                           Policy::kFifo, Policy::kSieve,
                                           Policy::kSlru, Policy::kGdsf),
                         [](const auto& name_info) {
                           return std::string(to_string(name_info.param));
                         });

// --- Policy-specific semantics ------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  EXPECT_TRUE(c.touch(1));  // 2 is now the LRU victim
  c.admit(4, 10);
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(3));
  EXPECT_TRUE(c.peek(4));
}

TEST(Lru, VictimOrderTracksTouches) {
  LruCache c(100);
  c.admit(1, 10);
  c.admit(2, 10);
  ASSERT_TRUE(c.lru_victim().has_value());
  EXPECT_EQ(*c.lru_victim(), 1u);
  c.touch(1);
  ASSERT_TRUE(c.lru_victim().has_value());
  EXPECT_EQ(*c.lru_victim(), 2u);
}

TEST(Lru, VictimOnEmptyCacheIsNullopt) {
  LruCache c(100);
  EXPECT_EQ(c.lru_victim(), std::nullopt);
  c.admit(1, 10);
  c.erase(1);
  EXPECT_EQ(c.lru_victim(), std::nullopt);  // emptied again, still guarded
  c.admit(2, 10);
  c.clear();
  EXPECT_EQ(c.lru_victim(), std::nullopt);
}

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);
  c.touch(1);
  c.touch(3);
  c.admit(4, 10);  // 2 has the lowest frequency
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(3));
}

TEST(Lfu, FrequencyCounting) {
  LfuCache c(100);
  c.admit(1, 10);
  EXPECT_EQ(c.frequency(1), 1u);
  c.touch(1);
  c.touch(1);
  EXPECT_EQ(c.frequency(1), 3u);
  EXPECT_EQ(c.frequency(999), 0u);
}

TEST(Lfu, TieBrokenByRecencyWithinFrequency) {
  LfuCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);  // all at frequency 1; LRU within the bucket is 1
  c.admit(4, 10);
  EXPECT_FALSE(c.peek(1));
}

TEST(Sieve, HitsDoNotReorder) {
  // SIEVE: a hit only marks the visited bit; eviction skips visited entries
  // once, clearing them.
  SieveCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);      // 1 is visited (it is the tail)
  c.admit(4, 10);  // hand clears 1's bit, evicts 2 (first unvisited)
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(3));
  EXPECT_TRUE(c.peek(4));
}

TEST(Sieve, SweepsWholeListWhenAllVisited) {
  SieveCache c(30);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.touch(1);
  c.touch(2);
  c.touch(3);
  c.admit(4, 10);  // hand clears all bits then evicts the tail (1)
  EXPECT_FALSE(c.peek(1));
  EXPECT_EQ(c.object_count(), 3u);
}

TEST(Sieve, EraseNextToHandIsSafe) {
  SieveCache c(40);
  c.admit(1, 10);
  c.admit(2, 10);
  c.admit(3, 10);
  c.admit(4, 10);
  c.touch(1);
  c.admit(5, 10);  // moves hand off the tail
  c.erase(1);      // erase where the hand may sit
  c.admit(6, 10);
  c.admit(7, 10);  // keep evicting; must not crash or corrupt
  EXPECT_LE(c.used_bytes(), c.capacity());
}

TEST(Gdsf, SmallPopularBeatsLargeCold) {
  // GDSF utility = clock + freq/size: a small, re-referenced object must
  // outlive a large one-hit object under pressure.
  GdsfCache c(1'000);
  c.admit(1, 100);   // small
  c.admit(2, 800);   // large
  c.touch(1);
  c.touch(1);
  c.admit(3, 600);   // forces eviction; 2 has the lowest utility
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
  EXPECT_TRUE(c.peek(3));
}

TEST(Gdsf, ClockInflatesOnEviction) {
  GdsfCache c(100);
  EXPECT_DOUBLE_EQ(c.clock(), 0.0);
  c.admit(1, 100);
  c.admit(2, 100);  // evicts 1
  EXPECT_GT(c.clock(), 0.0);
}

TEST(Gdsf, FrequencyRaisesUtility) {
  GdsfCache c(300);
  c.admit(1, 100);
  c.admit(2, 100);
  c.admit(3, 100);
  c.touch(2);       // 2 now safest among equals
  c.admit(4, 250);  // big object forces multiple evictions
  EXPECT_TRUE(c.peek(2) || c.peek(4));
  EXPECT_FALSE(c.peek(1) && c.peek(3));
}

TEST(Slru, PromotionOnSecondAccess) {
  SlruCache c(100, 0.5);
  c.admit(1, 10);
  EXPECT_EQ(c.protected_bytes(), 0u);
  c.touch(1);
  EXPECT_EQ(c.protected_bytes(), 10u);
}

TEST(Slru, OneHitWondersEvictedFirst) {
  SlruCache c(40, 0.5);
  c.admit(1, 10);
  c.touch(1);      // protected
  c.admit(2, 10);  // probation
  c.admit(3, 10);
  c.admit(4, 10);
  c.admit(5, 10);  // forces eviction from probation, not protected
  EXPECT_TRUE(c.peek(1));
  EXPECT_FALSE(c.peek(2));
}

TEST(Slru, ProtectedFractionValidated) {
  EXPECT_NO_THROW(SlruCache(100, 0.0));
  EXPECT_NO_THROW(SlruCache(100, 1.0));
  EXPECT_NO_THROW(SlruCache(100, 0.5));
  EXPECT_THROW(SlruCache(100, -0.01), std::invalid_argument);
  EXPECT_THROW(SlruCache(100, 1.01), std::invalid_argument);
  EXPECT_THROW(SlruCache(100, std::nan("")), std::invalid_argument);
}

TEST(Slru, BoundaryFractionsStillServe) {
  SlruCache none(40, 0.0);  // no protected segment: touches promote nothing
  none.admit(1, 10);
  none.touch(1);
  EXPECT_EQ(none.protected_bytes(), 0u);

  SlruCache all(40, 1.0);  // whole cache may be protected
  all.admit(1, 10);
  all.touch(1);
  EXPECT_EQ(all.protected_bytes(), 10u);
}

TEST(Slru, ProtectedOverflowDemotes) {
  SlruCache c(100, 0.2);  // protected segment only 20 bytes
  c.admit(1, 15);
  c.touch(1);
  c.admit(2, 15);
  c.touch(2);  // promoting 2 (15b) exceeds 20b: 1 demotes to probation
  EXPECT_LE(c.protected_bytes(), 20u + 15u);  // transiently bounded
  EXPECT_TRUE(c.peek(1));
  EXPECT_TRUE(c.peek(2));
}

// --- Differential harness ----------------------------------------------------
//
// Node-based reference models with the exact pre-rewrite semantics of each
// policy (std::list + std::unordered_map, as the original implementations
// were written). The arena-backed production policies must stay observably
// indistinguishable from these on any trace: same AccessResult per request,
// same resident set, same hottest() ordering, same CacheStats.

class RefModel {
 public:
  explicit RefModel(Bytes capacity) : capacity_(capacity) {}
  virtual ~RefModel() = default;

  virtual bool peek(ObjectId id) const = 0;
  virtual bool touch(ObjectId id) = 0;
  virtual void admit(ObjectId id, Bytes size) = 0;
  virtual void erase(ObjectId id) = 0;
  virtual void clear() = 0;
  virtual std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const = 0;

  AccessResult access(ObjectId id, Bytes size) {
    ++stats_.requests;
    stats_.bytes_requested += size;
    if (touch(id)) {
      ++stats_.hits;
      stats_.bytes_hit += size;
      return AccessResult::kHit;
    }
    if (size > capacity_) return AccessResult::kMissTooLarge;
    admit(id, size);
    return AccessResult::kMissInserted;
  }

  Bytes capacity() const { return capacity_; }
  Bytes used_bytes() const { return used_; }
  std::size_t object_count() const { return count_; }
  const CacheStats& stats() const { return stats_; }

 protected:
  void note_admit(Bytes size) {
    used_ += size;
    ++count_;
  }
  void note_evict(Bytes size) {
    used_ -= size;
    --count_;
    ++stats_.evictions;
  }
  void note_erase(Bytes size) {
    used_ -= size;
    --count_;
  }
  void reset_usage() {
    used_ = 0;
    count_ = 0;
  }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::size_t count_ = 0;
  CacheStats stats_;
};

class RefLru : public RefModel {
 public:
  using RefModel::RefModel;

  bool peek(ObjectId id) const override { return index_.contains(id); }

  bool touch(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    list_.splice(list_.begin(), list_, it->second);
    return true;
  }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity()) return;
    if (touch(id)) return;
    while (!list_.empty() && capacity() - used_bytes() < size) {
      const Entry& victim = list_.back();
      index_.erase(victim.id);
      note_evict(victim.size);
      list_.pop_back();
    }
    list_.push_front({id, size});
    index_.emplace(id, list_.begin());
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    note_erase(it->second->size);
    list_.erase(it->second);
    index_.erase(it);
  }

  void clear() override {
    list_.clear();
    index_.clear();
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (const Entry& e : list_) {
      if (out.size() >= n) break;
      out.emplace_back(e.id, e.size);
    }
    return out;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
  };
  std::list<Entry> list_;  // front = most recent
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

class RefFifo : public RefModel {
 public:
  using RefModel::RefModel;

  bool peek(ObjectId id) const override { return index_.contains(id); }
  bool touch(ObjectId id) override { return index_.contains(id); }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity() || index_.contains(id)) return;
    while (!list_.empty() && capacity() - used_bytes() < size) {
      const Entry& victim = list_.back();
      index_.erase(victim.id);
      note_evict(victim.size);
      list_.pop_back();
    }
    list_.push_front({id, size});
    index_.emplace(id, list_.begin());
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    note_erase(it->second->size);
    list_.erase(it->second);
    index_.erase(it);
  }

  void clear() override {
    list_.clear();
    index_.clear();
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (const Entry& e : list_) {
      if (out.size() >= n) break;
      out.emplace_back(e.id, e.size);
    }
    return out;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
  };
  std::list<Entry> list_;
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

class RefSieve : public RefModel {
 public:
  using RefModel::RefModel;

  bool peek(ObjectId id) const override { return index_.contains(id); }

  bool touch(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    it->second->visited = true;
    return true;
  }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity() || index_.contains(id)) return;
    while (!list_.empty() && capacity() - used_bytes() < size) evict_one();
    list_.push_front({id, size, false});
    index_.emplace(id, list_.begin());
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    if (hand_ == it->second) {
      hand_ =
          it->second == list_.begin() ? list_.end() : std::prev(it->second);
    }
    note_erase(it->second->size);
    list_.erase(it->second);
    index_.erase(it);
  }

  void clear() override {
    list_.clear();
    index_.clear();
    hand_ = list_.end();
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (const Entry& e : list_) {
      if (out.size() >= n) break;
      if (e.visited) out.emplace_back(e.id, e.size);
    }
    for (const Entry& e : list_) {
      if (out.size() >= n) break;
      if (!e.visited) out.emplace_back(e.id, e.size);
    }
    return out;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    bool visited = false;
  };
  using List = std::list<Entry>;

  void evict_one() {
    if (list_.empty()) return;
    if (hand_ == list_.end()) hand_ = std::prev(list_.end());
    while (hand_->visited) {
      hand_->visited = false;
      if (hand_ == list_.begin()) {
        hand_ = std::prev(list_.end());
      } else {
        --hand_;
      }
    }
    const auto victim = hand_;
    if (victim == list_.begin()) {
      hand_ = list_.end();
    } else {
      hand_ = std::prev(victim);
    }
    index_.erase(victim->id);
    note_evict(victim->size);
    list_.erase(victim);
  }

  List list_;  // front = newest insertion
  List::iterator hand_ = list_.end();
  std::unordered_map<ObjectId, List::iterator> index_;
};

class RefLfu : public RefModel {
 public:
  using RefModel::RefModel;

  bool peek(ObjectId id) const override { return index_.contains(id); }

  bool touch(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    bump(it);
    return true;
  }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity()) return;
    if (touch(id)) return;
    while (!freq_list_.empty() && capacity() - used_bytes() < size) {
      FreqNode& lowest = freq_list_.front();
      const Entry& victim = lowest.entries.back();
      index_.erase(victim.id);
      note_evict(victim.size);
      lowest.entries.pop_back();
      if (lowest.entries.empty()) freq_list_.pop_front();
    }
    auto node = freq_list_.begin();
    if (node == freq_list_.end() || node->freq != 1) {
      node = freq_list_.insert(freq_list_.begin(), {1, {}});
    }
    node->entries.push_front({id, size});
    index_.emplace(id, Locator{node, node->entries.begin()});
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    Locator& loc = it->second;
    note_erase(loc.entry->size);
    loc.node->entries.erase(loc.entry);
    if (loc.node->entries.empty()) freq_list_.erase(loc.node);
    index_.erase(it);
  }

  void clear() override {
    freq_list_.clear();
    index_.clear();
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (auto node = freq_list_.rbegin(); node != freq_list_.rend(); ++node) {
      for (const Entry& e : node->entries) {
        if (out.size() >= n) return out;
        out.emplace_back(e.id, e.size);
      }
    }
    return out;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
  };
  struct FreqNode {
    std::uint64_t freq;
    std::list<Entry> entries;  // front = most recent at this frequency
  };
  struct Locator {
    std::list<FreqNode>::iterator node;
    std::list<Entry>::iterator entry;
  };

  void bump(const std::unordered_map<ObjectId, Locator>::iterator& it) {
    Locator& loc = it->second;
    const std::uint64_t next_freq = loc.node->freq + 1;
    auto next_node = std::next(loc.node);
    if (next_node == freq_list_.end() || next_node->freq != next_freq) {
      next_node = freq_list_.insert(next_node, {next_freq, {}});
    }
    next_node->entries.splice(next_node->entries.begin(), loc.node->entries,
                              loc.entry);
    if (loc.node->entries.empty()) freq_list_.erase(loc.node);
    loc.node = next_node;
  }

  std::list<FreqNode> freq_list_;  // ascending frequency
  std::unordered_map<ObjectId, Locator> index_;
};

class RefSlru : public RefModel {
 public:
  RefSlru(Bytes capacity, double protected_fraction)
      : RefModel(capacity),
        protected_capacity_(static_cast<Bytes>(
            static_cast<double>(capacity) * protected_fraction)) {}

  bool peek(ObjectId id) const override { return index_.contains(id); }

  bool touch(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    auto entry_it = it->second;
    if (entry_it->is_protected) {
      protected_.splice(protected_.begin(), protected_, entry_it);
    } else {
      entry_it->is_protected = true;
      protected_used_ += entry_it->size;
      protected_.splice(protected_.begin(), probation_, entry_it);
      shrink_protected(protected_capacity_);
    }
    index_[id] = entry_it;
    return true;
  }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity()) return;
    if (touch(id)) return;
    while (capacity() - used_bytes() < size) {
      if (!probation_.empty()) {
        const auto victim = std::prev(probation_.end());
        index_.erase(victim->id);
        note_evict(victim->size);
        probation_.erase(victim);
      } else if (!protected_.empty()) {
        const auto victim = std::prev(protected_.end());
        protected_used_ -= victim->size;
        index_.erase(victim->id);
        note_evict(victim->size);
        protected_.erase(victim);
      } else {
        break;
      }
    }
    probation_.push_front({id, size, false});
    index_[id] = probation_.begin();
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    const auto entry_it = it->second;
    note_erase(entry_it->size);
    if (entry_it->is_protected) {
      protected_used_ -= entry_it->size;
      protected_.erase(entry_it);
    } else {
      probation_.erase(entry_it);
    }
    index_.erase(it);
  }

  void clear() override {
    probation_.clear();
    protected_.clear();
    protected_used_ = 0;
    index_.clear();
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (const Entry& e : protected_) {
      if (out.size() >= n) break;
      out.emplace_back(e.id, e.size);
    }
    for (const Entry& e : probation_) {
      if (out.size() >= n) break;
      out.emplace_back(e.id, e.size);
    }
    return out;
  }

 private:
  struct Entry {
    ObjectId id;
    Bytes size;
    bool is_protected;
  };
  using List = std::list<Entry>;

  void shrink_protected(Bytes limit) {
    while (protected_used_ > limit && !protected_.empty()) {
      auto victim = std::prev(protected_.end());
      protected_used_ -= victim->size;
      victim->is_protected = false;
      probation_.splice(probation_.begin(), protected_, victim);
      index_[victim->id] = probation_.begin();
    }
  }

  Bytes protected_capacity_;
  Bytes protected_used_ = 0;
  List probation_;
  List protected_;
  std::unordered_map<ObjectId, List::iterator> index_;
};

class RefGdsf : public RefModel {
 public:
  using RefModel::RefModel;

  bool peek(ObjectId id) const override { return index_.contains(id); }

  bool touch(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    ++it->second.frequency;
    queue_.erase({it->second.utility, id});
    it->second.utility = utility_of(it->second);
    queue_.emplace(std::pair{it->second.utility, id}, id);
    return true;
  }

  void admit(ObjectId id, Bytes size) override {
    if (size > capacity()) return;
    if (touch(id)) return;
    while (!queue_.empty() && capacity() - used_bytes() < size) {
      const auto victim_it = queue_.begin();
      const ObjectId victim = victim_it->second;
      clock_ = victim_it->first.first;
      queue_.erase(victim_it);
      const auto idx = index_.find(victim);
      note_evict(idx->second.size);
      index_.erase(idx);
    }
    Entry e;
    e.size = size;
    e.frequency = 1;
    e.utility = utility_of(e);
    queue_.emplace(std::pair{e.utility, id}, id);
    index_.emplace(id, e);
    note_admit(size);
  }

  void erase(ObjectId id) override {
    const auto it = index_.find(id);
    if (it == index_.end()) return;
    queue_.erase({it->second.utility, id});
    note_erase(it->second.size);
    index_.erase(it);
  }

  void clear() override {
    queue_.clear();
    index_.clear();
    clock_ = 0.0;
    reset_usage();
  }

  std::vector<std::pair<ObjectId, Bytes>> hottest(
      std::size_t n) const override {
    std::vector<std::pair<ObjectId, Bytes>> out;
    for (auto it = queue_.rbegin(); it != queue_.rend() && out.size() < n;
         ++it) {
      out.emplace_back(it->second, index_.at(it->second).size);
    }
    return out;
  }

 private:
  struct Entry {
    Bytes size = 0;
    std::uint64_t frequency = 0;
    double utility = 0.0;
  };

  double utility_of(const Entry& e) const {
    return clock_ + static_cast<double>(e.frequency) /
                        static_cast<double>(std::max<Bytes>(e.size, 1));
  }

  std::map<std::pair<double, ObjectId>, ObjectId> queue_;
  std::unordered_map<ObjectId, Entry> index_;
  double clock_ = 0.0;
};

std::unique_ptr<RefModel> make_ref(Policy policy, Bytes capacity) {
  switch (policy) {
    case Policy::kLru: return std::make_unique<RefLru>(capacity);
    case Policy::kLfu: return std::make_unique<RefLfu>(capacity);
    case Policy::kFifo: return std::make_unique<RefFifo>(capacity);
    case Policy::kSieve: return std::make_unique<RefSieve>(capacity);
    case Policy::kSlru: return std::make_unique<RefSlru>(capacity, 0.8);
    case Policy::kGdsf: return std::make_unique<RefGdsf>(capacity);
  }
  throw std::logic_error("unknown policy");
}

// Drives the production cache and the reference model through the same
// adversarial trace: mixed sizes spanning 3 orders of magnitude, oversized
// rejects, zero-byte objects, erases of hot/cold/absent ids, occasional
// full clears, direct re-admits — with the observable state compared after
// every single operation.
void run_differential(Policy policy, std::uint64_t seed,
                      std::size_t expected_objects) {
  constexpr Bytes kCapacity = 2'000;
  constexpr ObjectId kUniverse = 150;
  const auto real = make_cache(policy, kCapacity, expected_objects);
  const auto ref = make_ref(policy, kCapacity);
  util::Rng rng(seed);

  for (int step = 0; step < 20'000; ++step) {
    const auto op = rng.below(100);
    const ObjectId id = rng.below(kUniverse);
    if (op < 80) {
      // Sizes from 0 to beyond capacity: op 78/79 force the too-large and
      // zero-byte edges; the rest spread across small/medium/large.
      Bytes size;
      if (op == 79) {
        size = kCapacity + 1 + rng.below(1'000);
      } else if (op == 78) {
        size = 0;
      } else {
        size = 1 + rng.below(op < 40 ? 40 : (op < 70 ? 400 : 1'500));
      }
      ASSERT_EQ(real->access(id, size), ref->access(id, size))
          << to_string(policy) << " diverged at step " << step;
    } else if (op < 88) {
      real->erase(id);
      ref->erase(id);
    } else if (op < 94) {
      ASSERT_EQ(real->peek(id), ref->peek(id)) << "step " << step;
    } else if (op < 99) {
      const Bytes size = 1 + rng.below(500);
      real->admit(id, size);  // direct admit: re-admit or fresh, no stats
      ref->admit(id, size);
    } else {
      real->clear();
      ref->clear();
    }

    ASSERT_EQ(real->used_bytes(), ref->used_bytes())
        << to_string(policy) << " bytes diverged at step " << step;
    ASSERT_EQ(real->object_count(), ref->object_count())
        << to_string(policy) << " count diverged at step " << step;
    ASSERT_EQ(real->hottest(8), ref->hottest(8))
        << to_string(policy) << " ordering diverged at step " << step;
    if (step % 97 == 0) {
      for (ObjectId probe = 0; probe < kUniverse; ++probe) {
        ASSERT_EQ(real->peek(probe), ref->peek(probe))
            << to_string(policy) << " resident set diverged at step " << step
            << " for id " << probe;
      }
    }
  }

  EXPECT_EQ(real->stats().requests, ref->stats().requests);
  EXPECT_EQ(real->stats().hits, ref->stats().hits);
  EXPECT_EQ(real->stats().bytes_requested, ref->stats().bytes_requested);
  EXPECT_EQ(real->stats().bytes_hit, ref->stats().bytes_hit);
  EXPECT_EQ(real->stats().evictions, ref->stats().evictions);
}

TEST_P(PolicyTest, DifferentialAgainstReferenceModel) {
  run_differential(GetParam(), /*seed=*/101, /*expected_objects=*/0);
}

TEST_P(PolicyTest, DifferentialWithPresizedSlab) {
  // Pre-sizing is a pure performance hint; the trace outgrows the tiny hint
  // to prove behaviour is identical across slab/index growth.
  run_differential(GetParam(), /*seed=*/202, /*expected_objects=*/4);
}

}  // namespace
}  // namespace starcdn::cache
